//! Serving: a continuous-batching engine over the Mugi accelerator model.
//!
//! Submits 72 concurrent requests across three models (Llama 2 7B / 13B /
//! 70B), runs the FCFS and shortest-prefill-first schedulers to completion,
//! and prints per-request TTFT/TPOT statistics plus aggregate percentiles.
//! Then serves a decode-heavy workload against a *bounded* paged KV pool
//! (2 GiB budget) to show recompute-style preemption: sessions are evicted
//! under pressure, re-prefill, and still all finish. Also demonstrates that
//! the parallel blocked GEMM behind the functional path is bit-identical to
//! the naive reference kernel.
//!
//! Run with: `cargo run --release --example serving`

use mugi::MugiAccelerator;
use mugi_numerics::exec::ExecutionContext;
use mugi_numerics::tensor::{matmul_naive, pseudo_random_matrix};
use mugi_runtime::{
    synthetic_requests, Executor, KvConfig, Scheduler, SchedulerConfig, SchedulingPolicy,
    WorkloadSpec,
};
use mugi_workloads::models::ModelId;

fn main() {
    // The execution context is threaded from the serving engine down to the
    // blocked matrix kernel. Same bits, different speed.
    let ctx = ExecutionContext::host_parallel();
    println!("execution context: {} thread(s), tile {}", ctx.threads(), ctx.tile());
    let a = pseudo_random_matrix(64, 256, 1, 1.0);
    let b = pseudo_random_matrix(256, 96, 2, 1.0);
    let blocked = a.matmul_with(&b, &ctx);
    let naive = matmul_naive(&a, &b);
    assert!(
        blocked.data().iter().zip(naive.data()).all(|(x, y)| x.to_bits() == y.to_bits()),
        "parallel blocked GEMM must be bit-identical to the naive kernel"
    );
    println!("blocked parallel GEMM: bit-identical to the naive reference\n");

    // 72 concurrent requests (single burst) across three models.
    let models = [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b];
    let requests = synthetic_requests(2026, 72, &models, WorkloadSpec::default());
    println!(
        "workload: {} requests across {} models, prompts 32-512 tokens, outputs 4-48 tokens",
        requests.len(),
        models.len()
    );

    for policy in [SchedulingPolicy::Fcfs, SchedulingPolicy::ShortestPrefillFirst] {
        let mut engine = Executor::new(
            MugiAccelerator::with_context(256, ctx),
            Scheduler::new(SchedulerConfig { policy, ..SchedulerConfig::default() }),
        );
        for request in &requests {
            engine.submit(*request);
        }
        let report = engine.run();
        println!("\n=== policy: {policy:?} ===");
        println!("{report}");
        println!(
            "\n{:>4} {:>12} {:>7} {:>7} {:>10} {:>10} {:>10} {:>11}",
            "id", "model", "prompt", "output", "ttft s", "tpot s", "e2e s", "energy J"
        );
        for r in report.requests.iter().take(8) {
            println!(
                "{:>4} {:>12} {:>7} {:>7} {:>10.2} {:>10.3} {:>10.2} {:>11.3}",
                r.id.to_string(),
                format!("{:?}", r.model),
                r.prompt_tokens,
                r.output_tokens,
                r.ttft_s,
                r.tpot_s,
                r.e2e_s,
                r.energy_uj * 1e-6,
            );
        }
        println!("  ... ({} more requests)", report.requests.len() - 8);
        for model in models {
            let rs = report.for_model(model);
            let tokens: usize = rs.iter().map(|r| r.output_tokens).sum();
            println!("  {model:?}: {} requests, {tokens} output tokens", rs.len());
        }
        assert_eq!(report.requests.len(), requests.len(), "every request must finish");
        assert!(report.requests.iter().all(|r| r.ttft_s > 0.0));
    }

    // The same engine with a *bounded* paged KV pool: a 2 GiB-per-node
    // budget for the 7B model. Preempted sessions drop their pages,
    // re-prefill and still finish — the report's KV line shows the cost.
    let kv = KvConfig::for_budget(ModelId::Llama2_7b, 2 << 30, 128);
    println!("\n=== paged KV: {} pages of 128 tokens (2 GiB budget) ===", kv.node_pages.unwrap());
    let mut engine = Executor::new(
        MugiAccelerator::with_context(256, ctx),
        Scheduler::with_kv(SchedulerConfig::default(), kv),
    );
    let pressured =
        synthetic_requests(2026, 24, &[ModelId::Llama2_7b], WorkloadSpec::kv_pressure());
    for request in &pressured {
        engine.submit(*request);
    }
    let report = engine.run();
    println!("{report}");
    assert_eq!(report.requests.len(), pressured.len(), "preemption never drops a request");
}
