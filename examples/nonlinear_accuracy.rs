//! Nonlinear-approximation accuracy scenario: compare VLP approximation
//! against the PWL, Taylor, partial-approximation and direct-LUT baselines on
//! inputs drawn from profiled LLM activation distributions, and show the
//! proxy-perplexity effect on a reference transformer.
//!
//! Run with: `cargo run --example nonlinear_accuracy`

use mugi::experiments::accuracy::{
    best_perplexity, fig06_accuracy_sweep, fig06_table, fig08_relative_error, fig08_table, Method,
};
use mugi::experiments::Preset;
use mugi::report::TextTable;
use mugi_approx::pwl::PwlConfig;
use mugi_approx::taylor::TaylorConfig;
use mugi_approx::{Approximator, PiecewiseLinear, TaylorSeries};
use mugi_numerics::error::ErrorSummary;
use mugi_numerics::nonlinear::NonlinearOp;
use mugi_vlp::approx::{VlpApproxConfig, VlpNonlinear};
use mugi_workloads::distributions::DistributionProfile;
use mugi_workloads::models::ModelId;

fn main() {
    // Direct element-wise comparison on profiled softmax inputs.
    let dist = DistributionProfile::for_model(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.5);
    let inputs = dist.sample(20_000, 7);
    let exact: Vec<f32> = inputs.iter().map(|&x| x.exp()).collect();

    let vlp =
        VlpNonlinear::new(NonlinearOp::Exp, VlpApproxConfig::recommended_for(NonlinearOp::Exp));
    let pwl =
        PiecewiseLinear::new(NonlinearOp::Exp, PwlConfig { segments: 22, segment_range: 20.0 });
    let taylor = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 9, center: -1.0 });

    let mut table = TextTable::new(
        "exp() approximation error on profiled Llama 2 softmax inputs",
        &["method", "rmse", "mean relative error"],
    );
    for (name, outputs) in [
        ("VLP (Mugi)", vlp.apply(&inputs).0),
        ("PWL (22 segments)", pwl.eval_slice(&inputs)),
        ("Taylor (degree 9)", taylor.eval_slice(&inputs)),
    ] {
        let summary = ErrorSummary::compare(&exact, &outputs);
        table.add_row(vec![
            name.to_string(),
            format!("{:.4e}", summary.rmse),
            format!("{:.2}%", summary.mean_rel * 100.0),
        ]);
    }
    println!("{table}");

    // Figure-8-style comparison across ops and methods.
    let rows = fig08_relative_error(Preset::Quick);
    println!("{}", fig08_table(&rows));

    // Figure-6-style end-to-end proxy perplexity on a Llama-like reference
    // model.
    let rows = fig06_accuracy_sweep(Preset::Quick, ModelId::Llama2_7b);
    println!("{}", fig06_table(&rows));
    println!(
        "best proxy PPL — exact {:.4}, VLP {:.4}, PWL {:.4}, Taylor {:.4}",
        best_perplexity(&rows, Method::Exact).unwrap(),
        best_perplexity(&rows, Method::Vlp).unwrap(),
        best_perplexity(&rows, Method::Pwl).unwrap(),
        best_perplexity(&rows, Method::Taylor).unwrap(),
    );
}
