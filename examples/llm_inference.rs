//! LLM inference scenario: compare Mugi against the systolic-array baseline on
//! the paper's headline workload (Llama 2 70B with grouped-query attention,
//! weight-only quantization and KV-cache quantization), across single-node and
//! NoC configurations.
//!
//! Run with: `cargo run --example llm_inference`

use mugi::arch::designs::{Design, DesignConfig};
use mugi::arch::noc::NocConfig;
use mugi::arch::perf::PerfModel;
use mugi::report::TextTable;
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{OpTrace, Phase};

fn main() {
    let model = ModelId::Llama2_70b;
    let trace = OpTrace::generate(&model.config(), Phase::Decode, 8, 4096, true, true);
    println!(
        "{} decode: {} layers, {:.1} GMAC per layer, GQA group {}",
        model.name(),
        trace.model.layers,
        trace.layer_macs() as f64 / 1e9,
        trace.model.gqa_group_size()
    );

    let designs = vec![
        ("Mugi (128)", DesignConfig::mugi(128)),
        ("Mugi (256)", DesignConfig::mugi(256)),
        ("Carat (256)", DesignConfig::carat(256)),
        ("SA (16)", DesignConfig::systolic(16)),
        ("SA-F (16)", DesignConfig::systolic_figna(16)),
        ("SD-F (16)", DesignConfig::simd_figna(16)),
        ("Tensor", DesignConfig::tensor_core()),
    ];

    let mut single = TextTable::new(
        "Single node — Llama 2 70B (GQA), batch 8, seq 4096",
        &["design", "tokens/s", "area mm2", "uJ/token", "tokens/s/W", "nonlinear share"],
    );
    for (label, cfg) in &designs {
        let model = PerfModel::new(Design::new(*cfg));
        let perf = model.evaluate(&trace);
        let node = model.run_trace(&trace);
        single.add_row(vec![
            label.to_string(),
            format!("{:.3}", perf.tokens_per_second),
            format!("{:.2}", perf.area_mm2),
            format!("{:.1}", perf.energy_per_token_uj),
            format!("{:.2}", perf.tokens_per_s_per_w),
            format!(
                "{:.1}%",
                100.0 * node.cycle_breakdown.nonlinear / node.cycle_breakdown.total()
            ),
        ]);
    }
    println!("\n{single}");

    let mut noc = TextTable::new(
        "4x4 NoC — Llama 2 70B (GQA), batch 8, seq 4096",
        &["design", "tokens/s", "area mm2", "uJ/token", "tokens/s/W"],
    );
    for (label, cfg) in &designs[..4] {
        let perf = PerfModel::new(Design::new(*cfg)).evaluate_noc(&trace, NocConfig::mesh_4x4());
        noc.add_row(vec![
            label.to_string(),
            format!("{:.2}", perf.tokens_per_second),
            format!("{:.1}", perf.area_mm2),
            format!("{:.1}", perf.energy_per_token_uj),
            format!("{:.2}", perf.tokens_per_s_per_w),
        ]);
    }
    println!("{noc}");

    // Headline ratio the paper reports: Mugi(256) vs SA(16).
    let mugi = PerfModel::new(Design::new(DesignConfig::mugi(256))).evaluate(&trace);
    let sa = PerfModel::new(Design::new(DesignConfig::systolic(16))).evaluate(&trace);
    println!(
        "Mugi(256) vs SA(16): {:.2}x throughput, {:.2}x energy efficiency, {:.2}x power efficiency",
        mugi.tokens_per_second / sa.tokens_per_second,
        mugi.tokens_per_uj / sa.tokens_per_uj,
        mugi.tokens_per_s_per_w / sa.tokens_per_s_per_w,
    );
}
