//! Multi-node serving: the same continuous-batching workload on one Mugi
//! node, on a 4×4 mesh with whole micro-batches placed data-parallel across
//! per-node clocks, and on the same mesh with every micro-batch sharded
//! (tiled) across all 16 nodes with inter-node accumulation.
//!
//! Demonstrates the paper's near-linear NoC scaling end to end — serving
//! throughput, not just per-step cycles — and that the NoC transfer model
//! charges activation/accumulation movement as a reported component of
//! per-request energy. Also checks the degenerate case: a 1×1 "mesh" is
//! bit-identical to the plain single-node executor.
//!
//! Run with: `cargo run --release --example multi_node`

use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_runtime::{
    synthetic_requests, Executor, ExecutorConfig, Placement, PlacementPolicy, Request,
    RuntimeReport, Scheduler, SchedulerConfig, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

fn serve(requests: &[Request], placement: Placement) -> RuntimeReport {
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(256),
        Scheduler::new(SchedulerConfig::default()),
        ExecutorConfig::default(),
        placement,
    );
    for r in requests {
        engine.submit(*r);
    }
    engine.run()
}

fn main() {
    let models = [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b];
    let requests = synthetic_requests(2026, 48, &models, WorkloadSpec::default());
    println!("workload: {} requests across {} models\n", requests.len(), models.len());

    // A 1×1 placement is the single-node executor, bit for bit.
    let single = serve(&requests, Placement::single_node());
    let mut plain =
        Executor::new(MugiAccelerator::new(256), Scheduler::new(SchedulerConfig::default()));
    for r in &requests {
        plain.submit(*r);
    }
    assert_eq!(single, plain.run(), "1x1 placement must match the single-node executor exactly");
    println!("1x1 placement: bit-identical to the single-node executor");

    let mesh = NocConfig::mesh_4x4();
    let mut sharded_multiplier = 0.0;
    for placement in [Placement::data_parallel(mesh), Placement::sharded(mesh)] {
        let report = serve(&requests, placement);
        let multiplier = report.throughput_tokens_per_s / single.throughput_tokens_per_s;
        if placement.policy == PlacementPolicy::Sharded {
            sharded_multiplier = multiplier;
        }
        println!("\n=== {} ===", placement.label());
        println!("{report}");
        println!(
            "throughput multiplier vs single node: {multiplier:.2}x (mesh model bound {:.2}x)",
            mesh.throughput_multiplier()
        );
        assert!(report.noc_energy_uj > 0.0, "a real mesh must charge NoC transfers");
        assert_eq!(report.requests.len(), requests.len(), "every request must finish");
        let noc_share = report.noc_energy_uj
            / (report.noc_energy_uj + report.requests.iter().map(|r| r.energy_uj).sum::<f64>());
        println!(
            "NoC transfer energy: {:.1} µJ ({:.3}% of total)",
            report.noc_energy_uj,
            noc_share * 100.0
        );
    }

    // The sharded mesh is where the paper's near-linear claim shows up at
    // the serving level.
    assert!(
        sharded_multiplier > 12.0,
        "sharded 4x4 should scale near-linearly, got {sharded_multiplier:.2}x"
    );
}
