//! Sustainability scenario: estimate the operational and embodied carbon of
//! serving LLM tokens on Mugi versus the baseline accelerators (Figure 15 of
//! the paper).
//!
//! Run with: `cargo run --example carbon_footprint`

use mugi::arch::designs::{Design, DesignConfig};
use mugi::arch::perf::PerfModel;
use mugi::report::TextTable;
use mugi_carbon::{footprint_for_tokens, CarbonModel};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{OpTrace, Phase};

fn main() {
    let carbon = CarbonModel::default_act();
    let tokens = 10_000_000u64; // ten million generated tokens
    let models = [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b];
    let designs = [
        ("Mugi (256)", DesignConfig::mugi(256)),
        ("Carat (256)", DesignConfig::carat(256)),
        ("SA (16)", DesignConfig::systolic(16)),
        ("SD-F (16)", DesignConfig::simd_figna(16)),
    ];

    for model in models {
        let trace = OpTrace::generate(&model.config(), Phase::Decode, 8, 4096, true, true);
        let mut table = TextTable::new(
            format!("{} — carbon for serving {} tokens (batch 8, seq 4096)", model.name(), tokens),
            &["design", "tokens/s", "operational gCO2", "embodied gCO2", "total gCO2"],
        );
        let mut mugi_total = 0.0;
        for (label, cfg) in designs {
            let perf = PerfModel::new(Design::new(cfg)).evaluate(&trace);
            let fp = footprint_for_tokens(&carbon, &perf, tokens);
            if label.starts_with("Mugi") {
                mugi_total = fp.total_g();
            }
            table.add_row(vec![
                label.to_string(),
                format!("{:.2}", perf.tokens_per_second),
                format!("{:.1}", fp.operational_g),
                format!("{:.2}", fp.embodied_g),
                format!("{:.1}", fp.total_g()),
            ]);
        }
        println!("{table}");
        let sa_perf = PerfModel::new(Design::new(DesignConfig::systolic(16))).evaluate(&trace);
        let sa_fp = footprint_for_tokens(&carbon, &sa_perf, tokens);
        println!(
            "  Mugi reduces total carbon by {:.2}x vs SA (16)\n",
            sa_fp.total_g() / mugi_total
        );
    }
}
