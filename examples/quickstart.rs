//! Quickstart: build a Mugi node, run an asymmetric BF16-INT4 GEMM, a VLP
//! softmax and a SiLU approximation, and estimate LLM decode throughput.
//!
//! Run with: `cargo run --example quickstart`

use mugi::MugiAccelerator;
use mugi_numerics::nonlinear::{silu, softmax, NonlinearOp};
use mugi_numerics::tensor::pseudo_random_matrix;
use mugi_workloads::models::ModelId;

fn main() {
    // A single Mugi node with 256 array rows (the paper's largest
    // single-node configuration).
    let accel = MugiAccelerator::new(256);
    println!("Mugi (256) node area: {:.2} mm^2", accel.area_mm2());

    // 1. Asymmetric BF16-INT4 GEMM with weight-only quantization.
    let activations = pseudo_random_matrix(8, 256, 1, 1.0); // batch 8, K=256
    let weights = pseudo_random_matrix(512, 256, 2, 0.2); // 512 output features
    let quantized = accel.quantize_weights(&weights);
    let (output, stats) = accel.gemm(&activations, &quantized);
    println!(
        "GEMM 8x256x512: {} cycles, utilization {:.1}%, {} multiplications avoided",
        stats.cycles,
        stats.utilization * 100.0,
        stats.reuse.multiplications_avoided
    );
    let reference = activations.matmul(&quantized.dequantize().transpose());
    println!("  max |output - reference| = {:.2e}", output.max_abs_diff(&reference));

    // 2. VLP softmax approximation.
    let logits = vec![1.2, -0.3, 0.8, 2.5, -1.0, 0.0, 0.4, 1.9];
    let (probs, approx_stats) = accel.softmax(&logits);
    let exact = softmax(&logits);
    let max_err = probs.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    println!(
        "Softmax over {} logits: latency {} cycles, max error vs exact {:.4}",
        logits.len(),
        approx_stats.latency_cycles,
        max_err
    );

    // 3. VLP SiLU approximation (the Llama FFN activation).
    let inputs = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
    let (approx, _) = accel.activation(NonlinearOp::Silu, &inputs);
    for (x, y) in inputs.iter().zip(&approx) {
        println!("  SiLU({x:5.2}) ~= {y:7.4}   (exact {:7.4})", silu(*x));
    }

    // 4. Architectural estimate: Llama 2 70B (GQA) decode at batch 8.
    let perf = accel.estimate_llm_throughput(ModelId::Llama2_70b, 8, 4096);
    println!(
        "Llama 2 70B (GQA) decode @ batch 8, seq 4096: {:.2} tokens/s, {:.1} uJ/token, {:.2} W",
        perf.tokens_per_second, perf.energy_per_token_uj, perf.average_power_w
    );
}
