//! Integration tests that run every experiment driver end to end on the quick
//! preset and sanity-check the shape of each result against the paper.

use mugi::experiments::accuracy::{
    fig04_profiling, fig04_table, fig07_per_layer_tuning, fig07_table, fig08_relative_error,
    fig08_table,
};
use mugi::experiments::architecture::{
    fig11_nonlinear_comparison, fig11_table, fig12_gemm_comparison, fig12_table, fig13_breakdown,
    fig13_table, fig14_batch_sweep, fig14_table, fig16_latency_breakdown, fig16_table,
    table3_end_to_end, table3_table,
};
use mugi::experiments::sustainability::{
    fig15_carbon, fig15_table, fig17_noc_scaling, fig17_table,
};
use mugi::experiments::Preset;
use mugi_workloads::models::ModelId;

#[test]
fn fig04_driver_runs_and_renders() {
    let rows = fig04_profiling(Preset::Quick);
    assert!(rows.len() >= 6);
    let table = fig04_table(&rows).render();
    assert!(table.contains("Figure 4"));
    assert!(table.contains("Llama 2 7B"));
}

#[test]
fn fig07_driver_improves_or_keeps_quality() {
    let trace = fig07_per_layer_tuning(Preset::Quick, ModelId::Llama2_7b);
    assert!(!trace.layers.is_empty());
    for pair in trace.layers.windows(2) {
        assert!(pair[1].quality <= pair[0].quality + 1e-5);
    }
    assert!(fig07_table(&trace).render().contains("Figure 7"));
}

#[test]
fn fig08_driver_covers_all_ops_and_methods() {
    let rows = fig08_relative_error(Preset::Quick);
    let methods: std::collections::HashSet<&str> = rows.iter().map(|r| r.method.as_str()).collect();
    for m in ["VLP", "PWL", "Taylor", "PA", "DirectLUT"] {
        assert!(methods.contains(m), "missing method {m}");
    }
    assert!(fig08_table(&rows).render().contains("Figure 8"));
}

#[test]
fn fig11_driver_mugi_dominates_vector_arrays() {
    let rows = fig11_nonlinear_comparison(Preset::Quick);
    for r in rows.iter().filter(|r| r.design.starts_with("Mugi")) {
        assert!(r.norm_throughput > 10.0, "{}: {}", r.design, r.norm_throughput);
        assert!(r.norm_energy_eff > 5.0);
    }
    assert!(fig11_table(&rows).render().contains("Figure 11"));
}

#[test]
fn fig12_driver_attention_vs_projection_shape() {
    let rows = fig12_gemm_comparison(Preset::Quick);
    // For the GQA model, Mugi's attention advantage is modest ("slightly
    // better") while projection/FFN roughly doubles.
    let proj = rows
        .iter()
        .find(|r| r.design == "Mugi (256)" && r.gqa && r.category == "Projection/FFN")
        .unwrap();
    let attn = rows
        .iter()
        .find(|r| r.design == "Mugi (256)" && r.gqa && r.category == "Attention")
        .unwrap();
    assert!(proj.norm_throughput > 1.5);
    assert!(attn.norm_throughput >= 0.9);
    assert!(proj.norm_throughput >= attn.norm_throughput * 0.9);
    assert!(fig12_table(&rows).render().contains("Figure 12"));
}

#[test]
fn table3_driver_group_structure() {
    let rows = table3_end_to_end(Preset::Quick);
    assert!(rows.iter().any(|r| r.group == "SN"));
    assert!(rows.iter().any(|r| r.group == "SN-S"));
    assert!(rows.iter().any(|r| r.group == "NoC"));
    // Areas are positive and the NoC group has the largest areas.
    let max_sn = rows.iter().filter(|r| r.group == "SN").map(|r| r.area_mm2).fold(0.0, f64::max);
    let min_noc =
        rows.iter().filter(|r| r.group == "NoC").map(|r| r.area_mm2).fold(f64::INFINITY, f64::min);
    assert!(min_noc > max_sn);
    assert!(table3_table(&rows).render().contains("Table 3"));
}

#[test]
fn fig13_driver_component_totals_match_design_totals() {
    let rows = fig13_breakdown(Preset::Quick);
    let mugi_total: f64 =
        rows.iter().filter(|r| r.design == "Mugi (256)").map(|r| r.area_mm2).sum();
    let direct =
        mugi_arch::designs::Design::new(mugi_arch::designs::DesignConfig::mugi(256)).area_mm2();
    assert!((mugi_total - direct).abs() / direct < 1e-9);
    assert!(fig13_table(&rows).render().contains("Figure 13"));
}

#[test]
fn fig14_driver_energy_per_token_falls_with_batch_for_mugi() {
    let rows = fig14_batch_sweep(Preset::Quick);
    let seq = Preset::Quick.sequence_lengths()[0];
    let e = |batch: usize| {
        rows.iter()
            .find(|r| r.design == "Mugi (256)" && r.batch == batch && r.seq_len == seq)
            .unwrap()
            .norm_energy_per_token
    };
    assert!(e(8) < e(1), "batch 8 should be more energy efficient than batch 1");
    assert!(fig14_table(&rows).render().contains("Figure 14"));
}

#[test]
fn fig15_and_fig17_drivers_render() {
    let rows = fig15_carbon(Preset::Quick);
    assert!(fig15_table(&rows).render().contains("Figure 15"));
    let rows = fig17_noc_scaling(Preset::Quick);
    assert!(fig17_table(&rows).render().contains("Figure 17"));
    // Mugi's NoC energy efficiency advantage persists at the mesh level.
    let mugi = rows.iter().find(|r| r.design == "Mugi (256)").unwrap();
    let sa = rows.iter().find(|r| r.design == "SA (16)").unwrap();
    assert!(mugi.norm_energy_eff > sa.norm_energy_eff);
}

#[test]
fn fig16_driver_nonlinear_negligible_on_mugi_visible_on_baselines() {
    let rows = fig16_latency_breakdown(Preset::Quick);
    let mugi = rows.iter().find(|r| r.design == "Mugi (256)" && !r.gqa).unwrap();
    let taylor = rows.iter().find(|r| r.design == "Taylor VA" && !r.gqa).unwrap();
    assert!(mugi.normalized.nonlinear < 0.05);
    assert!(taylor.normalized.nonlinear > mugi.normalized.nonlinear);
    assert!(fig16_table(&rows).render().contains("Figure 16"));
}
