//! Workspace smoke test: asserts the quickstart path promised by the
//! `crates/core/src/lib.rs` crate docs (and `examples/quickstart.rs`) keeps
//! working — a softmax on the VLP array is a probability distribution and the
//! throughput estimator returns positive tokens/s.

use mugi::MugiAccelerator;
use mugi_numerics::tensor::pseudo_random_matrix;
use mugi_workloads::models::ModelId;

#[test]
fn quickstart_softmax_is_a_distribution() {
    let accel = MugiAccelerator::new(256);
    let (probs, stats) = accel.softmax(&[0.3, -1.0, 2.0]);
    assert_eq!(probs.len(), 3);
    assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-3, "softmax must sum to 1: {probs:?}");
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)), "probabilities in [0, 1]: {probs:?}");
    assert!(stats.latency_cycles > 0);
}

#[test]
fn quickstart_throughput_estimate_is_positive() {
    let accel = MugiAccelerator::new(256);
    let perf = accel.estimate_llm_throughput(ModelId::Llama2_70b, 8, 4096);
    assert!(perf.tokens_per_second > 0.0, "tokens/s must be positive: {perf:?}");
}

#[test]
fn quickstart_gemm_matches_dense_reference() {
    let accel = MugiAccelerator::new(256);
    let activations = pseudo_random_matrix(8, 256, 1, 1.0);
    let weights = pseudo_random_matrix(512, 256, 2, 0.2);
    let quantized = accel.quantize_weights(&weights);
    let (output, stats) = accel.gemm(&activations, &quantized);
    let reference = activations.matmul(&quantized.dequantize().transpose());
    assert!(output.max_abs_diff(&reference) < 1e-3, "VLP GEMM must match the dense reference");
    assert!(stats.cycles > 0);
    assert!(accel.area_mm2() > 0.0);
}
