//! End-to-end integration tests spanning every crate of the workspace: the
//! functional VLP pipeline, the architecture model, the experiment drivers and
//! the headline claims of the paper.

use mugi::experiments::accuracy::{best_perplexity, fig06_accuracy_sweep, Method};
use mugi::experiments::architecture::{evaluate_design, table3_end_to_end};
use mugi::experiments::sustainability::fig15_carbon;
use mugi::experiments::Preset;
use mugi::MugiAccelerator;
use mugi_arch::designs::{Design, DesignConfig};
use mugi_arch::noc::NocConfig;
use mugi_arch::perf::PerfModel;
use mugi_carbon::{footprint_for_tokens, CarbonModel};
use mugi_numerics::nonlinear::{softmax, NonlinearOp};
use mugi_numerics::tensor::pseudo_random_matrix;
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{OpTrace, Phase};

/// A full functional decode "attention step" built only from the public API:
/// WOQ projection GEMM, KVQ attention GEMM, VLP softmax, VLP SiLU — checked
/// against the exact reference at every stage.
#[test]
fn functional_attention_step_matches_reference_within_tolerance() {
    let accel = MugiAccelerator::new(128);
    // hidden = array height so the weight rows exactly fill the Mugi array.
    let hidden = 128usize;
    let seq = 32usize;
    let batch = 8usize;

    // Projection: activations (batch x hidden) x Wq^T (hidden x hidden).
    let activations = pseudo_random_matrix(batch, hidden, 1, 0.5);
    let wq = pseudo_random_matrix(hidden, hidden, 2, 0.2);
    let q_weights = accel.quantize_weights(&wq);
    let (queries, stats) = accel.gemm(&activations, &q_weights);
    assert_eq!(queries.rows(), batch);
    assert!(stats.utilization > 0.9, "batch 8 should fill the Mugi columns");
    let reference_q = activations.matmul(&q_weights.dequantize().transpose());
    assert!(queries.max_abs_diff(&reference_q) < 1e-4);

    // Attention scores against a quantized KV cache.
    let keys = pseudo_random_matrix(seq, hidden, 3, 0.2);
    let kv = mugi_numerics::quant::kv_cache_quantize(&keys, hidden);
    let (scores, _) = accel.gemm(&queries, &kv);
    assert_eq!(scores.cols(), seq);

    // VLP softmax per query row, compared with the exact softmax.
    for r in 0..scores.rows() {
        let (probs, _) = accel.softmax(scores.row(r));
        let exact = softmax(scores.row(r));
        let max_err = probs.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        assert!(max_err < 0.05, "row {r} max err {max_err}");
    }

    // FFN activation.
    let ffn_in: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 32.0).collect();
    let (silu_out, _) = accel.activation(NonlinearOp::Silu, &ffn_in);
    for (x, y) in ffn_in.iter().zip(&silu_out) {
        let exact = mugi_numerics::nonlinear::silu(*x);
        assert!((y - exact).abs() <= 0.08 * x.abs() + 0.15, "x={x} y={y} exact={exact}");
    }
}

/// The headline Table 3 claim: Mugi(256) beats SA(16) on Llama 2 70B (GQA) in
/// throughput, energy efficiency and power efficiency, and the NoC scales it.
#[test]
fn headline_table3_claims_hold() {
    let rows = table3_end_to_end(Preset::Quick);
    let get = |label: &str| rows.iter().find(|r| r.design == label).cloned().unwrap();
    let mugi = get("Mugi (256)");
    let sa = get("SA (16)");
    let carat = get("Carat (256)");
    assert!(mugi.tokens_per_second / sa.tokens_per_second > 1.5);
    assert!(mugi.tokens_per_uj / sa.tokens_per_uj > 1.8);
    assert!(mugi.tokens_per_s_per_w / sa.tokens_per_s_per_w > 1.0);
    // Mugi and Carat are throughput-comparable; Mugi is smaller and cheaper.
    assert!((mugi.tokens_per_second / carat.tokens_per_second - 1.0).abs() < 0.3);
    assert!(mugi.area_mm2 < carat.area_mm2);
    // NoC scaling.
    let noc = get("4x4 Mugi (256)");
    assert!(noc.tokens_per_second > mugi.tokens_per_second * 12.0);
}

/// The accuracy claim of Figure 6 on the proxy metric: the exact backend is
/// the floor and VLP is competitive with the best baseline.
#[test]
fn accuracy_ordering_holds_on_proxy_metric() {
    let rows = fig06_accuracy_sweep(Preset::Quick, ModelId::WhisperTiny);
    let exact = best_perplexity(&rows, Method::Exact).unwrap();
    let vlp = best_perplexity(&rows, Method::Vlp).unwrap();
    let pwl = best_perplexity(&rows, Method::Pwl).unwrap();
    let taylor = best_perplexity(&rows, Method::Taylor).unwrap();
    assert!(exact <= vlp + 1e-4);
    assert!(vlp <= pwl.min(taylor) * 1.2);
}

/// The sustainability claim of Figure 15: Mugi has the lowest total carbon.
#[test]
fn carbon_claim_holds() {
    let rows = fig15_carbon(Preset::Quick);
    for gqa in [false, true] {
        let subset: Vec<_> = rows.iter().filter(|r| r.gqa == gqa).collect();
        if subset.is_empty() {
            continue;
        }
        let mugi = subset.iter().find(|r| r.design == "Mugi (256)").unwrap();
        for r in &subset {
            assert!(
                r.norm_total() >= mugi.norm_total() - 1e-9,
                "{} beats Mugi on carbon",
                r.design
            );
        }
    }
}

/// WOQ + KVQ shrink memory footprint by ~4x without changing results beyond
/// the quantization error itself (cross-crate: numerics + workloads + arch).
#[test]
fn quantization_reduces_memory_and_preserves_throughput_model() {
    let cfg = ModelId::Llama2_7b.config();
    let full = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, false, false);
    let quant = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, true, true);
    assert_eq!(full.layer_weight_bytes() / quant.layer_weight_bytes(), 4);
    let design = Design::new(DesignConfig::mugi(256));
    let full_perf = PerfModel::new(design.clone()).evaluate(&full);
    let quant_perf = PerfModel::new(design).evaluate(&quant);
    // Quantization reduces energy per token (less SRAM/HBM traffic).
    assert!(quant_perf.energy_per_token_uj < full_perf.energy_per_token_uj);
}

/// The accelerator facade and the raw perf model agree.
#[test]
fn facade_matches_perf_model() {
    let accel = MugiAccelerator::new(256);
    let via_facade = accel.estimate_llm_throughput(ModelId::Llama2_70b, 8, 4096);
    let via_perf = evaluate_design(DesignConfig::mugi(256), ModelId::Llama2_70b, 8, 4096);
    assert!((via_facade.tokens_per_second - via_perf.tokens_per_second).abs() < 1e-9);
    let noc =
        accel.estimate_llm_throughput_noc(ModelId::Llama2_70b, 8, 4096, NocConfig::mesh_4x4());
    assert!(noc.tokens_per_second > via_facade.tokens_per_second);
}

/// Carbon accounting composes with any design and workload without panicking
/// and produces self-consistent totals.
#[test]
fn carbon_accounting_is_consistent() {
    let carbon = CarbonModel::default_act();
    let trace =
        OpTrace::generate(&ModelId::WhisperLarge.config(), Phase::Decode, 8, 1500, true, true);
    for cfg in [DesignConfig::mugi(128), DesignConfig::systolic(16), DesignConfig::tensor_core()] {
        let perf = PerfModel::new(Design::new(cfg)).evaluate(&trace);
        let fp = footprint_for_tokens(&carbon, &perf, 100_000);
        assert!(fp.operational_g > 0.0);
        assert!(fp.embodied_g > 0.0);
        assert!((fp.total_g() - fp.operational_g - fp.embodied_g).abs() < 1e-9);
    }
}
