//! Cross-crate integration tests for the Mugi reproduction live in the
//! `tests/` directory of this package; this library is intentionally empty.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
