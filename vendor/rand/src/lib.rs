//! Offline stub of `rand` (0.8-compatible subset).
//!
//! Provides the [`RngCore`] / [`SeedableRng`] core traits and the user-facing
//! [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`. Everything
//! the Mugi workload generators use is here; distributions beyond uniform are
//! intentionally out of scope. The API is signature-compatible with the real
//! crate for this subset, so swapping the real `rand` back in is a
//! manifest-only change.
//!
//! ```
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let x: f32 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let d = rng.gen_range(1u32..7);
//! assert!((1..7).contains(&d));
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core interface of a random number generator: a source of `u32`/`u64`
/// words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`from_seed`](Self::from_seed).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-size seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 exactly
    /// like the real `rand` crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public-domain constants), as used by rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (matches `rand`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches `rand`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty : $m:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64,
    i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64,
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let v = self.start + <$t as Standard>::sample(rng) * (self.end - self.start);
                // Rounding in the affine transform can land exactly on the
                // excluded upper bound; keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256**-style generator for non-cryptographic use.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, which is a fixed point of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&y));
            let f = rng.gen_range(f32::EPSILON..1.0);
            assert!(f >= f32::EPSILON && f < 1.0 + 1e-6);
        }
    }

    #[test]
    fn float_gen_range_never_returns_upper_bound() {
        // A span this tight makes the affine transform round onto the end
        // frequently; the clamp must keep the half-open contract.
        let mut rng = SmallRng::seed_from_u64(5);
        let (lo, hi) = (100.0f32, 100.00001f32);
        for _ in 0..100_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn uniform_f32_covers_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
