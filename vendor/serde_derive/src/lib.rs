//! Offline stub of `serde_derive`.
//!
//! The build environment has no registry access, so this crate provides the
//! two derive macros the workspace uses. Each derive parses just enough of the
//! item — its identifier, generic parameters and `where` clause — to emit a
//! marker-trait implementation (`impl serde::Serialize for T {}`), which is
//! all the workspace needs: types derive the traits so that downstream
//! serialization support can be added later, but nothing serializes values
//! today.
//!
//! The `serde` helper attribute is accepted and ignored.

use proc_macro::{Spacing, TokenStream, TokenTree};

/// Derives the stub [`Serialize`](../serde/trait.Serialize.html) marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize", false)
}

/// Derives the stub [`Deserialize`](../serde/trait.Deserialize.html) marker
/// trait (for any lifetime `'de`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize", true)
}

/// Extracts the shape of the derive target and emits
/// `impl <trait> for <type>` with the generics and `where` clause repeated
/// verbatim.
fn marker_impl(input: TokenStream, trait_name: &str, lifetime: bool) -> TokenStream {
    let item = parse_item(input);
    let (params, args) = split_generics(&item.generics);
    let where_clause = if item.where_clause.is_empty() {
        String::new()
    } else {
        format!(" where {}", item.where_clause)
    };
    let code = if lifetime {
        let de_params =
            if params.is_empty() { "<'de>".to_string() } else { format!("<'de, {params}>") };
        format!(
            "#[automatically_derived] impl {de_params} ::serde::{trait_name}<'de> \
             for {}{args}{where_clause} {{}}",
            item.ident
        )
    } else {
        let p = if params.is_empty() { String::new() } else { format!("<{params}>") };
        format!(
            "#[automatically_derived] impl {p} ::serde::{trait_name} for {}{args}{where_clause} {{}}",
            item.ident
        )
    };
    code.parse().expect("stub derive generated invalid Rust")
}

struct Item {
    ident: String,
    generics: String,
    where_clause: String,
}

/// Parses a `struct`/`enum`/`union` item into name, generic parameter list
/// and `where` clause source text.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, visibility and modifiers until the item keyword.
    let mut ident = None;
    for tok in tokens.by_ref() {
        if let TokenTree::Ident(kw) = &tok {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                break;
            }
        }
    }
    if let Some(TokenTree::Ident(name)) = tokens.next() {
        ident = Some(name.to_string());
    }
    let ident = ident.expect("derive target must be a struct, enum or union");

    // Collect the generic parameter list `<...>` if one follows the name. A
    // `>` only closes the list when it is not the tail of a `->` arrow (the
    // `-` is a Joint-spaced punct immediately before it).
    let mut generics = String::new();
    let mut depth = 0usize;
    let mut prev_joint_minus = false;
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        depth = 1;
        for tok in tokens.by_ref() {
            let arrow_tail = prev_joint_minus;
            prev_joint_minus = matches!(&tok, TokenTree::Punct(p) if p.as_char() == '-' && p.spacing() == Spacing::Joint);
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !arrow_tail => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            push_token(&mut generics, &tok);
        }
    }

    // Collect an optional `where` clause: everything up to the item body
    // (brace group or, for tuple structs, the trailing `;`).
    let mut where_clause = String::new();
    if matches!(tokens.peek(), Some(TokenTree::Ident(kw)) if kw.to_string() == "where") {
        tokens.next();
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Group(g) if g.delimiter() == proc_macro::Delimiter::Brace => {
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => {}
            }
            push_token(&mut where_clause, &tok);
        }
    }

    Item {
        ident,
        generics: generics.trim().to_string(),
        where_clause: where_clause.trim().to_string(),
    }
}

/// Appends a token's source text. Joint-spaced puncts (the halves of `->`,
/// `::`, the `'` of a lifetime) glue to the next token; everything else gets
/// a trailing space.
fn push_token(out: &mut String, tok: &TokenTree) {
    out.push_str(&tok.to_string());
    match tok {
        TokenTree::Punct(p) if p.spacing() == Spacing::Joint => {}
        _ => out.push(' '),
    }
}

/// Splits a generics source like `'a , T : Clone` into the parameter list used
/// on the `impl` (`'a, T: Clone`) and the argument list used on the type
/// (`<'a, T>`).
fn split_generics(generics: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let mut args = Vec::new();
    for param in split_top_level_commas(generics) {
        let param = param.trim();
        // Drop bounds and defaults: `T : Clone = X` -> `T`.
        let head = param.split(|c| c == ':' || c == '=').next().unwrap_or(param).trim();
        if head.starts_with("const ") {
            args.push(head.trim_start_matches("const ").trim().to_string());
        } else {
            args.push(head.to_string());
        }
    }
    (generics.to_string(), format!("<{}>", args.join(", ")))
}

/// Splits on commas that are not nested inside `<...>` bounds or `(...)`
/// argument lists.
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut prev = ' ';
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' if prev != '-' => depth -= 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                prev = c;
                continue;
            }
            _ => {}
        }
        cur.push(c);
        if !c.is_whitespace() {
            prev = c;
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}
