//! Offline stub of `rand_chacha`.
//!
//! Unlike the other stubs this one carries a faithful implementation of the
//! ChaCha8 block function (RFC 7539 quarter-round, 8 rounds), because the
//! workload generators lean on its statistical quality. Only the word-stream
//! interface is exposed; stream positioning and the 12/20-round variants are
//! out of scope.
//!
//! ```
//! use rand_chacha::rand_core::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use rand::Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let x: f32 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! ```

#![warn(missing_docs)]

pub mod rand_core {
    //! Re-export of the core RNG traits, mirroring the real crate's
    //! `rand_chacha::rand_core` facade.
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher state: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Buffered keystream words from the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "generate a new block".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the ChaCha8 block function and refills the keystream buffer.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, buffer: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn keystream_is_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn blocks_differ_as_counter_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn uniform_floats_behave() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mean: f32 = (0..10_000).map(|_| rng.gen::<f32>()).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
