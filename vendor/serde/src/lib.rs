//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its configuration and
//! result types but never serializes a value (there is no `serde_json` in the
//! build environment). This stub keeps those derives compiling by providing
//! the two traits as markers plus derive macros that implement them; the
//! public surface matches the subset of `serde 1.x` the workspace uses, so
//! the real crate can be dropped in without touching any source file.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize)]
//! struct Config {
//!     rows: usize,
//! }
//!
//! fn assert_serialize<T: Serialize>(_: &T) {}
//! assert_serialize(&Config { rows: 256 });
//! ```

#![warn(missing_docs)]

// Lets the `::serde::...` paths emitted by the derive macros resolve even
// inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of `serde::Serialize`; implemented by `#[derive(Serialize)]`.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`; implemented by
/// `#[derive(Deserialize)]`.
pub trait Deserialize<'de> {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Plain {
        a: u32,
        b: Vec<f32>,
    }

    #[derive(Serialize, Deserialize)]
    enum Kind {
        #[allow(dead_code)]
        One,
        #[allow(dead_code)]
        Two(u8),
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<T: Clone> {
        #[allow(dead_code)]
        inner: T,
    }

    #[derive(Serialize, Deserialize)]
    struct WithWhere<T>
    where
        T: Clone,
    {
        #[allow(dead_code)]
        inner: T,
    }

    #[derive(Serialize)]
    struct WithFnBound<F: Fn(u8, u8) -> u8> {
        #[allow(dead_code)]
        op: F,
    }

    #[derive(Serialize, Deserialize)]
    struct WithLifetime<'a, T: Clone> {
        #[allow(dead_code)]
        inner: &'a T,
    }

    fn is_serialize<T: Serialize>() {}
    fn is_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_impls() {
        is_serialize::<Plain>();
        is_deserialize::<Plain>();
        is_serialize::<Kind>();
        is_serialize::<Generic<u8>>();
        is_deserialize::<Generic<u8>>();
        is_serialize::<WithWhere<u8>>();
        is_deserialize::<WithWhere<u8>>();
        is_serialize::<WithFnBound<fn(u8, u8) -> u8>>();
        is_serialize::<WithLifetime<'static, u8>>();
    }
}
