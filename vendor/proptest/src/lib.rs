//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API that the Mugi property suites
//! use: the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//! [`prop_assume!`] macros, the [`strategy::Strategy`] trait with range /
//! `any` / collection / sample strategies, and a deterministic SplitMix64
//! based case runner.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its case number and message only;
//! * the case stream is a pure function of the test name, so failures
//!   reproduce exactly across runs and machines;
//! * `PROPTEST_CASES` controls the number of cases (default 256).
//!
//! ```
//! use proptest::prelude::*;
//!
//! let mut rng = proptest::test_runner::TestRng::from_seed(1);
//! let strat = prop::collection::vec(0u32..10, 1..4);
//! let v = strat.sample(&mut rng);
//! assert!(!v.is_empty() && v.len() < 4);
//! assert!(v.iter().all(|&x| x < 10));
//! ```

#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation and test-case error plumbing.

    /// Number of cases per property, from `PROPTEST_CASES` (default 256).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
    }

    /// A SplitMix64 generator; cheap, uniform and deterministic.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5DEE_CE66_D6C1_8B2F }
        }

        /// Creates a generator whose stream is a pure function of `name`
        /// (FNV-1a hash), so every property gets an independent but
        /// reproducible case sequence.
        pub fn for_test_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject,
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant from a preformatted message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty variant list.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len() as u64) as usize;
            self.variants[i].sample(rng)
        }
    }

    /// Wraps a sampling closure as a strategy (used by [`crate::prop_compose!`]).
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
        f: F,
        _marker: PhantomData<fn() -> T>,
    }

    /// Builds a strategy from a sampling function.
    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
        FnStrategy { f, _marker: PhantomData }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                    // The f64→$t cast and the affine transform can both round
                    // up to exactly the excluded upper bound; clamp below it.
                    if v < self.end {
                        v
                    } else {
                        self.end.next_down().max(self.start)
                    }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + rng.next_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    float_ranges!(f32, f64);

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! The [`any`] entry point for whole-domain strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a value uniformly from the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// Returns the whole-domain strategy for `T` (e.g. `any::<u16>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a length specification for [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select(values)` — panics on an empty list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    /// Module-style access (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Defines property tests. Each function body runs for
/// [`test_runner::cases`] accepted cases with inputs drawn from the given
/// strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::cases();
            let mut rng = $crate::test_runner::TestRng::for_test_name(stringify!($name));
            let mut accepted = 0usize;
            let mut drawn = 0usize;
            while accepted < cases {
                drawn += 1;
                assert!(
                    drawn <= cases.saturating_mul(16),
                    "property {} rejected too many cases ({} draws for {} accepted)",
                    stringify!($name),
                    drawn,
                    accepted
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "property {} falsified at case {}: {}",
                        stringify!($name),
                        accepted,
                        msg
                    ),
                }
            }
        }
    )*};
}

/// Defines a named composite strategy:
/// `prop_compose! { fn f(args)(x in s, ...) -> T { body } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $vis:vis fn $name:ident($($fnargs:tt)*)
            ($($arg:pat_param in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $vis fn $name($($fnargs)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but fails only the current case, with location info.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_f32() -> impl Strategy<Value = f32> {
        prop_oneof![-1.0f32..1.0, -100.0f32..100.0]
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -2i32..=2, f in 0.25f32..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn tight_float_range_excludes_upper_bound(v in 100.0f32..100.00001) {
            // The f64→f32 cast rounds onto the end of a span this tight
            // unless the strategy clamps below the exclusive bound.
            prop_assert!((100.0..100.00001).contains(&v), "v = {v}");
        }

        #[test]
        fn vec_strategy_obeys_length(v in prop::collection::vec(0u64..5, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn select_picks_from_options(g in prop::sample::select(vec![16usize, 32, 64])) {
            prop_assert!(g == 16 || g == 32 || g == 64);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_any_compose(x in small_f32(), b in any::<bool>(), bits in any::<u16>()) {
            prop_assert!(x.abs() <= 100.0);
            prop_assert!(b || !b);
            let _ = bits;
        }
    }

    prop_compose! {
        fn point()(x in 0i32..10, y in 0i32..10) -> (i32, i32) {
            (x, y)
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_work(p in point()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }

    #[test]
    fn case_stream_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test_name("t");
        let mut b = crate::test_runner::TestRng::for_test_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
