//! Offline stub of `criterion`.
//!
//! Provides the group/bench/iter API surface the Mugi benches use and
//! actually measures wall-clock time (median of `sample_size` samples, each
//! auto-scaled to run for at least one millisecond), printing one line per
//! benchmark. Statistical analysis, plotting and baselines are out of scope;
//! the real crate can be swapped back in through the workspace manifest
//! without touching any bench source.
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("demo");
//! group.sample_size(10);
//! group.bench_function("add", |b| b.iter(|| criterion::black_box(1 + 1)));
//! group.finish();
//! ```

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 20 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reports are per-line).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// A benchmark id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over an auto-scaled number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Picks an iteration count so one sample takes ≥ 1 ms, then reports the
/// median over `samples` samples.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate: grow the iteration count until a sample is long enough to
    // time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{label:<60} {:>12}/iter  ({iters} iters x {samples} samples)", format_time(median));
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Collects benchmark functions into a runnable group, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_round_trips() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn time_formatting_picks_sensible_units() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("us"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with("s"));
    }
}
