//! The `mugi-lint` command-line driver: walks the workspace sources, runs
//! the rule engine and renders diagnostics.
//!
//! ```text
//! mugi-lint [PATHS…] [--json] [--deny] [--quiet]
//! ```
//!
//! * `PATHS` — files or directories to scan (default: `crates`, `examples`,
//!   `tests` under the current directory). Directories named `target`,
//!   `vendor`, `.git` or `fixtures` are skipped.
//! * `--json` — emit the machine-readable report on stdout instead of
//!   rustc-style diagnostics.
//! * `--deny` — exit non-zero if any unsuppressed violation (or malformed
//!   allow) remains: the CI mode.
//! * `--quiet` — suppress per-finding output, print only the summary table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mugi_lint::diag::{render_human, render_json, Summary};
use mugi_lint::rules::analyze_file;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

/// Recursively collects `.rs` files under `path`, sorted for deterministic
/// output (the linter practices what it preaches: `read_dir` order is
/// OS-arbitrary).
fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else { return };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for child in children {
        let name = child.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if child.is_dir() && SKIP_DIRS.contains(&name) {
            continue;
        }
        collect_rs_files(&child, out);
    }
}

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = Vec::new();
    let (mut json, mut deny, mut quiet) = (false, false, false);
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: mugi-lint [PATHS…] [--json] [--deny] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => roots.push(PathBuf::from(other)),
        }
    }
    if roots.is_empty() {
        roots = ["crates", "examples", "tests"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect();
    }

    let mut files = Vec::new();
    for root in &roots {
        collect_rs_files(root, &mut files);
    }
    files.sort();
    files.dedup();

    let mut reports = Vec::new();
    let mut summary = Summary::default();
    let mut human = String::new();
    for file in &files {
        let Ok(src) = std::fs::read_to_string(file) else {
            eprintln!("mugi-lint: cannot read {}", file.display());
            continue;
        };
        let rel = file.to_string_lossy().replace('\\', "/");
        let report = analyze_file(&rel, &src);
        summary.add(&report);
        if !json && !quiet {
            for f in report.findings.iter().filter(|f| f.allowed.is_none()) {
                human.push_str(&render_human(f, &src));
                human.push('\n');
            }
            for m in &report.malformed {
                human.push_str(&format!(
                    "error[malformed-allow]: {}\n --> {}:{}\n\n",
                    m.problem, m.file, m.line
                ));
            }
            for a in report.allows.iter().filter(|a| a.used == 0) {
                human.push_str(&format!(
                    "warning[stale-allow]: allow({}) suppresses nothing\n --> {}:{}\n\n",
                    a.rule.id(),
                    rel,
                    a.line
                ));
            }
        }
        reports.push((rel, report));
    }

    if json {
        print!("{}", render_json(&reports, &summary));
    } else {
        print!("{human}");
        print!("{}", summary.render_table());
    }

    let failing = summary.violations() + summary.malformed;
    if deny && failing > 0 {
        if !json {
            eprintln!("mugi-lint: --deny: {failing} unsuppressed violation(s)");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
