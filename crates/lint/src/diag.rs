//! Diagnostic rendering: rustc-style human output, a per-rule summary table
//! and a hand-rolled `--json` report (the linter is zero-dependency, so no
//! serde here — same approach as the workspace's `scale_sweep --json`).

use crate::rules::{FileReport, Finding, Rule};

/// Renders one finding rustc-style, with the offending source line excerpt
/// and a caret span.
///
/// ```text
/// error[unordered-iteration]: `.values()` on `buckets` (a HashMap/HashSet) …
///   --> crates/core/src/memo.rs:107:34
///    |
/// 107 |         let mut ticks: Vec<u64> = self.buckets.values()…
///    |                                                 ^^^^^^
///    = help: iterate a sorted view …
/// ```
pub fn render_human(f: &Finding, src: &str) -> String {
    let line_text = src.lines().nth(f.line as usize - 1).unwrap_or("");
    let gutter = f.line.to_string();
    let pad = " ".repeat(gutter.len());
    let caret_pad: String = line_text
        .chars()
        .scan(0u32, |col, c| {
            *col += c.len_utf8() as u32;
            Some(if *col < f.col {
                if c == '\t' {
                    '\t'
                } else {
                    ' '
                }
            } else {
                '\0'
            })
        })
        .take_while(|&c| c != '\0')
        .collect();
    let carets = "^".repeat((f.len as usize).clamp(1, 40));
    let severity = if f.allowed.is_some() { "allowed" } else { "error" };
    let mut out = format!(
        "{severity}[{}]: {}\n{pad}--> {}:{}:{}\n{pad} |\n{gutter} | {}\n{pad} | {caret_pad}{carets}\n",
        f.rule.id(),
        f.message,
        f.file,
        f.line,
        f.col,
        line_text,
    );
    if let Some(reason) = &f.allowed {
        out.push_str(&format!("{pad} = allowed: {reason}\n"));
    } else {
        out.push_str(&format!("{pad} = help: {}\n", f.rule.help()));
        out.push_str(&format!(
            "{pad} = note: suppress with `// mugi-lint: allow({}, \"reason\")` on this line, \
             the line above, or the module header\n",
            f.rule.id()
        ));
    }
    out
}

/// Per-rule violation/allow counts plus totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleCounts {
    /// Unsuppressed findings.
    pub violations: u64,
    /// Findings suppressed by a justified allow.
    pub allowed: u64,
}

/// Aggregated counts across a set of file reports.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Counts per rule, in [`Rule::ALL`] order.
    pub per_rule: [RuleCounts; Rule::ALL.len()],
    /// Total files scanned.
    pub files: u64,
    /// Well-formed allow comments seen.
    pub allows: u64,
    /// Allow comments that suppressed nothing (stale).
    pub unused_allows: u64,
    /// Malformed suppression comments.
    pub malformed: u64,
}

impl Summary {
    /// Folds one file report into the counts.
    pub fn add(&mut self, report: &FileReport) {
        self.files += 1;
        for f in &report.findings {
            let slot = Rule::ALL.iter().position(|&r| r == f.rule).unwrap_or(0);
            if f.allowed.is_some() {
                self.per_rule[slot].allowed += 1;
            } else {
                self.per_rule[slot].violations += 1;
            }
        }
        self.allows += report.allows.len() as u64;
        self.unused_allows += report.allows.iter().filter(|a| a.used == 0).count() as u64;
        self.malformed += report.malformed.len() as u64;
    }

    /// Total unsuppressed violations.
    pub fn violations(&self) -> u64 {
        self.per_rule.iter().map(|c| c.violations).sum()
    }

    /// Total suppressed findings.
    pub fn allowed(&self) -> u64 {
        self.per_rule.iter().map(|c| c.allowed).sum()
    }

    /// Renders the self-report summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<28} {:>10} {:>10}\n", "rule", "violations", "allowed"));
        for (slot, rule) in Rule::ALL.iter().enumerate() {
            let c = self.per_rule[slot];
            out.push_str(&format!("{:<28} {:>10} {:>10}\n", rule.id(), c.violations, c.allowed));
        }
        out.push_str(&format!(
            "{:<28} {:>10} {:>10}\n",
            "total",
            self.violations(),
            self.allowed()
        ));
        out.push_str(&format!(
            "files scanned: {}   allows: {} ({} unused)   malformed allows: {}\n",
            self.files, self.allows, self.unused_allows, self.malformed
        ));
        out
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the whole run as a JSON document: summary, findings (suppressed
/// included, with reasons), stale and malformed allows.
pub fn render_json(reports: &[(String, FileReport)], summary: &Summary) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", summary.files));
    out.push_str(&format!(
        "  \"summary\": {{\"violations\": {}, \"allowed\": {}, \"unused_allows\": {}, \
         \"malformed_allows\": {}, \"per_rule\": {{",
        summary.violations(),
        summary.allowed(),
        summary.unused_allows,
        summary.malformed
    ));
    for (slot, rule) in Rule::ALL.iter().enumerate() {
        let c = summary.per_rule[slot];
        out.push_str(&format!(
            "{}\"{}\": {{\"violations\": {}, \"allowed\": {}}}",
            if slot == 0 { "" } else { ", " },
            rule.id(),
            c.violations,
            c.allowed
        ));
    }
    out.push_str("}},\n  \"findings\": [\n");
    let mut first = true;
    for (_, report) in reports {
        for f in &report.findings {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"message\": \"{}\", \"allowed\": {}, \"reason\": {}}}",
                f.rule.id(),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message),
                f.allowed.is_some(),
                match &f.allowed {
                    Some(r) => format!("\"{}\"", json_escape(r)),
                    None => "null".to_string(),
                }
            ));
        }
    }
    out.push_str("\n  ],\n  \"unused_allows\": [\n");
    let mut first = true;
    for (path, report) in reports {
        for a in report.allows.iter().filter(|a| a.used == 0) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\"}}",
                json_escape(path),
                a.line,
                a.rule.id()
            ));
        }
    }
    out.push_str("\n  ],\n  \"malformed_allows\": [\n");
    let mut first = true;
    for (_, report) in reports {
        for m in &report.malformed {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"problem\": \"{}\"}}",
                json_escape(&m.file),
                m.line,
                json_escape(&m.problem)
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}
