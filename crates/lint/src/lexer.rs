//! A hand-rolled Rust lexer, just deep enough for token-stream linting.
//!
//! The goal is not to reimplement `rustc_lexer` but to tokenize real-world
//! Rust source *reliably enough* that rule matching never fires inside a
//! string literal or comment, and span information (line, column) is exact.
//! The hard parts that actually matter for that are all here:
//!
//! * raw strings with arbitrary `#` depth (`r#"…"#`, `br##"…"##`),
//! * nested block comments (`/* /* */ */`),
//! * the `'a` lifetime vs `'a'` char-literal ambiguity (including escapes
//!   and multi-byte chars),
//! * raw identifiers (`r#match`), byte/char/C strings, numeric literals with
//!   type suffixes and exponents, and a leading shebang line.
//!
//! Comments are produced as tokens (not skipped) because the rule engine
//! reads `mugi-lint: allow(...)` suppressions out of them.

/// The lexical class of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `HashMap`, `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'_` (no closing quote).
    Lifetime,
    /// A character literal (`'a'`, `'\n'`, `'\u{1F600}'`) or byte literal
    /// (`b'x'`).
    Char,
    /// A string literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`,
    /// `c"…"`.
    Str,
    /// A numeric literal, including any type suffix (`1_000u64`, `0xFF`,
    /// `2.5e-3`).
    Num,
    /// A single punctuation byte (`.`, `:`, `[`, `!`, …). Multi-byte
    /// operators arrive as consecutive tokens; rules match the sequence.
    Punct,
    /// `// …` (including `///` and `//!`), text up to the newline.
    LineComment,
    /// `/* … */` with nesting, text including delimiters.
    BlockComment,
    /// A `#!/usr/bin/env …` line at file start.
    Shebang,
}

/// One token: kind plus the byte span and 1-based line/column of its start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Whether `b` can start an identifier.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// Whether `b` can continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// The cursor state of one lexing pass.
struct Lexer<'s> {
    src: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer { src: src.as_bytes(), i: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    /// Advances one byte, maintaining line/column counters.
    fn bump(&mut self) {
        if self.src[self.i] == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes bytes while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }

    /// Consumes to (and including) the end of the current line.
    fn eat_line(&mut self) {
        while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'\n' {
                break;
            }
        }
    }

    /// Consumes a `/* … */` block comment with nesting, starting at `/*`.
    fn eat_block_comment(&mut self) {
        debug_assert_eq!((self.peek(0), self.peek(1)), (Some(b'/'), Some(b'*')));
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: tolerate, token ends at EOF
            }
        }
    }

    /// Consumes a `"…"` body (opening quote already pending), honouring
    /// backslash escapes.
    fn eat_quoted(&mut self) {
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.bump();
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(if self.peek(1).is_some() { 2 } else { 1 }),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body starting at the `r` (after any `b`): `r`,
    /// `n` hashes, `"`, text, `"`, `n` hashes.
    fn eat_raw_string(&mut self) {
        debug_assert_eq!(self.peek(0), Some(b'r'));
        self.bump();
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; tolerate
        }
        self.bump();
        'scan: while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != Some(b'#') {
                        continue 'scan;
                    }
                }
                self.bump_n(hashes);
                return;
            }
        }
    }

    /// Consumes a char or byte literal starting at the `'`.
    fn eat_char_literal(&mut self) {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        self.bump();
        if self.peek(0) == Some(b'\\') {
            self.bump();
            if self.peek(0).is_some() {
                self.bump(); // the escaped byte ('\'' / '\\' / '\u', …)
            }
            // `\u{…}` payload
            if self.peek(0) == Some(b'{') {
                self.eat_while(|b| b != b'}');
                if self.peek(0).is_some() {
                    self.bump();
                }
            }
        } else if self.peek(0).is_some() {
            self.bump(); // first byte of the char (multi-byte chars: rest below)
        }
        self.eat_while(|b| b != b'\'');
        if self.peek(0).is_some() {
            self.bump(); // closing quote
        }
    }

    /// Consumes a numeric literal starting at a digit, suffix included.
    fn eat_number(&mut self) {
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'))
        {
            self.bump_n(2);
            self.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
            return;
        }
        self.eat_while(|b| b.is_ascii_digit() || b == b'_');
        // Fractional part: only if the dot is followed by a digit, so `1..4`
        // and `1.max(2)` keep their dots as punctuation.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            self.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+') | Some(b'-')));
            if self.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                self.bump_n(1 + sign);
                self.eat_while(|b| b.is_ascii_digit() || b == b'_');
            }
        }
        // Type suffix (`u64`, `f32`, …) — also swallows a stray `e` that
        // didn't form an exponent, matching rustc's token boundaries closely
        // enough for linting.
        self.eat_while(is_ident_continue);
    }
}

/// Tokenizes `src`. Never fails: malformed input degrades to best-effort
/// tokens rather than an error, which is the right trade for a linter that
/// runs on code `rustc` will also see.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    let mut tokens = Vec::new();
    // Shebang: `#!` at byte 0 not followed by `[` (which would be an inner
    // attribute).
    if lx.peek(0) == Some(b'#') && lx.peek(1) == Some(b'!') && lx.peek(2) != Some(b'[') {
        let (line, col) = (lx.line, lx.col);
        let start = lx.i;
        lx.eat_line();
        tokens.push(Token { kind: TokenKind::Shebang, start, end: lx.i, line, col });
    }
    while let Some(b) = lx.peek(0) {
        if b.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        let start = lx.i;
        let kind = match b {
            b'/' if lx.peek(1) == Some(b'/') => {
                lx.eat_line();
                TokenKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.eat_block_comment();
                TokenKind::BlockComment
            }
            b'"' => {
                lx.eat_quoted();
                TokenKind::Str
            }
            b'r' if lx.peek(1) == Some(b'"') => {
                lx.eat_raw_string();
                TokenKind::Str
            }
            b'r' if lx.peek(1) == Some(b'#') => {
                // `r#"…"#` raw string vs `r#ident` raw identifier.
                if lx.peek(2) == Some(b'"') || lx.peek(2) == Some(b'#') {
                    lx.eat_raw_string();
                    TokenKind::Str
                } else {
                    lx.bump_n(2);
                    lx.eat_while(is_ident_continue);
                    TokenKind::Ident
                }
            }
            b'b' | b'c' if lx.peek(1) == Some(b'"') => {
                lx.bump();
                lx.eat_quoted();
                TokenKind::Str
            }
            b'b' if lx.peek(1) == Some(b'r') && matches!(lx.peek(2), Some(b'"') | Some(b'#')) => {
                lx.bump();
                lx.eat_raw_string();
                TokenKind::Str
            }
            b'b' if lx.peek(1) == Some(b'\'') => {
                lx.bump();
                lx.eat_char_literal();
                TokenKind::Char
            }
            b'\'' => {
                // Lifetime vs char literal. `'X` where `X` is an identifier
                // char is a lifetime *unless* the identifier is exactly one
                // char long and followed by a closing `'` (then it's `'a'`).
                // A non-ASCII byte after the quote can only start a char
                // literal (lifetimes are ASCII identifiers in practice).
                let second = lx.peek(1);
                let second_is_ident = second.is_some_and(|b| is_ident_start(b) && b < 0x80);
                if second_is_ident && lx.peek(2) != Some(b'\'') {
                    lx.bump(); // the quote
                    lx.eat_while(is_ident_continue);
                    TokenKind::Lifetime
                } else if second_is_ident && lx.peek(2) == Some(b'\'') {
                    lx.bump_n(3); // 'a'
                    TokenKind::Char
                } else {
                    lx.eat_char_literal();
                    TokenKind::Char
                }
            }
            b if b.is_ascii_digit() => {
                lx.eat_number();
                TokenKind::Num
            }
            b if is_ident_start(b) => {
                lx.eat_while(is_ident_continue);
                TokenKind::Ident
            }
            _ => {
                lx.bump();
                TokenKind::Punct
            }
        };
        tokens.push(Token { kind, start, end: lx.i, line, col });
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).map(|(_, t)| t).collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(chars, ["'a'", "'\\n'"]);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = r####"let s = r#"HashMap.iter() "quoted" unwrap()"#; let x = 1;"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("HashMap") && t.contains("quoted")));
        // Nothing inside the raw string leaked out as an identifier.
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some(";"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::BlockComment, "/* outer /* inner */ still comment */".into()),
                (TokenKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn shebang_only_at_file_start() {
        let toks = kinds("#!/usr/bin/env rust\nfn main() {}");
        assert_eq!(toks[0].0, TokenKind::Shebang);
        // An inner attribute is *not* a shebang.
        let toks = kinds("#![forbid(unsafe_code)]");
        assert_eq!(toks[0], (TokenKind::Punct, "#".into()));
    }

    #[test]
    fn numeric_literals_keep_suffixes() {
        let toks = kinds("1_000u64 0xFFu8 2.5e-3f32 1..4 7.max(2)");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Num).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, ["1_000u64", "0xFFu8", "2.5e-3f32", "1", "4", "7", "2"]);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = r#\"raw\"#;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t == "r#\"raw\"#"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds("b\"bytes\" br#\"raw bytes\"# b'x' c\"cstr\"");
        let strs = toks.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        assert_eq!(strs, 3);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "b'x'"));
    }

    #[test]
    fn spans_are_line_and_col_accurate() {
        let src = "fn main() {\n    let x = 1;\n}\n";
        let toks = lex(src);
        let x = toks.iter().find(|t| t.text(src) == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 9));
        let one = toks.iter().find(|t| t.text(src) == "1").unwrap();
        assert_eq!((one.line, one.col), (2, 13));
        let close = toks.iter().rev().find(|t| t.text(src) == "}").unwrap();
        assert_eq!((close.line, close.col), (3, 1));
    }

    #[test]
    fn multibyte_char_literal_and_unicode_escape() {
        let toks = kinds("let a = 'é'; let b = '\\u{1F600}'; let c: &'static str = \"s\";");
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t.as_str()).collect();
        assert_eq!(chars, ["'é'", "'\\u{1F600}'"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn escaped_quote_in_string_does_not_end_it() {
        let toks = kinds(r#"let s = "he said \"hi\" loudly"; x"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == r#""he said \"hi\" loudly""#));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
    }
}
