//! `mugi-lint` — the workspace determinism & hot-path hygiene analyzer.
//!
//! Every claim this reproduction makes rests on *bit-identity*: golden
//! fingerprints via `to_bits`, FNV-1a fold checksums, oracle-vs-event
//! property tests. This crate statically enforces the coding contracts that
//! bit-identity depends on, at CI time instead of at golden-mismatch time:
//!
//! * **unordered-iteration** — no iteration over `HashMap`/`HashSet` in the
//!   simulation crates (iteration order feeds FP-sum order and batch
//!   formation);
//! * **ambient-nondeterminism** — no `Instant::now` / `SystemTime` /
//!   `thread_rng` / `RandomState` feeding simulated state;
//! * **float-accumulation-order** — no float `sum`/`fold` over an unordered
//!   source;
//! * **lossy-cast** — no narrowing / sign-crossing / float→int `as` casts in
//!   the cycle/byte-accounting hot path;
//! * **hot-path-panic** — no `unwrap`/`expect`/`panic!`/indexing in the
//!   serving hot path files.
//!
//! Suppression is explicit and auditable: a
//! `// mugi-lint: allow(rule-id, "reason")` comment on the offending line
//! (or in the module header, for file scope) suppresses a finding, and the
//! mandatory reason string is carried into the report. Stale and malformed
//! allows are reported too, so the suppression surface cannot rot silently.
//!
//! The implementation is a hand-rolled Rust [`lexer`] (raw strings, nested
//! block comments, char-vs-lifetime disambiguation) plus a token-stream
//! [`rules`] engine with span-accurate [`diag`]nostics, human and `--json`
//! output, and a `--deny` exit-code mode wired into CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diag;
pub mod lexer;
pub mod rules;

pub use diag::{render_human, render_json, Summary};
pub use rules::{analyze_file, FileReport, Finding, Rule};
