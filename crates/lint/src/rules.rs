//! The token-stream rule engine and the five workspace rules.
//!
//! Every rule is a linear pass over the lexed token stream with a small
//! amount of per-file context gathered first (which identifiers are declared
//! with unordered container types, which with known primitive types, which
//! token ranges belong to `#[cfg(test)]` / `#[test]` code). The rules are
//! deliberately *lexical*: they trade the precision of type-aware analysis
//! for zero dependencies and a guarantee that they run in CI in milliseconds.
//! Where a lexical rule cannot prove safety it flags, and the suppression
//! syntax (`// mugi-lint: allow(rule-id, "reason")`) turns every false
//! positive into an auditable, justified decision.
//!
//! Rule catalogue (ids as used in `allow(...)`):
//!
//! | id | contract it protects |
//! |----|----------------------|
//! | `unordered-iteration` | iteration order over `HashMap`/`HashSet` feeds FP-sum order and batch formation in the simulation crates |
//! | `ambient-nondeterminism` | wall clocks and OS-seeded RNG must never feed simulated state |
//! | `float-accumulation-order` | float `sum`/`fold` over an unordered source reorders FP addition |
//! | `lossy-cast` | narrowing/sign-crossing `as` on counters truncates at 10⁶-request scale |
//! | `hot-path-panic` | `unwrap`/`expect`/`panic!`/indexing in the serving hot path |

use crate::lexer::{lex, Token, TokenKind};

/// The five rules, in catalogue order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: iteration over `HashMap`/`HashSet` contents in simulation crates.
    UnorderedIteration,
    /// R2: `Instant::now` / `SystemTime` / `thread_rng` / `RandomState`.
    AmbientNondeterminism,
    /// R3: float `sum`/`fold` whose source iterator is unordered.
    FloatAccumulationOrder,
    /// R4: narrowing / sign-crossing / float→int `as` casts in hot-path
    /// modules.
    LossyCast,
    /// R5: panics and indexing in the serving hot path.
    HotPathPanic,
}

impl Rule {
    /// Every rule, in catalogue order.
    pub const ALL: [Rule; 5] = [
        Rule::UnorderedIteration,
        Rule::AmbientNondeterminism,
        Rule::FloatAccumulationOrder,
        Rule::LossyCast,
        Rule::HotPathPanic,
    ];

    /// The stable rule id used in diagnostics and `allow(...)` comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::AmbientNondeterminism => "ambient-nondeterminism",
            Rule::FloatAccumulationOrder => "float-accumulation-order",
            Rule::LossyCast => "lossy-cast",
            Rule::HotPathPanic => "hot-path-panic",
        }
    }

    /// Parses a rule id as written in an `allow(...)` comment.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line remediation advice appended to every diagnostic.
    pub fn help(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => {
                "iterate a sorted view (BTreeMap/BTreeSet, or collect-and-sort) so iteration \
                 order is deterministic"
            }
            Rule::AmbientNondeterminism => {
                "thread simulated time / the vendored seeded RNG through instead; ambient clocks \
                 and OS entropy break replayability"
            }
            Rule::FloatAccumulationOrder => {
                "accumulate from an ordered source (sorted keys, Vec) — FP addition does not \
                 commute, so order changes the golden fingerprints"
            }
            Rule::LossyCast => {
                "use try_into()/try_from or a checked helper (mugi_numerics::cast) so truncation \
                 panics instead of silently wrapping"
            }
            Rule::HotPathPanic => {
                "return an error or use get()/checked APIs; a panic in the serving hot path \
                 takes down the whole simulation"
            }
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based byte column of the offending token.
    pub col: u32,
    /// Length in bytes of the offending token (for caret underlining).
    pub len: u32,
    /// What went wrong, in one sentence.
    pub message: String,
    /// The reason string of the `allow(...)` that suppressed this finding,
    /// if one did.
    pub allowed: Option<String>,
}

/// One `mugi-lint: allow(...)` comment found in a file.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule it suppresses.
    pub rule: Rule,
    /// The mandatory justification string.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based line the allow suppresses: the comment's own line for a
    /// trailing comment, the next code line when the comment stands alone
    /// (the clippy-attribute placement).
    pub applies_to: u32,
    /// Whether the comment sits in the module header (before the first
    /// non-attribute code token), making it file-scoped.
    pub module_scope: bool,
    /// How many findings it suppressed (0 = stale allow, reported).
    pub used: u32,
}

/// A malformed suppression comment (unknown rule id, or missing the
/// mandatory reason). Reported so a typo cannot silently disable auditing.
#[derive(Clone, Debug)]
pub struct MalformedAllow {
    /// File the comment is in.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Everything the engine learned about one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// All findings, suppressed ones included (with their reasons).
    pub findings: Vec<Finding>,
    /// All well-formed allows, with use counts.
    pub allows: Vec<Allow>,
    /// Suppression comments that could not be parsed.
    pub malformed: Vec<MalformedAllow>,
}

/// Identifiers whose calls make iteration order visible on an unordered
/// container.
const UNORDERED_ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Crates whose state feeds the bit-identity fingerprints: R1/R3 apply here.
const SIMULATION_CRATES: [&str; 4] = ["arch", "core", "runtime", "workloads"];

/// Hot-path files for R5 (matched on basename, under any simulation crate).
const HOT_PANIC_FILES: [&str; 6] =
    ["engine.rs", "scheduler.rs", "executor.rs", "memo.rs", "control.rs", "kv.rs"];

/// Whether `path` is a cycle/byte-accounting hot-path module for R4.
fn is_hot_cast_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.contains("crates/runtime/src/")
        || p.ends_with("crates/arch/src/engine.rs")
        || p.ends_with("crates/arch/src/perf.rs")
        || p.ends_with("crates/core/src/memo.rs")
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`), or
/// the first path segment for non-crate roots (`examples`, `tests`).
fn crate_of(path: &str) -> &str {
    let p = path.trim_start_matches("./");
    let mut parts = p.split(['/', '\\']);
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some(first) => first,
        None => "",
    }
}

/// A primitive numeric type as seen in source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Prim {
    Int {
        /// Bit width; `usize`/`isize` are entered asymmetrically (64 as a
        /// source, 32 as a target) so platform-dependent widths are treated
        /// pessimistically in both directions.
        bits: u32,
        signed: bool,
    },
    Float {
        bits: u32,
    },
}

/// Parses a primitive type name. `usize`/`isize` width depends on `as_source`
/// (see [`Prim::Int::bits`]).
fn prim(name: &str, as_source: bool) -> Option<Prim> {
    let ptr_bits = if as_source { 64 } else { 32 };
    Some(match name {
        "u8" => Prim::Int { bits: 8, signed: false },
        "u16" => Prim::Int { bits: 16, signed: false },
        "u32" => Prim::Int { bits: 32, signed: false },
        "u64" => Prim::Int { bits: 64, signed: false },
        "u128" => Prim::Int { bits: 128, signed: false },
        "usize" => Prim::Int { bits: ptr_bits, signed: false },
        "i8" => Prim::Int { bits: 8, signed: true },
        "i16" => Prim::Int { bits: 16, signed: true },
        "i32" => Prim::Int { bits: 32, signed: true },
        "i64" => Prim::Int { bits: 64, signed: true },
        "i128" => Prim::Int { bits: 128, signed: true },
        "isize" => Prim::Int { bits: ptr_bits, signed: true },
        "f32" => Prim::Float { bits: 32 },
        "f64" => Prim::Float { bits: 64 },
        _ => return None,
    })
}

/// Whether casting `src` to `dst` with `as` can lose information.
fn cast_is_lossy(src: Prim, dst: Prim) -> bool {
    match (src, dst) {
        (Prim::Int { bits: sb, signed: ss }, Prim::Int { bits: db, signed: ds }) => {
            match (ss, ds) {
                (false, false) | (true, true) => sb > db,
                (false, true) => sb >= db, // top bit becomes a sign
                (true, false) => true,     // negatives wrap
            }
        }
        (Prim::Float { .. }, Prim::Int { .. }) => true, // truncates / saturates
        (Prim::Float { bits: sb }, Prim::Float { bits: db }) => sb > db,
        // int → float precision loss (u64 > 2^53) is real but out of scope
        // for R4: the workspace's int→float casts are reporting-side and
        // bounded; a future rule could tighten this.
        (Prim::Int { .. }, Prim::Float { .. }) => false,
    }
}

/// Per-file lexical context shared by the rule passes.
struct Ctx<'s> {
    src: &'s str,
    path: &'s str,
    /// Code tokens only (comments and shebang stripped).
    code: Vec<Token>,
    /// Comment tokens only.
    comments: Vec<Token>,
    /// `in_test[i]` — code token `i` is inside `#[cfg(test)]` or `#[test]`
    /// item.
    in_test: Vec<bool>,
    /// Identifiers declared with `HashMap`/`HashSet` types in this file.
    unordered_idents: Vec<String>,
    /// Identifiers with a lexically visible primitive type.
    prim_idents: Vec<(String, Prim)>,
}

impl<'s> Ctx<'s> {
    fn text(&self, t: &Token) -> &'s str {
        t.text(self.src)
    }

    /// The code token at `i`, if any.
    fn tok(&self, i: usize) -> Option<&Token> {
        self.code.get(i)
    }

    /// Whether code token `i` is the identifier `s`.
    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Ident && self.text(t) == s)
    }

    /// Whether code token `i` is the punctuation byte `c`.
    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Punct && self.text(t).starts_with(c))
    }

    /// Index of the matching closer for the opener at `i` (`(`/`[`/`{`).
    fn matching_close(&self, i: usize) -> Option<usize> {
        let (open, close) = match self.text(&self.code[i]) {
            "(" => ('(', ')'),
            "[" => ('[', ']'),
            "{" => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0i64;
        for j in i..self.code.len() {
            if self.is_punct(j, open) {
                depth += 1;
            } else if self.is_punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }

    /// Index of the matching opener for the closer at `i`, scanning back.
    fn matching_open(&self, i: usize) -> Option<usize> {
        let (open, close) = match self.text(&self.code[i]) {
            ")" => ('(', ')'),
            "]" => ('[', ']'),
            "}" => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0i64;
        for j in (0..=i).rev() {
            if self.is_punct(j, close) {
                depth += 1;
            } else if self.is_punct(j, open) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }
}

/// Builds the per-file context: lexes, separates comments, masks test code
/// and gathers declared-type facts.
fn build_ctx<'s>(path: &'s str, src: &'s str) -> Ctx<'s> {
    let all = lex(src);
    let mut code = Vec::new();
    let mut comments = Vec::new();
    for t in all {
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => comments.push(t),
            TokenKind::Shebang => {}
            _ => code.push(t),
        }
    }
    let mut ctx = Ctx {
        src,
        path,
        code,
        comments,
        in_test: Vec::new(),
        unordered_idents: Vec::new(),
        prim_idents: Vec::new(),
    };
    ctx.in_test = test_mask(&ctx);
    collect_declared_types(&mut ctx);
    ctx
}

/// Marks the token ranges of `#[cfg(test)]`- and `#[test]`-attributed items
/// (the attribute through the matching close brace / semicolon).
fn test_mask(ctx: &Ctx<'_>) -> Vec<bool> {
    let mut mask = vec![false; ctx.code.len()];
    let mut i = 0;
    while i < ctx.code.len() {
        let is_test_attr = ctx.is_punct(i, '#')
            && ctx.is_punct(i + 1, '[')
            && ((ctx.is_ident(i + 2, "cfg")
                && ctx.is_punct(i + 3, '(')
                && ctx.is_ident(i + 4, "test"))
                || (ctx.is_ident(i + 2, "test") && ctx.is_punct(i + 3, ']')));
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Skip past the attribute itself, then mask through the end of the
        // attributed item: the matching `}` of its first brace block (or a
        // terminating `;` for brace-less items).
        let attr_end = ctx.matching_close(i + 1).unwrap_or(i + 1);
        let mut j = attr_end + 1;
        let mut end = ctx.code.len().saturating_sub(1);
        while j < ctx.code.len() {
            if ctx.is_punct(j, '{') {
                end = ctx.matching_close(j).unwrap_or(end);
                break;
            }
            if ctx.is_punct(j, ';') {
                end = j;
                break;
            }
            j += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Gathers identifiers with lexically visible types: `name: HashMap<…>`
/// struct fields / lets / params, `let name = HashMap::new()` style
/// constructions, `name: u64` primitive annotations and `let name = 0u64`
/// suffixed-literal initializers.
fn collect_declared_types(ctx: &mut Ctx<'_>) {
    let mut unordered = Vec::new();
    let mut prims = Vec::new();
    for i in 0..ctx.code.len() {
        let t = &ctx.code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(t);
        // `name : <type tokens up to a delimiter at angle-depth 0>`
        if ctx.is_punct(i + 1, ':')
            && !ctx.is_punct(i + 2, ':')
            && i.checked_sub(1).is_none_or(|p| !ctx.is_punct(p, ':'))
        {
            let mut angle: i64 = 0;
            let mut j = i + 2;
            let mut first_prim: Option<Prim> = None;
            let mut saw_unordered = false;
            while let Some(tt) = ctx.tok(j) {
                let txt = ctx.text(tt);
                match txt {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "," | ";" | "=" | ")" | "{" | "}" if angle <= 0 => break,
                    _ => {}
                }
                if tt.kind == TokenKind::Ident {
                    if txt == "HashMap" || txt == "HashSet" {
                        saw_unordered = true;
                    }
                    if first_prim.is_none() && angle == 0 {
                        first_prim = prim(txt, true);
                    }
                }
                j += 1;
                if j > i + 40 {
                    break; // bail on pathological declarations
                }
            }
            if saw_unordered {
                unordered.push(name.to_string());
            } else if let Some(p) = first_prim {
                prims.push((name.to_string(), p));
            }
        }
        // `let [mut] name = HashMap::…` / `= 0u64`
        if name == "let" {
            let mut k = i + 1;
            if ctx.is_ident(k, "mut") {
                k += 1;
            }
            let Some(bound) = ctx.tok(k) else { continue };
            if bound.kind != TokenKind::Ident || !ctx.is_punct(k + 1, '=') {
                continue;
            }
            let bound_name = ctx.text(bound).to_string();
            if let Some(init) = ctx.tok(k + 2) {
                let init_txt = ctx.text(init);
                if init.kind == TokenKind::Ident && (init_txt == "HashMap" || init_txt == "HashSet")
                {
                    unordered.push(bound_name);
                } else if init.kind == TokenKind::Num {
                    if let Some(p) = literal_prim(init_txt) {
                        prims.push((bound_name, p));
                    }
                }
            }
        }
    }
    unordered.sort();
    unordered.dedup();
    ctx.unordered_idents = unordered;
    ctx.prim_idents = prims;
}

/// The type of a suffixed numeric literal (`1u64` → `u64`), if suffixed.
fn literal_prim(text: &str) -> Option<Prim> {
    for name in [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64",
    ] {
        if text.ends_with(name) && text.len() > name.len() {
            return prim(name, true);
        }
    }
    None
}

/// The numeric value of an unsuffixed integer literal, if parseable.
fn literal_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean.strip_prefix("0x") {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = clean.strip_prefix("0o") {
        u128::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = clean.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()
    } else {
        clean.parse().ok()
    }
}

/// Whether an unsuffixed int literal fits `dst` without loss.
fn literal_fits(value: u128, dst: Prim) -> bool {
    match dst {
        Prim::Int { bits, signed } => {
            let usable = if signed { bits - 1 } else { bits };
            u32::try_from(value.leading_zeros()).is_ok() && 128 - value.leading_zeros() <= usable
        }
        Prim::Float { .. } => true,
    }
}

/// Analyzes one file and returns every finding, allow and malformed allow.
/// `path` should be workspace-relative — it drives which rules apply.
pub fn analyze_file(path: &str, src: &str) -> FileReport {
    let ctx = build_ctx(path, src);
    let mut findings = Vec::new();

    let krate = crate_of(path);
    let sim_crate = SIMULATION_CRATES.contains(&krate);
    let basename = path.rsplit(['/', '\\']).next().unwrap_or(path);

    if sim_crate {
        rule_unordered_iteration(&ctx, &mut findings);
        rule_float_accumulation(&ctx, &mut findings);
    }
    rule_ambient_nondeterminism(&ctx, &mut findings);
    if is_hot_cast_path(path) {
        rule_lossy_cast(&ctx, &mut findings);
    }
    if HOT_PANIC_FILES.contains(&basename) && path.replace('\\', "/").contains("/src/") {
        rule_hot_path_panic(&ctx, &mut findings);
    }

    findings.sort_by_key(|f| (f.line, f.col, f.rule));

    let (mut allows, malformed) = parse_allows(&ctx, path);
    for f in &mut findings {
        // Line-scoped allow first, then a module-header allow for the rule.
        let hit = allows
            .iter()
            .position(|a| !a.module_scope && a.applies_to == f.line && a.rule == f.rule)
            .or_else(|| allows.iter().position(|a| a.module_scope && a.rule == f.rule));
        if let Some(a) = hit.map(|i| &mut allows[i]) {
            a.used += 1;
            f.allowed = Some(a.reason.clone());
        }
    }
    FileReport { findings, allows, malformed }
}

/// Parses every `mugi-lint: allow(rule, "reason")` comment in the file.
fn parse_allows(ctx: &Ctx<'_>, path: &str) -> (Vec<Allow>, Vec<MalformedAllow>) {
    // Module scope = the comment sits before the first code token that is
    // not part of a leading run of inner attributes (`#![…]`).
    let mut first_code_line = u32::MAX;
    let mut i = 0;
    while i < ctx.code.len() {
        if ctx.is_punct(i, '#') && ctx.is_punct(i + 1, '!') && ctx.is_punct(i + 2, '[') {
            i = ctx.matching_close(i + 2).map_or(i + 3, |c| c + 1);
            continue;
        }
        first_code_line = ctx.code[i].line;
        break;
    }

    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for c in &ctx.comments {
        let text = ctx.text(c);
        // The directive must open the comment body (after the `//`/`//!`/`/*`
        // sigils). Prose that merely *mentions* the syntax — always preceded
        // by words or a backtick — is documentation, not a suppression.
        let body = if let Some(rest) = text.strip_prefix("//") {
            rest.trim_start_matches(['/', '!'])
        } else if let Some(rest) = text.strip_prefix("/*") {
            rest.trim_start_matches(['*', '!']).trim_end_matches("*/")
        } else {
            text
        };
        let Some(rest) = body.trim_start().strip_prefix("mugi-lint:") else { continue };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            malformed.push(MalformedAllow {
                file: path.to_string(),
                line: c.line,
                problem: "expected `allow(rule-id, \"reason\")` after `mugi-lint:`".into(),
            });
            continue;
        };
        let Some(close) = args.rfind(')') else {
            malformed.push(MalformedAllow {
                file: path.to_string(),
                line: c.line,
                problem: "unclosed `allow(`".into(),
            });
            continue;
        };
        let args = &args[..close];
        let (id, reason) = match args.split_once(',') {
            Some((id, reason)) => (id.trim(), reason.trim()),
            None => (args.trim(), ""),
        };
        let Some(rule) = Rule::from_id(id) else {
            malformed.push(MalformedAllow {
                file: path.to_string(),
                line: c.line,
                problem: format!("unknown rule id `{id}`"),
            });
            continue;
        };
        let reason = reason.trim_matches('"').trim();
        if reason.is_empty() {
            malformed.push(MalformedAllow {
                file: path.to_string(),
                line: c.line,
                problem: format!(
                    "allow({id}) carries no reason — a justification string is mandatory"
                ),
            });
            continue;
        }
        // A trailing comment covers its own line; a comment standing alone
        // on a line covers the next code line, like a clippy attribute.
        let own_line_has_code = ctx.code.iter().any(|t| t.line == c.line);
        let applies_to = if own_line_has_code {
            c.line
        } else {
            ctx.code.iter().map(|t| t.line).find(|&l| l > c.line).unwrap_or(c.line)
        };
        allows.push(Allow {
            rule,
            reason: reason.to_string(),
            line: c.line,
            applies_to,
            module_scope: c.line < first_code_line,
            used: 0,
        });
    }
    (allows, malformed)
}

/// Emits a finding at code token `i`.
fn flag(ctx: &Ctx<'_>, findings: &mut Vec<Finding>, rule: Rule, i: usize, message: String) {
    let t = &ctx.code[i];
    findings.push(Finding {
        rule,
        file: ctx.path.to_string(),
        line: t.line,
        col: t.col,
        len: (t.end - t.start) as u32,
        message,
        allowed: None,
    });
}

/// R1: `for … in <unordered>` loops and order-revealing method calls on
/// identifiers declared with `HashMap`/`HashSet` types.
fn rule_unordered_iteration(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    let unordered = |s: &str| ctx.unordered_idents.iter().any(|u| u == s);
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        // `for <pat> in <expr> {` — flag an unordered ident inside the expr.
        if ctx.is_ident(i, "for") {
            let mut j = i + 1;
            let mut saw_in = None;
            while j < ctx.code.len() && j < i + 60 {
                if ctx.is_punct(j, '{') {
                    break;
                }
                if ctx.is_ident(j, "in") {
                    saw_in = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(in_idx) = saw_in {
                let mut k = in_idx + 1;
                let mut depth = 0i64;
                while k < ctx.code.len() {
                    let txt = ctx.text(&ctx.code[k]);
                    match txt {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    if ctx.code[k].kind == TokenKind::Ident && unordered(txt) {
                        flag(
                            ctx,
                            findings,
                            Rule::UnorderedIteration,
                            k,
                            format!(
                                "`for` loop iterates `{txt}`, which is declared as an unordered \
                                 HashMap/HashSet: iteration order is arbitrary"
                            ),
                        );
                        break;
                    }
                    k += 1;
                }
            }
        }
        // `<ident>.method(` with method in the order-revealing family.
        if ctx.code[i].kind == TokenKind::Ident
            && UNORDERED_ITER_METHODS.contains(&ctx.text(&ctx.code[i]))
            && i >= 2
            && ctx.is_punct(i - 1, '.')
            && ctx.is_punct(i + 1, '(')
            && ctx.code[i - 2].kind == TokenKind::Ident
        {
            let recv = ctx.text(&ctx.code[i - 2]);
            if unordered(recv) {
                let method = ctx.text(&ctx.code[i]);
                flag(
                    ctx,
                    findings,
                    Rule::UnorderedIteration,
                    i,
                    format!(
                        "`.{method}()` on `{recv}` (a HashMap/HashSet) observes arbitrary \
                         iteration order"
                    ),
                );
            }
        }
    }
}

/// R2: ambient clocks and OS-seeded randomness.
fn rule_ambient_nondeterminism(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] || ctx.code[i].kind != TokenKind::Ident {
            continue;
        }
        let txt = ctx.text(&ctx.code[i]);
        let message = match txt {
            "Instant"
                if ctx.is_punct(i + 1, ':')
                    && ctx.is_punct(i + 2, ':')
                    && ctx.is_ident(i + 3, "now") =>
            {
                "`Instant::now()` reads the wall clock — simulated state must come from the \
                 cycle-accurate clock"
            }
            "SystemTime" => {
                "`SystemTime` reads ambient time — simulated state must come from the \
                 cycle-accurate clock"
            }
            "thread_rng" => {
                "`thread_rng()` is OS-seeded — use the vendored seeded RNG (rand_chacha) so runs \
                 replay bit-identically"
            }
            "RandomState" => {
                "`RandomState` seeds hashing from OS entropy — hash iteration order would differ \
                 across runs"
            }
            _ => continue,
        };
        flag(ctx, findings, Rule::AmbientNondeterminism, i, message.to_string());
    }
}

/// Walks a method chain backwards from the `.` at `dot`, collecting the
/// receiver identifiers and method names seen along the chain root-ward.
fn chain_idents(ctx: &Ctx<'_>, dot: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = dot; // points at a `.`
    loop {
        if i == 0 {
            break;
        }
        let prev = i - 1;
        match ctx.code[prev].kind {
            TokenKind::Punct if ctx.text(&ctx.code[prev]) == ")" => {
                // a call — skip its arguments, then expect `ident` before it
                let Some(open) = ctx.matching_open(prev) else { break };
                if open == 0 {
                    break;
                }
                let m = open - 1;
                if ctx.code[m].kind == TokenKind::Ident {
                    names.push(ctx.text(&ctx.code[m]).to_string());
                    if m >= 1 && ctx.is_punct(m - 1, '.') {
                        i = m - 1;
                        continue;
                    }
                }
                break;
            }
            TokenKind::Punct if ctx.text(&ctx.code[prev]) == "?" => {
                i = prev;
                continue;
            }
            TokenKind::Ident => {
                names.push(ctx.text(&ctx.code[prev]).to_string());
                if prev >= 1 && ctx.is_punct(prev - 1, '.') {
                    i = prev - 1;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    names
}

/// R3: `.sum::<f32|f64>()` / float `fold` chained from an unordered source.
fn rule_float_accumulation(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    let unordered = |s: &str| ctx.unordered_idents.iter().any(|u| u == s);
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] || ctx.code[i].kind != TokenKind::Ident {
            continue;
        }
        if i == 0 || !ctx.is_punct(i - 1, '.') {
            continue;
        }
        let name = ctx.text(&ctx.code[i]);
        let float_acc = match name {
            "sum" | "product" => {
                // turbofish `::<f32|f64>`
                ctx.is_punct(i + 1, ':')
                    && ctx.is_punct(i + 2, ':')
                    && ctx.is_punct(i + 3, '<')
                    && (ctx.is_ident(i + 4, "f32") || ctx.is_ident(i + 4, "f64"))
            }
            "fold" => {
                // first argument is a float literal (possibly negated)
                let mut j = i + 2; // past `(`
                if ctx.is_punct(j, '-') {
                    j += 1;
                }
                ctx.is_punct(i + 1, '(')
                    && ctx.tok(j).is_some_and(|t| {
                        t.kind == TokenKind::Num && {
                            let s = ctx.text(t);
                            s.contains('.') || s.ends_with("f32") || s.ends_with("f64")
                        }
                    })
            }
            _ => false,
        };
        if !float_acc {
            continue;
        }
        let chain = chain_idents(ctx, i - 1);
        if let Some(bad) = chain.iter().find(|n| unordered(n)) {
            flag(
                ctx,
                findings,
                Rule::FloatAccumulationOrder,
                i,
                format!(
                    "float `{name}` accumulates over `{bad}`, an unordered HashMap/HashSet \
                     source: FP addition order would vary run to run"
                ),
            );
        }
    }
}

/// R4: `as` casts that can narrow, cross signs or truncate floats, on
/// sources whose type is lexically visible — plus unknown-source casts to
/// integer targets, which cannot be proven lossless.
fn rule_lossy_cast(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] || !ctx.is_ident(i, "as") {
            continue;
        }
        let Some(dst_tok) = ctx.tok(i + 1) else { continue };
        if dst_tok.kind != TokenKind::Ident {
            continue;
        }
        let Some(dst) = prim(ctx.text(dst_tok), false) else { continue };
        if i == 0 {
            continue;
        }
        let prev = &ctx.code[i - 1];
        // Resolve the source type where the tokens allow it.
        let src_ty: Option<Prim> = match prev.kind {
            TokenKind::Num => {
                let txt = ctx.text(prev);
                if i >= 2 && ctx.is_punct(i - 2, '.') {
                    // `x.0 as …` is a tuple-field access, not a literal.
                    None
                } else if let Some(p) = literal_prim(txt) {
                    Some(p)
                } else if txt.contains('.') || txt.contains('e') || txt.contains('E') {
                    Some(Prim::Float { bits: 64 })
                } else if let Some(v) = literal_value(txt) {
                    // Unsuffixed int literal: decide by value.
                    if literal_fits(v, dst) {
                        continue;
                    }
                    flag(
                        ctx,
                        findings,
                        Rule::LossyCast,
                        i,
                        format!("literal `{txt}` does not fit `{}`", ctx.text(dst_tok)),
                    );
                    continue;
                } else {
                    None
                }
            }
            TokenKind::Ident => {
                let name = ctx.text(prev);
                ctx.prim_idents.iter().find(|(n, _)| n == name).map(|&(_, p)| p)
            }
            TokenKind::Punct if ctx.text(prev) == ")" => {
                // `….len() as X` / `….round() as X`: peek at the method.
                ctx.matching_open(i - 1)
                    .and_then(|open| open.checked_sub(1))
                    .filter(|&m| {
                        ctx.code[m].kind == TokenKind::Ident && m >= 1 && ctx.is_punct(m - 1, '.')
                    })
                    .and_then(|m| match ctx.text(&ctx.code[m]) {
                        "len" | "count" | "capacity" => prim("usize", true),
                        "round" | "ceil" | "floor" | "trunc" => Some(Prim::Float { bits: 64 }),
                        _ => None,
                    })
            }
            _ => None,
        };
        match src_ty {
            Some(src) if cast_is_lossy(src, dst) => {
                flag(
                    ctx,
                    findings,
                    Rule::LossyCast,
                    i,
                    format!(
                        "`as {}` from a {} source can lose information",
                        ctx.text(dst_tok),
                        describe(src),
                    ),
                );
            }
            Some(_) => {} // provably lossless
            None if matches!(dst, Prim::Int { .. }) => {
                flag(
                    ctx,
                    findings,
                    Rule::LossyCast,
                    i,
                    format!(
                        "`as {}` on a source of unknown width cannot be proven lossless",
                        ctx.text(dst_tok),
                    ),
                );
            }
            None => {} // unknown → float: out of scope
        }
    }
}

/// Human description of a primitive for diagnostics.
fn describe(p: Prim) -> String {
    match p {
        Prim::Int { bits, signed } => {
            format!("{}{bits}-bit integer", if signed { "signed " } else { "unsigned " })
        }
        Prim::Float { bits } => format!("{bits}-bit float"),
    }
}

/// R5: panic-family calls and bracket indexing in the hot-path files.
fn rule_hot_path_panic(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.code[i];
        match t.kind {
            TokenKind::Ident => {
                let txt = ctx.text(t);
                let is_method_panic = (txt == "unwrap" || txt == "expect")
                    && i >= 1
                    && ctx.is_punct(i - 1, '.')
                    && ctx.is_punct(i + 1, '(');
                let is_macro_panic =
                    matches!(txt, "panic" | "unreachable" | "todo" | "unimplemented")
                        && ctx.is_punct(i + 1, '!');
                if is_method_panic {
                    flag(
                        ctx,
                        findings,
                        Rule::HotPathPanic,
                        i,
                        format!("`.{txt}()` can panic in the serving hot path"),
                    );
                } else if is_macro_panic {
                    flag(
                        ctx,
                        findings,
                        Rule::HotPathPanic,
                        i,
                        format!("`{txt}!` aborts the serving hot path"),
                    );
                }
            }
            TokenKind::Punct if ctx.text(t) == "[" && i >= 1 => {
                let prev = &ctx.code[i - 1];
                let indexes = match prev.kind {
                    TokenKind::Ident => {
                        // `arr[…]` — but not keywords that precede array
                        // literals / types.
                        !matches!(
                            ctx.text(prev),
                            "let"
                                | "mut"
                                | "in"
                                | "return"
                                | "match"
                                | "if"
                                | "else"
                                | "as"
                                | "const"
                                | "static"
                                | "ref"
                                | "move"
                                | "break"
                                | "where"
                        )
                    }
                    TokenKind::Punct => matches!(ctx.text(prev), ")" | "]"),
                    _ => false,
                };
                if indexes {
                    flag(
                        ctx,
                        findings,
                        Rule::HotPathPanic,
                        i,
                        "bracket indexing panics on out-of-bounds in the serving hot path"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}
