//! Known-bad fixture: narrowing and truncating `as` casts on counters.

pub fn narrow(cycles: u64) -> usize {
    cycles as usize
}

pub fn truncate(ratio: f64) -> u64 {
    ratio as u64
}

pub fn widen(pages: u32) -> u64 {
    pages as u64
}

pub fn id_field(id: (u64, u32)) -> usize {
    id.0 as usize
}
