//! Known-bad fixture: observing HashMap iteration order in a sim crate.
use std::collections::HashMap;

pub fn snapshot(counts: &HashMap<String, u64>) -> Vec<u64> {
    counts.values().copied().collect()
}

pub fn drain_all(counts: &mut HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for (_key, value) in counts.drain() {
        total += value;
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn iteration_in_test_code_is_not_flagged() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        for _ in m.iter() {}
    }
}
