//! Known-bad fixture: ambient clocks and OS entropy.

pub fn wall_clock_ns() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

pub fn os_seeded() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
