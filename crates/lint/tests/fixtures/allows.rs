//! Fixture: suppression comments in every placement, plus malformed ones.
// mugi-lint: allow(lossy-cast, "module-wide: counters here are bounded by construction")

pub fn narrow(cycles: u64) -> usize {
    cycles as usize
}

pub fn shrink(pages: u64) -> u32 {
    // mugi-lint: allow(ambient-nondeterminism, "stale: nothing here reads a clock")
    pages as u32
}

pub fn checked(total: u64) -> u32 {
    // mugi-lint: allow(lossy-cast, "line-above: total is below 2^32 by construction")
    total as u32
}

pub fn wall() -> std::time::Instant {
    std::time::Instant::now() // mugi-lint: allow(ambient-nondeterminism, "trailing: measures the host, not the simulation")
}

// mugi-lint: allow(bogus-rule, "unknown id")
// mugi-lint: allow(hot-path-panic)
