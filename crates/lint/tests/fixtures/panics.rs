//! Known-bad fixture: panic family and indexing in a hot-path file.

pub fn first(xs: &[u64]) -> u64 {
    xs[0]
}

pub fn must(opt: Option<u64>) -> u64 {
    opt.unwrap()
}

pub fn explain(opt: Option<u64>) -> u64 {
    opt.expect("must be present")
}

pub fn boom() -> ! {
    panic!("hot path")
}
