//! Known-bad fixture: float accumulation over an unordered source.
use std::collections::HashMap;

pub fn total_mass(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().copied().sum::<f64>()
}
