//! Rule-engine integration tests: known-bad fixtures must produce exactly
//! the expected diagnostics, with accurate spans, and the suppression
//! machinery must honour every documented placement.
//!
//! The fixtures live in `tests/fixtures/`, which the `mugi-lint` CLI skips
//! when walking the workspace — they are test data, not workspace sources.
//! Each fixture is analyzed under a synthetic workspace path so the
//! path-scoped rules (simulation crates, hot-path files) apply as intended.

use mugi_lint::rules::{analyze_file, Rule};

const UNORDERED: &str = include_str!("fixtures/unordered.rs");
const AMBIENT: &str = include_str!("fixtures/ambient.rs");
const FLOAT_ACC: &str = include_str!("fixtures/float_acc.rs");
const LOSSY: &str = include_str!("fixtures/lossy.rs");
const PANICS: &str = include_str!("fixtures/panics.rs");
const ALLOWS: &str = include_str!("fixtures/allows.rs");

/// `(rule, line, col)` of every finding, in report order.
fn spans(path: &str, src: &str) -> Vec<(Rule, u32, u32)> {
    analyze_file(path, src).findings.iter().map(|f| (f.rule, f.line, f.col)).collect()
}

#[test]
fn unordered_iteration_diagnostics_are_exact() {
    let got = spans("crates/runtime/src/fixture.rs", UNORDERED);
    assert_eq!(
        got,
        vec![
            // `.values()` call: the method token is underlined.
            (Rule::UnorderedIteration, 5, 12),
            // `for … in counts.drain()`: both the loop source ident and the
            // order-revealing method are reported.
            (Rule::UnorderedIteration, 10, 26),
            (Rule::UnorderedIteration, 10, 33),
        ],
        "iteration inside the #[cfg(test)] module must stay unflagged"
    );
}

#[test]
fn simulation_crate_gating_disables_r1() {
    // Identical source under a non-simulation crate: R1/R3 do not apply.
    assert_eq!(spans("crates/carbon/src/fixture.rs", UNORDERED), vec![]);
}

#[test]
fn ambient_nondeterminism_diagnostics_are_exact() {
    // R2 applies in every crate, bench included.
    let got = spans("crates/bench/src/fixture.rs", AMBIENT);
    assert_eq!(
        got,
        vec![
            (Rule::AmbientNondeterminism, 4, 25), // Instant::now
            (Rule::AmbientNondeterminism, 9, 25), // thread_rng
        ]
    );
}

#[test]
fn float_accumulation_diagnostics_are_exact() {
    let got = spans("crates/core/src/fixture.rs", FLOAT_ACC);
    assert_eq!(
        got,
        vec![
            // `.values()` itself (R1) and the float `sum` fed by it (R3).
            (Rule::UnorderedIteration, 5, 13),
            (Rule::FloatAccumulationOrder, 5, 31),
        ]
    );
}

#[test]
fn lossy_cast_diagnostics_are_exact() {
    let report = analyze_file("crates/runtime/src/fixture.rs", LOSSY);
    let got: Vec<(Rule, u32, u32)> =
        report.findings.iter().map(|f| (f.rule, f.line, f.col)).collect();
    assert_eq!(
        got,
        vec![
            (Rule::LossyCast, 4, 12),  // u64 → usize narrows
            (Rule::LossyCast, 8, 11),  // f64 → u64 truncates
            (Rule::LossyCast, 16, 10), // tuple field: unknown source width
        ],
        "the widening u32 → u64 cast on line 12 must NOT be flagged"
    );
    assert!(
        report.findings[0].message.contains("unsigned 64-bit integer"),
        "known-source casts name the source type: {}",
        report.findings[0].message
    );
    assert!(
        report.findings[2].message.contains("unknown width"),
        "tuple-field casts are reported as unprovable: {}",
        report.findings[2].message
    );
}

#[test]
fn lossy_cast_only_applies_to_hot_path_modules() {
    assert_eq!(spans("crates/vlp/src/fixture.rs", LOSSY), vec![]);
}

#[test]
fn hot_path_panic_diagnostics_are_exact() {
    let got = spans("crates/runtime/src/scheduler.rs", PANICS);
    assert_eq!(
        got,
        vec![
            (Rule::HotPathPanic, 4, 7),  // xs[0]
            (Rule::HotPathPanic, 8, 9),  // .unwrap()
            (Rule::HotPathPanic, 12, 9), // .expect()
            (Rule::HotPathPanic, 16, 5), // panic!
        ],
        "the slice type `&[u64]` in the signature must not read as indexing"
    );
}

#[test]
fn hot_path_panic_only_applies_to_hot_files() {
    assert_eq!(spans("crates/runtime/src/stats.rs", PANICS), vec![]);
}

#[test]
fn allow_placements_suppress_and_stale_and_malformed_are_reported() {
    let report = analyze_file("crates/runtime/src/fixture.rs", ALLOWS);

    // Every finding is suppressed: module header covers lines 5 and 10, the
    // line-above allow covers 15, the trailing allow covers 19.
    assert_eq!(report.findings.len(), 4);
    for f in &report.findings {
        assert!(f.allowed.is_some(), "finding on line {} escaped suppression", f.line);
    }
    let by_line = |l: u32| {
        report.findings.iter().find(|f| f.line == l).map(|f| f.allowed.clone().unwrap()).unwrap()
    };
    assert!(by_line(5).contains("module-wide"));
    assert!(by_line(10).contains("module-wide"), "wrong-rule line allow must not apply");
    assert!(by_line(15).contains("line-above"), "line-scoped allows take precedence");
    assert!(by_line(19).contains("trailing"));

    // The ambient allow on line 9 names a rule that never fires there.
    let stale: Vec<u32> = report.allows.iter().filter(|a| a.used == 0).map(|a| a.line).collect();
    assert_eq!(stale, vec![9], "exactly the mis-targeted allow is stale");

    // Unknown rule id and missing reason are both malformed, not ignored.
    let problems: Vec<(u32, &str)> =
        report.malformed.iter().map(|m| (m.line, m.problem.as_str())).collect();
    assert_eq!(problems.len(), 2);
    assert_eq!(problems[0].0, 22);
    assert!(problems[0].1.contains("unknown rule id `bogus-rule`"));
    assert_eq!(problems[1].0, 23);
    assert!(problems[1].1.contains("no reason"));
}

#[test]
fn documentation_mentioning_the_directive_is_not_an_allow() {
    let src = "//! Reads `mugi-lint: allow(...)` suppressions out of comments.\nfn noop() {}\n";
    let report = analyze_file("crates/lint/src/fixture.rs", src);
    assert!(report.allows.is_empty());
    assert!(report.malformed.is_empty());
}
