//! Property-based tests for the baseline approximators.

use mugi_approx::lut_direct::DirectLutConfig;
use mugi_approx::pwl::PwlConfig;
use mugi_approx::taylor::TaylorConfig;
use mugi_approx::{
    Approximator, DirectLut, PartialApprox, PiecewiseLinear, PreciseVectorArray, TaylorSeries,
};
use mugi_numerics::nonlinear::{silu, NonlinearOp};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pwl_error_bounded_inside_range(x in -7.9f32..7.9f32) {
        let pwl = PiecewiseLinear::new(
            NonlinearOp::Silu,
            PwlConfig { segments: 22, segment_range: 8.0 },
        );
        // Chord interpolation error of a smooth function over 22 segments of
        // a 16-wide range is comfortably below 0.1.
        prop_assert!((pwl.eval(x) - silu(x)).abs() < 0.1);
    }

    #[test]
    fn pwl_softmax_is_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..32)) {
        let pwl = PiecewiseLinear::new(NonlinearOp::Softmax, PwlConfig::default());
        let probs = pwl.softmax(&logits);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
        prop_assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn taylor_exp_monotone_decreasing_error_with_degree(x in -3.0f32..0.0f32) {
        let low = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 3, center: -1.5 });
        let high = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 11, center: -1.5 });
        let exact = x.exp();
        prop_assert!((high.eval(x) - exact).abs() <= (low.eval(x) - exact).abs() + 1e-5);
    }

    #[test]
    fn taylor_exp_never_negative(x in -20.0f32..5.0f32, degree in 1usize..=9) {
        let t = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree, center: -1.0 });
        prop_assert!(t.eval(x) >= 0.0);
    }

    #[test]
    fn direct_lut_error_bounded_by_bin_width(x in -15.9f32..15.9f32) {
        let cfg = DirectLutConfig { entries: 2048, min_input: -16.0, max_input: 16.0, lanes_per_lut: 8 };
        let lut = DirectLut::new(NonlinearOp::Silu, cfg);
        // Bin width is 32/2048 = 1/64; SiLU has derivative magnitude <= ~1.1,
        // so error per bin is below ~0.02.
        prop_assert!((lut.eval(x) - silu(x)).abs() < 0.03);
    }

    #[test]
    fn partial_approx_sign_behaviour(x in -50.0f32..50.0f32) {
        let pa = PartialApprox::new(NonlinearOp::Silu);
        let y = pa.eval(x);
        // SiLU-like output is >= some small negative bound and follows x for
        // large positive x.
        prop_assert!(y >= -1.0);
        if x > 3.0 {
            prop_assert_eq!(y, x);
        }
        if x < -3.0 {
            prop_assert_eq!(y, 0.0);
        }
    }

    #[test]
    fn precise_is_identity_to_reference(x in -30.0f32..30.0f32) {
        for op in [NonlinearOp::Exp, NonlinearOp::Silu, NonlinearOp::Gelu] {
            let p = PreciseVectorArray::new(op);
            prop_assert_eq!(p.eval(x), op.eval(x));
        }
    }

    #[test]
    fn all_approximators_report_positive_latency(degree in 1usize..=9, segments in 1usize..64) {
        let approximators: Vec<Box<dyn Approximator>> = vec![
            Box::new(PiecewiseLinear::new(NonlinearOp::Silu, PwlConfig { segments, segment_range: 8.0 })),
            Box::new(TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree, center: -1.0 })),
            Box::new(DirectLut::new(NonlinearOp::Gelu, DirectLutConfig::default())),
            Box::new(PartialApprox::new(NonlinearOp::Silu)),
            Box::new(PreciseVectorArray::new(NonlinearOp::Softmax)),
        ];
        for a in &approximators {
            prop_assert!(a.cycles_per_element() >= 1);
            prop_assert!(!a.label().is_empty());
        }
    }
}

#[test]
fn eval_slice_matches_eval() {
    let pwl = PiecewiseLinear::new(NonlinearOp::Gelu, PwlConfig::default());
    let xs = vec![-2.0, -0.5, 0.0, 1.0, 3.0];
    let batch = pwl.eval_slice(&xs);
    for (x, y) in xs.iter().zip(&batch) {
        assert_eq!(pwl.eval(*x), *y);
    }
}
