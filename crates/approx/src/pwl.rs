//! Piecewise-linear (PWL) approximation.
//!
//! The baseline from Section 2.2.2: the function curve is split into uniform
//! segments over a configured input range; each input is located in its
//! segment by comparison and evaluated on that segment's line (`a·x + b`).
//! Outside the range the approximation clamps to the boundary behaviour:
//! softmax/exp inputs below the range flush toward 0, activations above the
//! range follow the identity tail.

use crate::Approximator;
use mugi_numerics::nonlinear::NonlinearOp;
use serde::{Deserialize, Serialize};

/// Configuration of a piecewise-linear approximator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PwlConfig {
    /// Number of linear segments (the paper's baseline uses 22).
    pub segments: usize,
    /// Approximation range half-width `sr`: softmax/exp is approximated over
    /// `[-sr, 0]`, SiLU/GELU over `[-sr, sr]` (as described under Figure 6).
    pub segment_range: f32,
}

impl Default for PwlConfig {
    fn default() -> Self {
        PwlConfig { segments: 22, segment_range: 20.0 }
    }
}

/// A piecewise-linear approximator for one nonlinear op.
#[derive(Clone, Debug)]
pub struct PiecewiseLinear {
    op: NonlinearOp,
    config: PwlConfig,
    /// Segment boundaries (length `segments + 1`).
    breakpoints: Vec<f32>,
    /// Per-segment slope / intercept pairs.
    coefficients: Vec<(f32, f32)>,
}

impl PiecewiseLinear {
    /// Builds the approximator by sampling the exact function at the segment
    /// boundaries (chord interpolation).
    ///
    /// # Panics
    /// Panics if `segments` is zero or `segment_range` is not positive/finite.
    pub fn new(op: NonlinearOp, config: PwlConfig) -> Self {
        assert!(config.segments > 0, "segments must be non-zero");
        assert!(
            config.segment_range > 0.0 && config.segment_range.is_finite(),
            "segment_range must be positive and finite"
        );
        let (lo, hi) = Self::range(op, config.segment_range);
        let n = config.segments;
        let mut breakpoints = Vec::with_capacity(n + 1);
        for i in 0..=n {
            breakpoints.push(lo + (hi - lo) * i as f32 / n as f32);
        }
        let mut coefficients = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = breakpoints[i];
            let x1 = breakpoints[i + 1];
            let y0 = op.eval(x0);
            let y1 = op.eval(x1);
            let slope = (y1 - y0) / (x1 - x0);
            let intercept = y0 - slope * x0;
            coefficients.push((slope, intercept));
        }
        PiecewiseLinear { op, config, breakpoints, coefficients }
    }

    /// The approximation range for an op given the half-width parameter.
    fn range(op: NonlinearOp, sr: f32) -> (f32, f32) {
        match op {
            // Softmax inputs are non-positive after max subtraction.
            NonlinearOp::Exp | NonlinearOp::Softmax => (-sr, 0.0),
            NonlinearOp::Silu | NonlinearOp::Gelu => (-sr, sr),
        }
    }

    /// The configuration used to build this approximator.
    pub fn config(&self) -> &PwlConfig {
        &self.config
    }

    /// Number of stored coefficient pairs.
    pub fn num_segments(&self) -> usize {
        self.coefficients.len()
    }

    /// Storage cost in bits (two BF16 coefficients plus one BF16 breakpoint
    /// per segment), used by the area model.
    pub fn storage_bits(&self) -> usize {
        self.num_segments() * 3 * 16
    }
}

impl Approximator for PiecewiseLinear {
    fn op(&self) -> NonlinearOp {
        self.op
    }

    fn eval(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        let lo = *self.breakpoints.first().expect("non-empty breakpoints");
        let hi = *self.breakpoints.last().expect("non-empty breakpoints");
        if x < lo {
            // Below the range: softmax flushes toward zero, activations follow
            // their negative tail (which is ~0 for SiLU/GELU as well).
            return match self.op {
                NonlinearOp::Exp | NonlinearOp::Softmax => 0.0,
                NonlinearOp::Silu | NonlinearOp::Gelu => 0.0,
            };
        }
        if x > hi {
            return match self.op {
                NonlinearOp::Exp | NonlinearOp::Softmax => self.op.eval(hi),
                // Identity tail for large positive activations.
                NonlinearOp::Silu | NonlinearOp::Gelu => x,
            };
        }
        // Locate the segment by uniform index (hardware uses a comparator
        // tree; uniform segments make it a simple divide).
        let n = self.coefficients.len();
        let t = ((x - lo) / (hi - lo) * n as f32).floor() as usize;
        let idx = t.min(n - 1);
        let (a, b) = self.coefficients[idx];
        a * x + b
    }

    fn cycles_per_element(&self) -> u64 {
        // Compare/select plus one multiply-add on the vector array.
        2
    }

    fn label(&self) -> String {
        format!("PWL({} segments, range {})", self.config.segments, self.config.segment_range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mugi_numerics::error::max_abs_error;
    use mugi_numerics::nonlinear::{gelu_erf, silu};

    #[test]
    fn pwl_is_exact_at_breakpoints() {
        let pwl =
            PiecewiseLinear::new(NonlinearOp::Silu, PwlConfig { segments: 10, segment_range: 5.0 });
        for i in 0..=10 {
            let x = -5.0 + i as f32;
            assert!((pwl.eval(x) - silu(x)).abs() < 1e-5, "breakpoint {x}");
        }
    }

    #[test]
    fn more_segments_reduce_error() {
        let xs: Vec<f32> = (-50..=50).map(|i| i as f32 / 10.0).collect();
        let exact: Vec<f32> = xs.iter().map(|&x| gelu_erf(x)).collect();
        let coarse =
            PiecewiseLinear::new(NonlinearOp::Gelu, PwlConfig { segments: 4, segment_range: 5.0 });
        let fine =
            PiecewiseLinear::new(NonlinearOp::Gelu, PwlConfig { segments: 32, segment_range: 5.0 });
        let coarse_err = max_abs_error(&exact, &coarse.eval_slice(&xs));
        let fine_err = max_abs_error(&exact, &fine.eval_slice(&xs));
        assert!(fine_err < coarse_err);
        assert!(fine_err < 0.02);
    }

    #[test]
    fn out_of_range_behaviour() {
        let sm = PiecewiseLinear::new(
            NonlinearOp::Softmax,
            PwlConfig { segments: 22, segment_range: 20.0 },
        );
        assert_eq!(sm.eval(-100.0), 0.0);
        assert!((sm.eval(0.0) - 1.0).abs() < 1e-5);
        let silu_pwl =
            PiecewiseLinear::new(NonlinearOp::Silu, PwlConfig { segments: 22, segment_range: 8.0 });
        assert_eq!(silu_pwl.eval(50.0), 50.0);
        assert_eq!(silu_pwl.eval(-50.0), 0.0);
        assert!(sm.eval(f32::NAN).is_nan());
    }

    #[test]
    fn default_config_matches_paper_baseline() {
        let cfg = PwlConfig::default();
        assert_eq!(cfg.segments, 22);
        let pwl = PiecewiseLinear::new(NonlinearOp::Softmax, cfg);
        assert_eq!(pwl.num_segments(), 22);
        assert_eq!(pwl.cycles_per_element(), 2);
        assert!(pwl.label().contains("PWL"));
        assert!(pwl.storage_bits() > 0);
    }

    #[test]
    fn softmax_through_trait_is_distribution() {
        let pwl = PiecewiseLinear::new(NonlinearOp::Softmax, PwlConfig::default());
        let probs = pwl.softmax(&[1.0, -2.0, 0.3]);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "segments must be non-zero")]
    fn zero_segments_rejected() {
        PiecewiseLinear::new(NonlinearOp::Silu, PwlConfig { segments: 0, segment_range: 1.0 });
    }
}
