//! Partial approximation (PA) of SiLU / GELU.
//!
//! The MobileNetV3-style "hard" approximation the paper cites as PA in
//! Figure 8: the sigmoid inside SiLU is replaced with the piecewise-linear
//! "hard sigmoid" `clamp((x + 3) / 6, 0, 1)`, which is exact in the saturated
//! tails and a single multiply-add in the middle. GELU is handled with the
//! analogous hard-tanh form.

use crate::Approximator;
use mugi_numerics::nonlinear::NonlinearOp;

/// The partial (hard) approximation of SiLU / GELU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartialApprox {
    op: NonlinearOp,
}

impl PartialApprox {
    /// Creates the approximator.
    ///
    /// # Panics
    /// Panics if the op is not SiLU or GELU — the paper only evaluates PA on
    /// activations.
    pub fn new(op: NonlinearOp) -> Self {
        assert!(
            matches!(op, NonlinearOp::Silu | NonlinearOp::Gelu),
            "partial approximation is only defined for SiLU/GELU"
        );
        PartialApprox { op }
    }

    fn hard_sigmoid(x: f32) -> f32 {
        ((x + 3.0) / 6.0).clamp(0.0, 1.0)
    }
}

impl Approximator for PartialApprox {
    fn op(&self) -> NonlinearOp {
        self.op
    }

    fn eval(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        match self.op {
            NonlinearOp::Silu => x * Self::hard_sigmoid(x),
            NonlinearOp::Gelu => {
                // Hard GELU: x * clamp(0.5 + 0.25 * 1.702 * x, 0, 1) uses the
                // sigmoid-GELU identity GELU(x) ≈ x * sigmoid(1.702 x).
                x * ((0.5 + 0.4255 * x).clamp(0.0, 1.0))
            }
            _ => unreachable!("constructor rejects other ops"),
        }
    }

    fn cycles_per_element(&self) -> u64 {
        // One add, one multiply, one clamp on the vector array.
        2
    }

    fn label(&self) -> String {
        format!("PA({})", self.op.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mugi_numerics::nonlinear::{gelu_erf, silu};

    #[test]
    fn exact_in_saturated_tails() {
        let pa = PartialApprox::new(NonlinearOp::Silu);
        assert_eq!(pa.eval(10.0), 10.0);
        assert_eq!(pa.eval(-10.0), 0.0);
        assert_eq!(pa.eval(0.0), 0.0);
    }

    #[test]
    fn bounded_error_in_transition_region() {
        let pa = PartialApprox::new(NonlinearOp::Silu);
        for i in -30..=30 {
            let x = i as f32 / 10.0;
            let err = (pa.eval(x) - silu(x)).abs();
            assert!(err < 0.3, "x={x} err={err}");
        }
        let pa = PartialApprox::new(NonlinearOp::Gelu);
        for i in -30..=30 {
            let x = i as f32 / 10.0;
            let err = (pa.eval(x) - gelu_erf(x)).abs();
            assert!(err < 0.3, "x={x} err={err}");
        }
    }

    #[test]
    fn metadata() {
        let pa = PartialApprox::new(NonlinearOp::Gelu);
        assert_eq!(pa.cycles_per_element(), 2);
        assert!(pa.label().contains("PA"));
        assert!(pa.eval(f32::NAN).is_nan());
    }

    #[test]
    #[should_panic(expected = "only defined for SiLU/GELU")]
    fn softmax_rejected() {
        PartialApprox::new(NonlinearOp::Softmax);
    }
}
