//! # mugi-approx
//!
//! Baseline hardware approximations of the nonlinear operations, used in the
//! paper's accuracy (Figures 6–8) and architecture (Figures 11, 13, 15, 16)
//! comparisons:
//!
//! * [`pwl`] — piecewise-linear approximation (MobileNetV3 / C-LSTM style):
//!   the curve is split into segments over a configured range and each input
//!   is evaluated on its segment's line.
//! * [`taylor`] — Taylor-series approximation evaluated with Horner's rule,
//!   with a configurable degree and expansion centre.
//! * [`partial`] — partial approximation (PA) of SiLU/GELU: exact behaviour in
//!   the saturating tails plus a cheap approximation in the middle.
//! * [`lut_direct`] — a direct (non-VLP) lookup table, the `Mugi-L` baseline.
//! * [`precise`] — the precise iterative vector-array model (exact values with
//!   a multi-cycle latency per element).
//!
//! All approximators implement the common [`Approximator`] trait so the
//! accuracy sweeps in `mugi` can treat them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lut_direct;
pub mod partial;
pub mod precise;
pub mod pwl;
pub mod taylor;

use mugi_numerics::nonlinear::NonlinearOp;

/// A hardware nonlinear approximator: maps inputs to approximate outputs and
/// reports its per-element latency so the architecture model can account for
/// it.
pub trait Approximator {
    /// The operation being approximated.
    fn op(&self) -> NonlinearOp;

    /// Approximates the op for a single input.
    fn eval(&self, x: f32) -> f32;

    /// Approximates the op element-wise for a slice.
    fn eval_slice(&self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Latency in cycles to produce one output element on the baseline vector
    /// array (used by `mugi-arch`).
    fn cycles_per_element(&self) -> u64;

    /// A short human-readable label for reports.
    fn label(&self) -> String;

    /// Approximate softmax built on this element-wise approximator: exact max
    /// subtraction and normalisation, approximate `exp`.
    ///
    /// Only meaningful when [`Approximator::op`] is `Exp`/`Softmax`.
    fn softmax(&self, logits: &[f32]) -> Vec<f32> {
        if logits.is_empty() {
            return Vec::new();
        }
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&x| self.eval(x - max)).collect();
        let sum: f32 = exps.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            return vec![1.0 / logits.len() as f32; logits.len()];
        }
        exps.iter().map(|&e| e / sum).collect()
    }
}

pub use lut_direct::DirectLut;
pub use partial::PartialApprox;
pub use precise::PreciseVectorArray;
pub use pwl::PiecewiseLinear;
pub use taylor::TaylorSeries;
