//! Taylor-series approximation evaluated with Horner's rule.
//!
//! The baseline from Section 2.2.3: each term's coefficient is pre-computed at
//! an expansion centre and the polynomial is evaluated as a chain of
//! multiply-accumulate operations (Horner form), which vectorises well but
//! loses accuracy as inputs drift from the centre.

use crate::Approximator;
use mugi_numerics::nonlinear::NonlinearOp;
use serde::{Deserialize, Serialize};

/// Configuration of a Taylor-series approximator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaylorConfig {
    /// Polynomial degree (number of expansion terms minus one). The paper's
    /// baseline uses up to 9 degrees.
    pub degree: usize,
    /// Expansion centre.
    pub center: f32,
}

impl Default for TaylorConfig {
    fn default() -> Self {
        TaylorConfig { degree: 9, center: -1.0 }
    }
}

/// A Taylor-series approximator for one nonlinear op.
#[derive(Clone, Debug)]
pub struct TaylorSeries {
    op: NonlinearOp,
    config: TaylorConfig,
    /// Polynomial coefficients in ascending-power order around the centre.
    coefficients: Vec<f64>,
}

impl TaylorSeries {
    /// Builds the approximator by computing derivatives of the exact function
    /// at the centre (via numerically-stable closed forms for exp, and finite
    /// differences of the smooth reference for SiLU/GELU).
    ///
    /// # Panics
    /// Panics if `degree` is zero or larger than 16 (beyond which the finite
    /// differences lose all precision and no hardware baseline goes anyway).
    pub fn new(op: NonlinearOp, config: TaylorConfig) -> Self {
        assert!(
            (1..=16).contains(&config.degree),
            "degree must be in 1..=16, got {}",
            config.degree
        );
        let coefficients = match op {
            NonlinearOp::Exp | NonlinearOp::Softmax => {
                // exp(c + d) = exp(c) * sum d^k / k!
                let base = (config.center as f64).exp();
                let mut factorial = 1.0f64;
                (0..=config.degree)
                    .map(|k| {
                        if k > 0 {
                            factorial *= k as f64;
                        }
                        base / factorial
                    })
                    .collect()
            }
            NonlinearOp::Silu | NonlinearOp::Gelu => {
                // Derivatives via central finite differences on a fine grid.
                Self::finite_difference_coefficients(op, config.center as f64, config.degree)
            }
        };
        TaylorSeries { op, config, coefficients }
    }

    fn finite_difference_coefficients(op: NonlinearOp, center: f64, degree: usize) -> Vec<f64> {
        // Use a Taylor-table fit: sample the function at Chebyshev-like points
        // around the centre and solve a least-squares polynomial via normal
        // equations on a small Vandermonde system. For the small degrees used
        // here this is numerically adequate and keeps the construction simple.
        let samples = (degree + 1) * 8;
        let radius = 2.0f64;
        let xs: Vec<f64> = (0..samples)
            .map(|i| center + radius * ((i as f64 / (samples - 1) as f64) * 2.0 - 1.0))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|&x| op.eval(x as f32) as f64).collect();
        // Build normal equations A^T A c = A^T y with A[i][k] = (x_i - center)^k.
        let n = degree + 1;
        let mut ata = vec![vec![0.0f64; n]; n];
        let mut aty = vec![0.0f64; n];
        for (&x, &y) in xs.iter().zip(&ys) {
            let d = x - center;
            let mut powers = vec![1.0f64; n];
            for k in 1..n {
                powers[k] = powers[k - 1] * d;
            }
            for r in 0..n {
                aty[r] += powers[r] * y;
                for c in 0..n {
                    ata[r][c] += powers[r] * powers[c];
                }
            }
        }
        // Gaussian elimination with partial pivoting.
        let mut m = ata;
        let mut b = aty;
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&a, &bb| m[a][col].abs().partial_cmp(&m[bb][col].abs()).unwrap())
                .unwrap();
            m.swap(col, pivot);
            b.swap(col, pivot);
            let p = m[col][col];
            if p.abs() < 1e-12 {
                continue;
            }
            for row in (col + 1)..n {
                let f = m[row][col] / p;
                for c2 in col..n {
                    m[row][c2] -= f * m[col][c2];
                }
                b[row] -= f * b[col];
            }
        }
        let mut coeffs = vec![0.0f64; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for c2 in (row + 1)..n {
                acc -= m[row][c2] * coeffs[c2];
            }
            coeffs[row] = if m[row][row].abs() < 1e-12 { 0.0 } else { acc / m[row][row] };
        }
        coeffs
    }

    /// The configuration used to build this approximator.
    pub fn config(&self) -> &TaylorConfig {
        &self.config
    }

    /// The stored coefficients (ascending powers of `x - center`).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Storage cost in bits (one BF16 coefficient register per degree).
    pub fn storage_bits(&self) -> usize {
        self.coefficients.len() * 16
    }
}

impl Approximator for TaylorSeries {
    fn op(&self) -> NonlinearOp {
        self.op
    }

    fn eval(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        let d = (x - self.config.center) as f64;
        // Horner's rule.
        let mut acc = 0.0f64;
        for &c in self.coefficients.iter().rev() {
            acc = acc * d + c;
        }
        let result = acc as f32;
        match self.op {
            // exp must stay non-negative; the truncated series can dip below
            // zero far from the centre, which hardware clamps.
            NonlinearOp::Exp | NonlinearOp::Softmax => result.max(0.0),
            NonlinearOp::Silu | NonlinearOp::Gelu => {
                // Outside a generous trust region the polynomial diverges;
                // hardware baselines clamp to the identity / zero tails.
                let trust = 2.0 + self.config.degree as f32;
                if x > self.config.center + trust {
                    x
                } else if x < self.config.center - trust {
                    0.0
                } else {
                    result
                }
            }
        }
    }

    fn cycles_per_element(&self) -> u64 {
        // One MAC per degree via Horner's rule.
        self.config.degree as u64
    }

    fn label(&self) -> String {
        format!("Taylor(degree {}, center {})", self.config.degree, self.config.center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mugi_numerics::nonlinear::silu;

    #[test]
    fn exp_series_is_accurate_near_center() {
        let t = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 9, center: -1.0 });
        for x in [-2.0f32, -1.5, -1.0, -0.5, 0.0] {
            let exact = x.exp();
            assert!(
                (t.eval(x) - exact).abs() / exact < 0.01,
                "x={x} approx={} exact={exact}",
                t.eval(x)
            );
        }
    }

    #[test]
    fn exp_series_degrades_far_from_center() {
        let t = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 5, center: 0.0 });
        let near = (t.eval(-0.5) - (-0.5f32).exp()).abs() / (-0.5f32).exp();
        let far = (t.eval(-8.0) - (-8.0f32).exp()).abs() / (-8.0f32).exp();
        assert!(far > near, "far error {far} should exceed near error {near}");
    }

    #[test]
    fn exp_series_never_negative() {
        let t = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 3, center: 0.0 });
        for i in 0..100 {
            let x = -10.0 + i as f32 * 0.1;
            assert!(t.eval(x) >= 0.0, "negative output at {x}");
        }
    }

    #[test]
    fn silu_series_reasonable_near_center() {
        let t = TaylorSeries::new(NonlinearOp::Silu, TaylorConfig { degree: 7, center: 0.0 });
        for x in [-1.5f32, -0.5, 0.0, 0.5, 1.5] {
            assert!((t.eval(x) - silu(x)).abs() < 0.05, "x={x}");
        }
        // Tails are clamped to identity / zero.
        assert_eq!(t.eval(100.0), 100.0);
        assert_eq!(t.eval(-100.0), 0.0);
    }

    #[test]
    fn higher_degree_improves_accuracy() {
        let xs: Vec<f32> = (-30..=0).map(|i| i as f32 / 10.0).collect();
        let exact: Vec<f32> = xs.iter().map(|&x| x.exp()).collect();
        let low = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 3, center: -1.5 });
        let high = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 9, center: -1.5 });
        let err =
            |t: &TaylorSeries| -> f32 { mugi_numerics::error::rmse(&exact, &t.eval_slice(&xs)) };
        assert!(err(&high) < err(&low));
    }

    #[test]
    fn metadata() {
        let t = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig::default());
        assert_eq!(t.cycles_per_element(), 9);
        assert_eq!(t.coefficients().len(), 10);
        assert!(t.label().contains("Taylor"));
        assert_eq!(t.storage_bits(), 160);
        assert!(t.eval(f32::NAN).is_nan());
    }

    #[test]
    #[should_panic(expected = "degree must be in 1..=16")]
    fn zero_degree_rejected() {
        TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 0, center: 0.0 });
    }
}
