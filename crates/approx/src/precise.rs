//! Precise iterative vector-array model.
//!
//! The paper's "VA-FP" baseline: a vector array of MAC units computing the
//! nonlinear operations exactly with an iterative algorithm that takes
//! 44 cycles per element (Section 5.2.2, citing division/exponential
//! implementations). Functionally this is just the exact function; its value
//! in the reproduction is the latency/energy accounting.

use crate::Approximator;
use mugi_numerics::nonlinear::NonlinearOp;

/// Cycles per element for the precise iterative implementation, from the
/// paper's baseline description.
pub const PRECISE_CYCLES_PER_ELEMENT: u64 = 44;

/// The precise vector-array "approximator" (exact values, long latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreciseVectorArray {
    op: NonlinearOp,
}

impl PreciseVectorArray {
    /// Creates the precise evaluator for `op`.
    pub fn new(op: NonlinearOp) -> Self {
        PreciseVectorArray { op }
    }
}

impl Approximator for PreciseVectorArray {
    fn op(&self) -> NonlinearOp {
        self.op
    }

    fn eval(&self, x: f32) -> f32 {
        self.op.eval(x)
    }

    fn cycles_per_element(&self) -> u64 {
        PRECISE_CYCLES_PER_ELEMENT
    }

    fn label(&self) -> String {
        format!("Precise({})", self.op.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mugi_numerics::nonlinear::{gelu_erf, silu};

    #[test]
    fn outputs_are_exact() {
        for x in [-3.0f32, -0.5, 0.0, 1.0, 4.2] {
            assert_eq!(PreciseVectorArray::new(NonlinearOp::Silu).eval(x), silu(x));
            assert_eq!(PreciseVectorArray::new(NonlinearOp::Gelu).eval(x), gelu_erf(x));
            assert_eq!(PreciseVectorArray::new(NonlinearOp::Exp).eval(x), x.exp());
        }
    }

    #[test]
    fn latency_matches_paper_baseline() {
        let p = PreciseVectorArray::new(NonlinearOp::Softmax);
        assert_eq!(p.cycles_per_element(), 44);
        assert!(p.label().contains("Precise"));
    }

    #[test]
    fn softmax_through_trait_is_exact() {
        let p = PreciseVectorArray::new(NonlinearOp::Softmax);
        let probs = p.softmax(&[0.1, 0.9, -2.0]);
        let exact = mugi_numerics::nonlinear::softmax(&[0.1, 0.9, -2.0]);
        for (a, b) in probs.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
