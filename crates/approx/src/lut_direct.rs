//! Direct (non-VLP) lookup-table approximation — the `Mugi-L` baseline.
//!
//! Unlike the VLP approximation, a direct LUT quantizes the *input value*
//! uniformly over a range and looks up a pre-computed output per bin. Every
//! lane needs its own read port (or the LUT must be replicated / banked),
//! which is why the paper's Mugi-L design spends far more area on LUT storage
//! (Figure 13) even though its accuracy is similar.

use crate::Approximator;
use mugi_numerics::nonlinear::NonlinearOp;
use serde::{Deserialize, Serialize};

/// Configuration of a direct LUT approximator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DirectLutConfig {
    /// Number of LUT entries.
    pub entries: usize,
    /// Lower bound of the covered input range.
    pub min_input: f32,
    /// Upper bound of the covered input range.
    pub max_input: f32,
    /// How many lanes share one LUT copy (8 in the paper, to match Mugi's
    /// throughput).
    pub lanes_per_lut: usize,
}

impl Default for DirectLutConfig {
    fn default() -> Self {
        DirectLutConfig { entries: 1024, min_input: -16.0, max_input: 16.0, lanes_per_lut: 8 }
    }
}

/// A direct lookup-table approximator.
#[derive(Clone, Debug)]
pub struct DirectLut {
    op: NonlinearOp,
    config: DirectLutConfig,
    table: Vec<f32>,
}

impl DirectLut {
    /// Builds the LUT by sampling the exact function at bin centres.
    ///
    /// # Panics
    /// Panics if `entries` is zero or the range is empty / non-finite.
    pub fn new(op: NonlinearOp, config: DirectLutConfig) -> Self {
        assert!(config.entries > 0, "entries must be non-zero");
        assert!(
            config.max_input > config.min_input
                && config.min_input.is_finite()
                && config.max_input.is_finite(),
            "invalid input range"
        );
        assert!(config.lanes_per_lut > 0, "lanes_per_lut must be non-zero");
        let table = (0..config.entries)
            .map(|i| {
                let t = (i as f32 + 0.5) / config.entries as f32;
                let x = config.min_input + t * (config.max_input - config.min_input);
                op.eval(x)
            })
            .collect();
        DirectLut { op, config, table }
    }

    /// The configuration used to build this LUT.
    pub fn config(&self) -> &DirectLutConfig {
        &self.config
    }

    /// Storage cost in bits assuming BF16 entries.
    pub fn storage_bits(&self) -> usize {
        self.table.len() * 16
    }
}

impl Approximator for DirectLut {
    fn op(&self) -> NonlinearOp {
        self.op
    }

    fn eval(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        if x < self.config.min_input {
            return match self.op {
                NonlinearOp::Exp | NonlinearOp::Softmax => 0.0,
                NonlinearOp::Silu | NonlinearOp::Gelu => 0.0,
            };
        }
        if x > self.config.max_input {
            return match self.op {
                NonlinearOp::Exp | NonlinearOp::Softmax => self.op.eval(self.config.max_input),
                NonlinearOp::Silu | NonlinearOp::Gelu => x,
            };
        }
        let t = (x - self.config.min_input) / (self.config.max_input - self.config.min_input);
        let idx = ((t * self.config.entries as f32) as usize).min(self.config.entries - 1);
        self.table[idx]
    }

    fn cycles_per_element(&self) -> u64 {
        // One index computation plus one (possibly contended) LUT read.
        1
    }

    fn label(&self) -> String {
        format!(
            "DirectLUT({} entries, [{}, {}])",
            self.config.entries, self.config.min_input, self.config.max_input
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mugi_numerics::error::max_abs_error;
    use mugi_numerics::nonlinear::silu;

    #[test]
    fn lut_error_shrinks_with_entries() {
        let xs: Vec<f32> = (-80..=80).map(|i| i as f32 / 10.0).collect();
        let exact: Vec<f32> = xs.iter().map(|&x| silu(x)).collect();
        let small = DirectLut::new(
            NonlinearOp::Silu,
            DirectLutConfig { entries: 64, ..Default::default() },
        );
        let large = DirectLut::new(
            NonlinearOp::Silu,
            DirectLutConfig { entries: 4096, ..Default::default() },
        );
        let small_err = max_abs_error(&exact, &small.eval_slice(&xs));
        let large_err = max_abs_error(&exact, &large.eval_slice(&xs));
        assert!(large_err < small_err);
        assert!(large_err < 0.01);
    }

    #[test]
    fn out_of_range_behaviour() {
        let lut = DirectLut::new(
            NonlinearOp::Softmax,
            DirectLutConfig { entries: 256, min_input: -20.0, max_input: 0.0, lanes_per_lut: 8 },
        );
        assert_eq!(lut.eval(-100.0), 0.0);
        assert!((lut.eval(5.0) - 1.0).abs() < 0.05);
        let lut = DirectLut::new(NonlinearOp::Gelu, DirectLutConfig::default());
        assert_eq!(lut.eval(100.0), 100.0);
        assert!(lut.eval(f32::NAN).is_nan());
    }

    #[test]
    fn storage_grows_with_entries() {
        let small = DirectLut::new(
            NonlinearOp::Silu,
            DirectLutConfig { entries: 64, ..Default::default() },
        );
        let large = DirectLut::new(
            NonlinearOp::Silu,
            DirectLutConfig { entries: 1024, ..Default::default() },
        );
        assert_eq!(small.storage_bits(), 64 * 16);
        assert!(large.storage_bits() > small.storage_bits());
        assert_eq!(large.cycles_per_element(), 1);
        assert!(large.label().contains("DirectLUT"));
    }

    #[test]
    #[should_panic(expected = "invalid input range")]
    fn empty_range_rejected() {
        DirectLut::new(
            NonlinearOp::Silu,
            DirectLutConfig { entries: 8, min_input: 1.0, max_input: 1.0, lanes_per_lut: 8 },
        );
    }
}
