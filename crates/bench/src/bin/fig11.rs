//! Regenerates Figure 11: iso-area nonlinear comparison.
use mugi::experiments::architecture::{fig11_nonlinear_comparison, fig11_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 11 (iso-area nonlinear comparison)", preset);
    println!("{}", fig11_table(&fig11_nonlinear_comparison(preset)));
}
