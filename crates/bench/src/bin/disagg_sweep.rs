//! Prefill/decode disaggregation sweep: decode-tail latency and KV-transfer
//! cost across mesh splits, against the colocated baselines, plus
//! recompute-style versus swap-style preemption under KV pressure — the
//! numbers behind the "Prefill/decode disaggregation" section of
//! EXPERIMENTS.md.
//!
//! Two tables:
//!
//! 1. **Placement sweep** — a mixed long-prefill stream (768–2048-token
//!    prompts arriving throughout the run) over one 4×4 mesh: colocated
//!    data-parallel versus several prefill/decode splits. Colocated batches
//!    mix 512-token prefill chunks into nearly every decode step, so decode
//!    TPOT carries prefill latency; the disaggregated splits keep decode
//!    steps pure and pay an itemized KV-migration cost instead. The
//!    acceptance assertion at the bottom requires the split to beat the
//!    colocated decode TPOT p95.
//! 2. **Preemption sweep** — the same stream through tight per-node KV
//!    pools: recompute preemption (drop + re-prefill) versus swap
//!    preemption (page out over the NoC, page back in later), with the
//!    re-prefill tokens and transfer bytes each mode pays.
//!
//! Run with: `cargo run --release -p mugi-bench --bin disagg_sweep`
//! (pass `--quick` for a reduced sweep).

use mugi::arch::noc::NocConfig;
use mugi::report::TextTable;
use mugi::MugiAccelerator;
use mugi_runtime::{
    pages_for, synthetic_requests, Executor, ExecutorConfig, KvConfig, Placement, Request,
    RuntimeReport, Scheduler, SchedulerConfig, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

const MODEL: ModelId = ModelId::Llama2_7b;

fn run(requests: &[Request], placement: Placement, kv: KvConfig) -> RuntimeReport {
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(128),
        Scheduler::with_kv(SchedulerConfig::default(), kv),
        ExecutorConfig { kv_bucket: kv.page_tokens, ..ExecutorConfig::default() },
        placement,
    );
    for r in requests {
        engine.submit(*r);
    }
    engine.run()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let count = if quick { 24 } else { 48 };
    let requests =
        synthetic_requests(13, count, &[MODEL], WorkloadSpec::mixed_long_prefill(40_000_000));
    let noc = NocConfig::mesh_4x4();

    // Table 1: colocated vs disaggregated splits, unbounded KV.
    let mut table = TextTable::new(
        &format!(
            "Disaggregation sweep: {count} mixed long-prefill requests (768-2048-token \
             prompts), Llama 2 7B, Mugi(128) nodes on a 4x4 mesh"
        ),
        &[
            "placement",
            "TTFT p50 (s)",
            "TTFT p95 (s)",
            "TPOT p50 (s)",
            "TPOT p95 (s)",
            "tokens/s",
            "migrations",
            "KV moved (MiB)",
            "transfer (µJ)",
            "xfer stalls (kcyc)",
        ],
    );
    let splits: &[usize] = if quick { &[8] } else { &[4, 8, 12] };
    let colocated = run(&requests, Placement::data_parallel(noc), KvConfig::unbounded());
    let mut best_disagg_tpot_p95 = f64::INFINITY;
    let mut row = |label: String, report: &RuntimeReport| {
        table.add_row(vec![
            label,
            format!("{:.1}", report.ttft.p50),
            format!("{:.1}", report.ttft.p95),
            format!("{:.3}", report.tpot.p50),
            format!("{:.3}", report.tpot.p95),
            format!("{:.3}", report.throughput_tokens_per_s),
            report.kv.migrations.to_string(),
            format!("{:.0}", report.kv.transfer_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", report.kv.transfer_energy_uj),
            format!("{:.1}", report.kv.transfer_stall_cycles as f64 / 1000.0),
        ]);
    };
    row("4x4 data-parallel (colocated)".to_string(), &colocated);
    for &prefill_nodes in splits {
        let placement = Placement::disaggregated(noc, prefill_nodes);
        let report = run(&requests, placement, KvConfig::unbounded());
        assert_eq!(
            report.total_output_tokens, colocated.total_output_tokens,
            "disaggregation must conserve tokens"
        );
        assert!(report.kv.migrations > 0, "completed prefills must migrate, not recompute");
        best_disagg_tpot_p95 = best_disagg_tpot_p95.min(report.tpot.p95);
        row(placement.label(), &report);
    }
    println!("{}", table.render());
    println!(
        "decode TPOT p95: colocated {:.3} s vs best disaggregated {:.3} s ({:.2}x)",
        colocated.tpot.p95,
        best_disagg_tpot_p95,
        colocated.tpot.p95 / best_disagg_tpot_p95,
    );
    assert!(
        best_disagg_tpot_p95 < colocated.tpot.p95,
        "disaggregated placement must improve decode TPOT p95 over colocated: {best_disagg_tpot_p95} vs {}",
        colocated.tpot.p95
    );

    // Table 2: recompute vs swap preemption under decode-side KV pressure.
    // Long generations on fine-grained pages make the decode pool the
    // contended resource: sessions arrive small after their handoff and
    // keep growing, so decode growth — not prefill admission — is what
    // preempts, which is exactly where swap and recompute diverge.
    let page_tokens = 32;
    let pressure_count = if quick { 16 } else { 32 };
    let pressure = synthetic_requests(11, pressure_count, &[MODEL], WorkloadSpec::kv_pressure());
    let max_need = pressure
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    let placement = Placement::disaggregated(NocConfig { rows: 2, cols: 2 }, 2);
    let mut table = TextTable::new(
        &format!(
            "Preemption under pressure: {pressure_count} decode-heavy requests (48-96 output \
             tokens), {}-page pools ({page_tokens}-token pages), {}",
            max_need + 2,
            placement.label()
        ),
        &[
            "preemption",
            "preempt",
            "re-prefill tok",
            "swap-outs",
            "KV moved (MiB)",
            "TPOT p95 (s)",
            "tokens/s",
            "makespan (s)",
        ],
    );
    let bounded = KvConfig::bounded(page_tokens, max_need + 2);
    let recompute = run(&pressure, placement, bounded);
    let swap = run(&pressure, placement, bounded.with_swap_preemption());
    for (label, report) in [("recompute", &recompute), ("swap", &swap)] {
        table.add_row(vec![
            label.to_string(),
            report.kv.preemptions.to_string(),
            report.kv.reprefill_tokens.to_string(),
            report.kv.swap_outs.to_string(),
            format!("{:.0}", report.kv.transfer_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", report.tpot.p95),
            format!("{:.3}", report.throughput_tokens_per_s),
            format!("{:.1}", report.makespan_s),
        ]);
    }
    println!("{}", table.render());
    assert_eq!(recompute.total_output_tokens, swap.total_output_tokens);
    assert!(swap.kv.swap_outs > 0, "decode-pool pressure must trigger swap-outs");
    assert!(
        swap.kv.reprefill_tokens < recompute.kv.reprefill_tokens,
        "swapping must owe less recompute than recomputing: {} vs {}",
        swap.kv.reprefill_tokens,
        recompute.kv.reprefill_tokens
    );
    println!(
        "swap preemption trades {} re-prefill tokens for {:.0} MiB of NoC traffic",
        recompute.kv.reprefill_tokens - swap.kv.reprefill_tokens,
        (swap.kv.transfer_bytes.saturating_sub(recompute.kv.transfer_bytes)) as f64
            / (1024.0 * 1024.0),
    );
}
