//! Runs every regeneration driver in sequence (the whole evaluation section).
use mugi::experiments::accuracy::*;
use mugi::experiments::architecture::*;
use mugi::experiments::sustainability::*;
use mugi_bench::{preset_from_args, print_header};
use mugi_workloads::models::ModelId;

fn main() {
    let preset = preset_from_args();
    print_header("full evaluation", preset);
    println!("{}", fig04_table(&fig04_profiling(preset)));
    println!("{}", fig06_table(&fig06_accuracy_sweep(preset, ModelId::Llama2_7b)));
    println!("{}", fig07_table(&fig07_per_layer_tuning(preset, ModelId::Llama2_7b)));
    println!("{}", fig08_table(&fig08_relative_error(preset)));
    println!("{}", fig11_table(&fig11_nonlinear_comparison(preset)));
    println!("{}", fig12_table(&fig12_gemm_comparison(preset)));
    println!("{}", table3_table(&table3_end_to_end(preset)));
    println!("{}", fig13_table(&fig13_breakdown(preset)));
    println!("{}", fig14_table(&fig14_batch_sweep(preset)));
    println!("{}", fig15_table(&fig15_carbon(preset)));
    println!("{}", fig16_table(&fig16_latency_breakdown(preset)));
    println!("{}", fig17_table(&fig17_noc_scaling(preset)));
}
