//! Regenerates Figure 6: accuracy sweep per approximation method.
use mugi::experiments::accuracy::{best_perplexity, fig06_accuracy_sweep, fig06_table, Method};
use mugi::experiments::Preset;
use mugi_bench::{preset_from_args, print_header};
use mugi_workloads::models::ModelId;

fn main() {
    let preset = preset_from_args();
    print_header("Figure 6 (accuracy sweep)", preset);
    let models = match preset {
        Preset::Quick => vec![ModelId::Llama2_7b],
        Preset::Full => {
            vec![ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::WhisperTiny, ModelId::Swinv2Tiny]
        }
    };
    for model in models {
        let rows = fig06_accuracy_sweep(preset, model);
        println!("{}", fig06_table(&rows));
        for method in [Method::Exact, Method::Vlp, Method::Pwl, Method::Taylor] {
            if let Some(best) = best_perplexity(&rows, method) {
                println!("  best {:<7} {:.4}", method.label(), best);
            }
        }
        println!();
    }
}
