//! Regenerates Figure 16: end-to-end latency breakdown.
use mugi::experiments::architecture::{fig16_latency_breakdown, fig16_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 16 (latency breakdown)", preset);
    println!("{}", fig16_table(&fig16_latency_breakdown(preset)));
}
