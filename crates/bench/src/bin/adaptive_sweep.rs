//! Adaptive control-plane sweep: dynamic role reassignment against every
//! static prefill:decode split on a workload whose mix shifts mid-run, plus
//! online SLO calibration against a stale static admission rate — the
//! numbers behind the "Adaptive control plane" section of EXPERIMENTS.md.
//!
//! Two tables:
//!
//! 1. **Shifting-mix placement sweep** — a two-phase trace over a 4×4 mesh:
//!    a prefill-heavy opening (long 768–2048-token prompts, short outputs)
//!    followed by a decode-heavy tail (short prompts, 96–192-token
//!    generations). Any static split is wrong for one of the phases: many
//!    prefill nodes starve the decode tail, few prefill nodes strangle the
//!    opening. The adaptive run starts from the same middling split and
//!    re-rolls node roles as the backlog shifts — the acceptance assertion
//!    requires it to finish at least as fast as every static split.
//! 2. **SLO calibration** — streamed long-prefill arrivals admitted under a
//!    projected-TTFT SLO whose configured service-rate guess is wildly
//!    optimistic. The static guess admits the whole stream into a queue it
//!    cannot serve within the target; the calibrated run measures the true
//!    rate from completed prefill batches (conservatively — the estimate
//!    never dips below the cumulative measured mean) and sheds the arrivals
//!    that cannot make the target, pulling admitted-request TTFT back down.
//!
//! Run with: `cargo run --release -p mugi-bench --bin adaptive_sweep`
//! (pass `--quick` for a reduced sweep).

use mugi::arch::noc::NocConfig;
use mugi::report::TextTable;
use mugi::MugiAccelerator;
use mugi_runtime::{
    phased_requests, ControlConfig, EventEngine, Executor, ExecutorConfig, KvConfig, Placement,
    Request, RuntimeReport, Scheduler, SchedulerConfig, SloConfig, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

const MODEL: ModelId = ModelId::Llama2_7b;

fn run(requests: &[Request], placement: Placement, control: ControlConfig) -> (RuntimeReport, u64) {
    // A tight decode batch cap makes decode-node count a real resource:
    // a pool holding more than `max_batch` decoding sessions pays an extra
    // micro-batch round per generated token. Prefill is token_budget-bound
    // (2048/512 = 4 chunks per batch) so the cap leaves it untouched.
    let config = SchedulerConfig { max_batch: 4, ..SchedulerConfig::default() };
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(128),
        Scheduler::new(config),
        ExecutorConfig { control, ..ExecutorConfig::default() },
        placement,
    );
    for r in requests {
        engine.submit(*r);
    }
    let report = engine.run();
    let rerolls = engine.role_reroll_count();
    (report, rerolls)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (prefill_count, decode_count) = if quick { (12, 48) } else { (24, 96) };
    // Phase 1 bursts long prefills with one-token tails: pure prefill
    // demand, served fastest by a prefill-heavy split. Phase 2 is a wide
    // decode tail — short prompts, long generations, and enough concurrent
    // sessions that a decode-light split exceeds `max_batch` per pool and
    // pays extra micro-batch rounds per token. A static split can only be
    // right for one of them.
    let prefill_heavy = WorkloadSpec {
        prompt_tokens: (768, 2048),
        output_tokens: (1, 4),
        arrival_spread_cycles: 10_000_000,
        ..WorkloadSpec::default()
    };
    let decode_heavy = WorkloadSpec {
        prompt_tokens: (32, 96),
        output_tokens: (256, 512),
        arrival_spread_cycles: 10_000_000,
        ..WorkloadSpec::default()
    };
    let requests = phased_requests(
        17,
        &[MODEL],
        &[(prefill_heavy, 0, prefill_count), (decode_heavy, 60_000_000, decode_count)],
    );
    let noc = NocConfig::mesh_4x4();

    let mut table = TextTable::new(
        &format!(
            "Adaptive role reassignment: {} requests, prefill-heavy opening then decode-heavy \
             tail, Llama 2 7B, Mugi(128) nodes on a 4x4 mesh",
            requests.len()
        ),
        &[
            "placement",
            "role re-rolls",
            "TTFT p95 (s)",
            "TPOT p95 (s)",
            "tokens/s",
            "makespan (s)",
            "migrations",
        ],
    );
    let splits: &[usize] = if quick { &[8] } else { &[4, 8, 12] };
    let mut best_static_throughput = 0.0f64;
    let mut row = |label: String, rerolls: u64, report: &RuntimeReport| {
        table.add_row(vec![
            label,
            rerolls.to_string(),
            format!("{:.2}", report.ttft.p95),
            format!("{:.4}", report.tpot.p95),
            format!("{:.3}", report.throughput_tokens_per_s),
            format!("{:.2}", report.makespan_s),
            report.kv.migrations.to_string(),
        ]);
    };
    let expected_tokens: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
    for &prefill_nodes in splits {
        let placement = Placement::disaggregated(noc, prefill_nodes);
        let (report, rerolls) = run(&requests, placement, ControlConfig::default());
        assert_eq!(rerolls, 0, "a disabled controller must not re-roll");
        assert_eq!(report.total_output_tokens, expected_tokens);
        best_static_throughput = best_static_throughput.max(report.throughput_tokens_per_s);
        row(format!("static {}", placement.policy.label()), rerolls, &report);
    }
    // The adaptive run starts from the middling 8p8d split; the controller
    // re-rolls one node per quiescent drain toward the live demand.
    let control = ControlConfig {
        reassign_roles: true,
        load_aware_migration: true,
        min_flip_interval_cycles: 1_000_000,
        min_demand_tokens: 64,
        ..ControlConfig::default()
    };
    let (adaptive, rerolls) = run(&requests, Placement::disaggregated(noc, 8), control);
    assert_eq!(adaptive.total_output_tokens, expected_tokens);
    row("adaptive (from disagg-8p8d)".to_string(), rerolls, &adaptive);
    println!("{}", table.render());
    println!(
        "throughput: adaptive {:.3} tokens/s vs best static {:.3} tokens/s ({:.2}x), {} re-rolls",
        adaptive.throughput_tokens_per_s,
        best_static_throughput,
        adaptive.throughput_tokens_per_s / best_static_throughput,
        rerolls,
    );
    assert!(rerolls > 0, "a shifting mix must trigger role re-rolls");
    assert_eq!(adaptive.kv.role_rerolls, rerolls, "the report must carry the controller counters");
    assert!(
        adaptive.throughput_tokens_per_s >= best_static_throughput,
        "adaptive reassignment must match or beat every static split: {} vs {}",
        adaptive.throughput_tokens_per_s,
        best_static_throughput,
    );

    // Table 2: online SLO calibration. Long prefills stream in over ~300 s
    // against a projected-TTFT admission gate whose configured service-rate
    // guess is wildly stale (500 cycles/token; the true per-batch rate at
    // this shape is tens of millions). The static guess projects every
    // arrival as nearly free and admits the whole stream into a queue it
    // cannot serve within the target; the calibrated run measures the real
    // rate from the first completed prefill batches and starts rejecting
    // arrivals whose projected TTFT exceeds the target. Requests are
    // admitted at their arrival *event* (the event engine's streamed path),
    // so later arrivals see a warmed-up calibrator.
    const GUESS: u64 = 500;
    const TARGET_TTFT_CYCLES: u64 = 600_000_000_000;
    let mut slo_requests = phased_requests(
        23,
        &[MODEL],
        &[(
            WorkloadSpec {
                output_tokens: (4, 8),
                arrival_spread_cycles: 300_000_000_000,
                ..prefill_heavy
            },
            0,
            2 * prefill_count,
        )],
    );
    slo_requests.sort_by_key(|r| r.arrival_cycle);
    let mut table = TextTable::new(
        &format!(
            "Online SLO calibration: {} streamed long-prefill requests under a projected-TTFT \
             SLO (target {} s), configured service-rate guess {GUESS} cycles/token",
            slo_requests.len(),
            TARGET_TTFT_CYCLES / 1_000_000_000,
        ),
        &["admission", "admitted", "rejected", "TTFT p95 (s)", "samples", "rate (cyc/tok)"],
    );
    let mut calibrated_rate = None;
    let mut ttft = [0.0f64; 2];
    let mut rejected = [0u64; 2];
    for calibrate in [false, true] {
        let mut engine = EventEngine::with_placement(
            MugiAccelerator::new(128),
            Scheduler::with_kv(
                SchedulerConfig::default(),
                KvConfig {
                    slo: Some(SloConfig {
                        target_ttft_cycles: TARGET_TTFT_CYCLES,
                        cycles_per_prefill_token: GUESS,
                    }),
                    ..KvConfig::default()
                },
            ),
            ExecutorConfig {
                control: ControlConfig { calibrate_slo: calibrate, ..ControlConfig::default() },
                ..ExecutorConfig::default()
            },
            Placement::disaggregated(noc, 8),
        );
        let report = engine.run_stream(slo_requests.iter().copied());
        let label = if calibrate { "calibrated" } else { "static guess" };
        let rate = report
            .kv
            .calibrated_cycles_per_prefill_token
            .map_or(format!("{GUESS} (configured)"), |r| r.to_string());
        table.add_row(vec![
            label.to_string(),
            report.requests.len().to_string(),
            report.kv.rejected_requests.to_string(),
            format!("{:.1}", report.ttft.p95),
            report.kv.calibration_samples.to_string(),
            rate,
        ]);
        ttft[usize::from(calibrate)] = report.ttft.p95;
        rejected[usize::from(calibrate)] = report.kv.rejected_requests;
        if calibrate {
            calibrated_rate = report.kv.calibrated_cycles_per_prefill_token;
            assert!(report.kv.calibration_samples > 0, "calibration must observe slices");
        } else {
            assert_eq!(report.kv.calibration_samples, 0);
        }
    }
    println!("{}", table.render());
    let rate = calibrated_rate.expect("the calibrated run must publish a rate");
    println!(
        "calibrated admission rate: {rate} cycles/token (configured guess: {GUESS}); \
         admitted-request TTFT p95 {:.1} s vs {:.1} s under the static guess",
        ttft[1], ttft[0],
    );
    assert!(
        rate > GUESS,
        "calibration must correct an optimistic guess upward, got {rate} cycles/token"
    );
    assert_eq!(rejected[0], 0, "the stale guess must admit the whole stream");
    assert!(rejected[1] > 0, "the calibrated gate must shed load the guess admits");
    assert!(
        ttft[1] < ttft[0],
        "shedding load must improve admitted-request TTFT: {} vs {}",
        ttft[1],
        ttft[0],
    );
}
