//! Regenerates Figure 15: operational and embodied carbon.
use mugi::experiments::sustainability::{fig15_carbon, fig15_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 15 (carbon)", preset);
    println!("{}", fig15_table(&fig15_carbon(preset)));
}
