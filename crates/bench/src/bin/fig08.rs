//! Regenerates Figure 8: relative error of each approximation vs software.
use mugi::experiments::accuracy::{fig08_relative_error, fig08_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 8 (relative error)", preset);
    println!("{}", fig08_table(&fig08_relative_error(preset)));
}
