//! Paged-KV pressure sweep: serving throughput, tail latency, preemption
//! and rejection rates across KV pool sizes and workload pressures — the
//! numbers behind the "KV pressure sweep" section of EXPERIMENTS.md.
//!
//! Every admitted request must still complete (preemption is recompute, not
//! abandonment), so the interesting outputs are the *rates*: how often the
//! pool evicts, how much re-prefill debt that creates, and how many
//! submissions the queue-depth admission bound rejects. The admission bound
//! scales with the pool (half a page-pair per live session), so the
//! rejection rate must fall monotonically as the pool grows — asserted at
//! the bottom, per the acceptance criterion.
//!
//! Run with: `cargo run --release -p mugi-bench --bin kv_sweep`
//! (pass `--quick` for a reduced sweep).

use mugi::report::TextTable;
use mugi::MugiAccelerator;
use mugi_runtime::{
    pages_for, synthetic_requests, Executor, ExecutorConfig, KvConfig, Placement, Request,
    Scheduler, SchedulerConfig, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

const PAGE_TOKENS: usize = 128;
const MODEL: ModelId = ModelId::Llama2_7b;

struct Outcome {
    admitted: usize,
    rejected: usize,
    report: mugi_runtime::RuntimeReport,
}

fn run(requests: &[Request], pool_pages: Option<usize>) -> Outcome {
    let kv = match pool_pages {
        None => KvConfig::unbounded(),
        Some(pages) => {
            // Queue-depth admission scaled to the pool: one live session per
            // page. Requests of this workload peak at 2–3 pages, so the
            // admitted population oversubscribes the pool ~2× and the
            // eviction path gets real exercise, while submissions beyond the
            // bound push back on the generator.
            KvConfig::bounded(PAGE_TOKENS, pages).with_max_live_sessions(pages)
        }
    };
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(128),
        Scheduler::with_kv(SchedulerConfig::default(), kv),
        ExecutorConfig { kv_bucket: PAGE_TOKENS, ..ExecutorConfig::default() },
        Placement::single_node(),
    );
    let mut admitted = 0;
    let mut rejected = 0;
    for r in requests {
        match engine.try_submit(*r) {
            Ok(_) => admitted += 1,
            Err(_) => rejected += 1,
        }
    }
    Outcome { admitted, rejected, report: engine.run() }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pressures: &[usize] = if quick { &[24] } else { &[24, 48] };
    let pools: &[Option<usize>] = if quick {
        &[Some(4), Some(16), None]
    } else {
        &[Some(4), Some(8), Some(16), Some(32), Some(64), None]
    };
    let page_gib =
        MODEL.config().kv_cache_bytes(PAGE_TOKENS, 16) as f64 / (1024.0 * 1024.0 * 1024.0);

    let mut table = TextTable::new(
        &format!(
            "KV pressure sweep: Llama 2 7B, {PAGE_TOKENS}-token pages ({page_gib:.3} GiB each), \
             one Mugi(128) node"
        ),
        &[
            "requests",
            "pool pages",
            "pool GiB",
            "admitted",
            "rejected",
            "reject %",
            "tokens/s",
            "TTFT p99 (s)",
            "preempt",
            "preempt/req",
            "re-prefill tok",
            "peak occ",
        ],
    );
    for &pressure in pressures {
        let requests = synthetic_requests(11, pressure, &[MODEL], WorkloadSpec::kv_pressure());
        let max_need = requests
            .iter()
            .map(|r| pages_for(r.prompt_tokens + r.output_tokens, PAGE_TOKENS))
            .max()
            .unwrap();
        let mut last_reject_rate = f64::INFINITY;
        for &pool in pools {
            if let Some(pages) = pool {
                assert!(pages >= max_need, "pool must fit the largest single request");
            }
            let out = run(&requests, pool);
            let kv = &out.report.kv;
            assert_eq!(
                out.report.requests.len(),
                out.admitted,
                "every admitted request must complete"
            );
            let reject_rate = out.rejected as f64 / requests.len() as f64;
            assert!(
                reject_rate <= last_reject_rate,
                "rejection rate must fall monotonically as the pool grows: \
                 {reject_rate} after {last_reject_rate}"
            );
            last_reject_rate = reject_rate;
            if pool.is_none() {
                assert_eq!(kv.preemptions, 0, "unbounded pools never preempt");
                assert_eq!(out.rejected, 0, "unbounded pools never reject");
            }
            table.add_row(vec![
                pressure.to_string(),
                pool.map_or("unbounded".to_string(), |p| p.to_string()),
                pool.map_or("-".to_string(), |p| format!("{:.2}", p as f64 * page_gib)),
                out.admitted.to_string(),
                out.rejected.to_string(),
                format!("{:.0}%", reject_rate * 100.0),
                format!("{:.3}", out.report.throughput_tokens_per_s),
                format!("{:.1}", out.report.ttft.p99),
                kv.preemptions.to_string(),
                format!("{:.2}", kv.preemptions as f64 / out.admitted.max(1) as f64),
                kv.reprefill_tokens.to_string(),
                kv.peak_occupancy().map_or("-".to_string(), |o| format!("{o:.2}")),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "admission bound = one live session per pool page; preemption = recompute-style \
         eviction (evicted sessions re-prefill and still finish)"
    );
}
