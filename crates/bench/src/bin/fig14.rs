//! Regenerates Figure 14: batch-size sweep.
use mugi::experiments::architecture::{fig14_batch_sweep, fig14_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 14 (batch-size sweep)", preset);
    println!("{}", fig14_table(&fig14_batch_sweep(preset)));
}
