//! Regenerates Figure 13: array-level area breakdown.
use mugi::experiments::architecture::{fig13_breakdown, fig13_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 13 (area breakdown)", preset);
    println!("{}", fig13_table(&fig13_breakdown(preset)));
}
