//! Runs the ablation and extension studies (DESIGN.md section 5 and the
//! paper's Section 7.1 discussion items): sliding-window placement, mantissa
//! width, buffer organisation, HBM bandwidth sensitivity and MoE workloads.

use mugi::experiments::ablations::{
    ablation_bandwidth, ablation_bandwidth_table, ablation_buffers, ablation_buffers_table,
    ablation_mantissa, ablation_mantissa_table, ablation_moe, ablation_moe_table, ablation_window,
    ablation_window_table,
};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("ablations and extensions", preset);
    println!("{}", ablation_window_table(&ablation_window(preset)));
    println!("{}", ablation_mantissa_table(&ablation_mantissa(preset)));
    println!("{}", ablation_buffers_table(&ablation_buffers(preset)));
    println!("{}", ablation_bandwidth_table(&ablation_bandwidth(preset)));
    println!("{}", ablation_moe_table(&ablation_moe(preset)));
}
