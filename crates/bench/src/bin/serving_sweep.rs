//! Serving-runtime sweep: continuous-batching throughput and latency across
//! scheduling policies, batch caps and token budgets on a fixed 64-request
//! two-model workload. The numbers behind the serving section of
//! EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p mugi-bench --bin serving_sweep`
//! (pass `--quick` for a reduced sweep).

use mugi::report::TextTable;
use mugi::MugiAccelerator;
use mugi_runtime::{
    synthetic_requests, Executor, Scheduler, SchedulerConfig, SchedulingPolicy, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let models = [ModelId::Llama2_7b, ModelId::Llama2_70b];
    let requests = synthetic_requests(7, 64, &models, WorkloadSpec::default());
    let batches: &[usize] = if quick { &[8] } else { &[4, 8, 16, 32] };
    let budgets: &[usize] = if quick { &[1024] } else { &[512, 1024, 2048] };

    let mut table = TextTable::new(
        "Serving sweep: 64 requests, Llama 2 7B + 70B, one Mugi(256) node",
        &[
            "policy",
            "max_batch",
            "budget",
            "tokens/s",
            "TTFT p50 (s)",
            "TTFT p99 (s)",
            "TPOT p50 (s)",
            "steps",
            "cached traces",
        ],
    );
    for policy in [SchedulingPolicy::Fcfs, SchedulingPolicy::ShortestPrefillFirst] {
        for &max_batch in batches {
            for &token_budget in budgets {
                let mut engine = Executor::new(
                    MugiAccelerator::new(256),
                    Scheduler::new(SchedulerConfig {
                        max_batch,
                        token_budget,
                        prefill_chunk: 512,
                        policy,
                        ..SchedulerConfig::default()
                    }),
                );
                for r in &requests {
                    engine.submit(*r);
                }
                let report = engine.run();
                table.add_row(vec![
                    format!("{policy:?}"),
                    max_batch.to_string(),
                    token_budget.to_string(),
                    format!("{:.3}", report.throughput_tokens_per_s),
                    format!("{:.1}", report.ttft.p50),
                    format!("{:.1}", report.ttft.p99),
                    format!("{:.2}", report.tpot.p50),
                    report.micro_batches.to_string(),
                    report.trace_cache_entries.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());
}
