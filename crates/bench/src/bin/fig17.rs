//! Regenerates Figure 17: NoC-level comparison.
use mugi::experiments::sustainability::{fig17_noc_scaling, fig17_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 17 (NoC scaling)", preset);
    println!("{}", fig17_table(&fig17_noc_scaling(preset)));
}
