//! Regenerates Figure 12: iso-area GEMM comparison.
use mugi::experiments::architecture::{fig12_gemm_comparison, fig12_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 12 (iso-area GEMM comparison)", preset);
    println!("{}", fig12_table(&fig12_gemm_comparison(preset)));
}
