//! Regenerates Figure 4: nonlinear input value / exponent distributions.
use mugi::experiments::accuracy::{fig04_profiling, fig04_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Figure 4 (input distributions)", preset);
    println!("{}", fig04_table(&fig04_profiling(preset)));
}
