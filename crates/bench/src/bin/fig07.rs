//! Regenerates Figure 7: per-layer LUT window tuning.
use mugi::experiments::accuracy::{fig07_per_layer_tuning, fig07_table};
use mugi_bench::{preset_from_args, print_header};
use mugi_workloads::models::ModelId;

fn main() {
    let preset = preset_from_args();
    print_header("Figure 7 (per-layer tuning)", preset);
    for model in [ModelId::Llama2_7b, ModelId::Llama2_13b] {
        println!("--- {} ---", model.name());
        let trace = fig07_per_layer_tuning(preset, model);
        println!("{}", fig07_table(&trace));
        if let Some(final_ppl) = trace.final_quality() {
            println!("  final proxy PPL: {final_ppl:.4}\n");
        }
    }
}
