//! Regenerates Table 3: end-to-end comparison on Llama 2 70B (GQA).
use mugi::experiments::architecture::{table3_end_to_end, table3_table};
use mugi_bench::{preset_from_args, print_header};

fn main() {
    let preset = preset_from_args();
    print_header("Table 3 (end-to-end comparison)", preset);
    let rows = table3_end_to_end(preset);
    println!("{}", table3_table(&rows));
    let find = |label: &str| rows.iter().find(|r| r.design == label);
    if let (Some(mugi), Some(sa)) = (find("Mugi (256)"), find("SA (16)")) {
        println!(
            "Mugi(256) vs SA(16): {:.2}x throughput, {:.2}x energy efficiency, {:.2}x power efficiency",
            mugi.tokens_per_second / sa.tokens_per_second,
            mugi.tokens_per_uj / sa.tokens_per_uj,
            mugi.tokens_per_s_per_w / sa.tokens_per_s_per_w,
        );
    }
}
