//! Multi-node serving sweep: continuous-batching throughput across NoC mesh
//! sizes and placement policies on a fixed two-model workload — the
//! serving-level counterpart of the paper's Section 6.3.3 scaling study and
//! the numbers behind the multi-node section of EXPERIMENTS.md.
//!
//! For every mesh the sweep reports the serving-throughput multiplier over
//! the 1×1 baseline, the latency percentiles, and the NoC transfer energy —
//! nonzero on every real mesh, zero on one node.
//!
//! Run with: `cargo run --release -p mugi-bench --bin noc_sweep`
//! (pass `--quick` for a reduced sweep).

use mugi::arch::noc::NocConfig;
use mugi::report::TextTable;
use mugi::MugiAccelerator;
use mugi_runtime::{
    synthetic_requests, Executor, ExecutorConfig, Placement, PlacementPolicy, Request, Scheduler,
    SchedulerConfig, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

fn run(requests: &[Request], placement: Placement) -> mugi_runtime::RuntimeReport {
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(256),
        Scheduler::new(SchedulerConfig::default()),
        ExecutorConfig::default(),
        placement,
    );
    for r in requests {
        engine.submit(*r);
    }
    engine.run()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let models = [ModelId::Llama2_7b, ModelId::Llama2_70b];
    let count = if quick { 32 } else { 64 };
    let requests = synthetic_requests(7, count, &models, WorkloadSpec::default());
    let meshes: &[NocConfig] = if quick {
        &[NocConfig { rows: 1, cols: 1 }, NocConfig { rows: 4, cols: 4 }]
    } else {
        &[
            NocConfig { rows: 1, cols: 1 },
            NocConfig { rows: 2, cols: 2 },
            NocConfig { rows: 4, cols: 4 },
            NocConfig { rows: 8, cols: 8 },
        ]
    };

    let mut table = TextTable::new(
        &format!("NoC serving sweep: {count} requests, Llama 2 7B + 70B, Mugi(256) nodes"),
        &[
            "mesh",
            "placement",
            "nodes",
            "tokens/s",
            "multiplier",
            "TTFT p50 (s)",
            "TPOT p50 (s)",
            "NoC energy (µJ)",
            "mean node util",
        ],
    );
    let frequency_hz = MugiAccelerator::new(256).frequency_hz();
    let baseline = run(&requests, Placement::single_node());
    let mut sharded_4x4_multiplier = 0.0;
    for &mesh in meshes {
        let policies: &[PlacementPolicy] = if mesh.nodes() == 1 {
            &[PlacementPolicy::DataParallel]
        } else {
            &[PlacementPolicy::DataParallel, PlacementPolicy::Sharded]
        };
        for &policy in policies {
            let placement = Placement { noc: mesh, policy };
            let report =
                if mesh.nodes() == 1 { baseline.clone() } else { run(&requests, placement) };
            let multiplier = report.throughput_tokens_per_s / baseline.throughput_tokens_per_s;
            if mesh.nodes() == 16 && policy == PlacementPolicy::Sharded {
                sharded_4x4_multiplier = multiplier;
            }
            let util = report.node_utilization(frequency_hz);
            let mean_util = util.iter().sum::<f64>() / util.len() as f64;
            assert!(
                (mesh.nodes() == 1) == (report.noc_energy_uj == 0.0),
                "NoC transfer energy must be charged exactly on real meshes"
            );
            table.add_row(vec![
                mesh.label(),
                if mesh.nodes() == 1 { "single".to_string() } else { policy.label().to_string() },
                mesh.nodes().to_string(),
                format!("{:.3}", report.throughput_tokens_per_s),
                format!("{multiplier:.2}x"),
                format!("{:.1}", report.ttft.p50),
                format!("{:.2}", report.tpot.p50),
                format!("{:.1}", report.noc_energy_uj),
                format!("{mean_util:.2}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "sharded 4x4 serving-throughput multiplier: {sharded_4x4_multiplier:.2}x \
         (NoC model predicts {:.2}x)",
        NocConfig::mesh_4x4().throughput_multiplier()
    );
    assert!(
        sharded_4x4_multiplier >= 12.0,
        "sharded 4x4 placement must deliver near-linear serving scaling, got \
         {sharded_4x4_multiplier:.2}x"
    );
}
