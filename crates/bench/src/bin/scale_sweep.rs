//! Simulator-scale sweep: how fast and in how much memory the runtime
//! itself serves 10⁴ → 10⁶ requests — the numbers behind the "Scale & the
//! event engine" section of EXPERIMENTS.md.
//!
//! Three engines run the same seeded open-loop Poisson workload at each
//! request count:
//!
//! * `per-step` — the cycle-stepping `Executor` with the whole trace
//!   materialized and pre-submitted (the original path; skipped at 10⁶,
//!   where holding a million sessions plus a million stat records is
//!   exactly the curve this sweep exists to show);
//! * `event` — the `EventEngine` on the same pre-submitted trace, which
//!   must produce the identical report (asserted);
//! * `event-folded` — the `EventEngine` fed lazily from a `WorkloadStream`,
//!   folding every retired session into a `StatsFold`, so memory is O(live
//!   sessions) regardless of the horizon.
//!
//! Reported per row: simulator wall-clock, requests simulated per second of
//! wall-clock, peak live sessions, peak event-queue length and the
//! process's peak RSS so far (Linux `VmHWM`; monotone across rows, so only
//! growth between rows is attributable to the row).
//!
//! Run with: `cargo run --release -p mugi-bench --bin scale_sweep`
//! (pass `--quick` for a reduced sweep, `--json` to also write the rows to
//! `BENCH_scale.json` so the perf trajectory is tracked across changes).

use mugi::report::TextTable;
use mugi::MugiAccelerator;
use mugi_runtime::{
    EventEngine, Executor, ScaleReport, Scheduler, SchedulerConfig, StatsFold, WorkloadSpec,
    WorkloadStream,
};
use mugi_workloads::models::ModelId;
use std::time::Instant;

const SEED: u64 = 4242;
const MODEL: ModelId = ModelId::Llama2_7b;

/// Open-loop tiny-request workload at ~0.6x the batched service rate of the
/// 64-lane node, so the live population equilibrates at a few dozen
/// sessions however long the stream runs.
fn spec() -> WorkloadSpec {
    WorkloadSpec { prompt_tokens: (8, 24), output_tokens: (1, 4), ..WorkloadSpec::default() }
        .with_poisson_arrivals(3_000_000_000)
}

fn engine() -> EventEngine {
    EventEngine::new(MugiAccelerator::new(64), Scheduler::new(SchedulerConfig::default()))
}

/// Peak resident set of this process in MiB (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

struct Row {
    engine: &'static str,
    wall_s: f64,
    fold: StatsFold,
    peak_live: usize,
    peak_queue: usize,
    /// Adaptive control-plane counters — pinned at zero here (the scale
    /// path runs with the controller off), tracked in the JSON so any
    /// accidental activation shows up in the perf trajectory.
    role_rerolls: u64,
    calibration_samples: u64,
}

fn run_per_step(count: usize) -> Row {
    // mugi-lint: allow(ambient-nondeterminism, "wall-clock timing of the host run; measures the simulator, never feeds simulated state")
    let t0 = Instant::now();
    let mut ex =
        Executor::new(MugiAccelerator::new(64), Scheduler::new(SchedulerConfig::default()));
    for r in WorkloadStream::new(SEED, &[MODEL], spec()).take(count) {
        ex.submit(r);
    }
    let report = ex.run();
    Row {
        engine: "per-step",
        wall_s: t0.elapsed().as_secs_f64(),
        fold: StatsFold::of_report(&report),
        peak_live: count, // everything is materialized and live at once
        peak_queue: 0,
        role_rerolls: report.kv.role_rerolls,
        calibration_samples: report.kv.calibration_samples,
    }
}

fn run_event_presubmitted(count: usize) -> Row {
    // mugi-lint: allow(ambient-nondeterminism, "wall-clock timing of the host run; measures the simulator, never feeds simulated state")
    let t0 = Instant::now();
    let mut ev = engine();
    for r in WorkloadStream::new(SEED, &[MODEL], spec()).take(count) {
        ev.submit(r);
    }
    let report = ev.run();
    Row {
        engine: "event",
        wall_s: t0.elapsed().as_secs_f64(),
        fold: StatsFold::of_report(&report),
        peak_live: count,
        peak_queue: ev.queue().peak_len(),
        role_rerolls: report.kv.role_rerolls,
        calibration_samples: report.kv.calibration_samples,
    }
}

fn run_event_folded(count: usize) -> (Row, ScaleReport) {
    // mugi-lint: allow(ambient-nondeterminism, "wall-clock timing of the host run; measures the simulator, never feeds simulated state")
    let t0 = Instant::now();
    let mut ev = engine();
    let report = ev.run_stream_folded(WorkloadStream::new(SEED, &[MODEL], spec()).take(count));
    let row = Row {
        engine: "event-folded",
        wall_s: t0.elapsed().as_secs_f64(),
        fold: report.fold,
        peak_live: report.peak_live_sessions,
        peak_queue: report.peak_event_queue,
        role_rerolls: ev.executor().role_reroll_count(),
        calibration_samples: ev.executor().scheduler().calibration_samples(),
    };
    (row, report)
}

/// One `BENCH_scale.json` row, formatted by hand (the repo vendors no JSON
/// serializer). `peak_rss_mib` is `null` off Linux.
fn json_row(count: usize, row: &Row, mode: &str) -> String {
    let req_per_s = count as f64 / row.wall_s.max(1e-9);
    let rss = peak_rss_mib().map_or("null".to_string(), |m| format!("{m:.1}"));
    format!(
        "  {{\"requests\": {count}, \"engine\": \"{}\", \"wall_s\": {:.6}, \
         \"req_per_s\": {:.0}, \"peak_live\": {}, \"peak_queue\": {}, \
         \"peak_rss_mib\": {rss}, \"role_rerolls\": {}, \
         \"calibration_samples\": {}, \"mode\": \"{mode}\"}}",
        row.engine,
        row.wall_s,
        req_per_s,
        row.peak_live,
        row.peak_queue,
        row.role_rerolls,
        row.calibration_samples
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let counts: &[usize] = if quick { &[10_000, 100_000] } else { &[10_000, 100_000, 1_000_000] };
    // The per-step oracle's O(total) memory and stat records make it the
    // contrast curve, not the scale path; cap how far it is driven.
    let per_step_cap = if quick { 10_000 } else { 100_000 };

    let mut table = TextTable::new(
        "Simulator scale sweep (open-loop Poisson, tiny requests, single 64-lane node)",
        &["requests", "engine", "wall s", "req/s (sim)", "peak live", "peak queue", "peak RSS MiB"],
    );

    let mut json_rows: Vec<String> = Vec::new();
    let mode = if quick { "quick" } else { "full" };

    for &count in counts {
        let mut rows: Vec<Row> = Vec::new();
        let mut reference: Option<StatsFold> = None;
        if count <= per_step_cap {
            rows.push(run_per_step(count));
        }
        if count <= per_step_cap {
            rows.push(run_event_presubmitted(count));
        }
        let (folded, report) = run_event_folded(count);
        assert_eq!(folded.fold.requests, count as u64, "every generated request must retire");
        // The fold's order-sensitive identity checksum must match a second
        // pass of the same seeded stream: nothing lost, nothing reordered.
        let mut checksum = 0u64;
        for (id, r) in WorkloadStream::new(SEED, &[MODEL], spec()).take(count).enumerate() {
            checksum =
                StatsFold::fold_identity(checksum, id as u64, r.prompt_tokens, r.output_tokens);
        }
        assert_eq!(folded.fold.identity_checksum, checksum, "identity checksum drifted");
        assert!(
            report.peak_live_sessions * 100 < count.max(10_000),
            "live population {} is not O(live sessions) at count {count}",
            report.peak_live_sessions
        );
        rows.push(folded);

        for row in rows {
            // Every engine that ran the same count must agree bit for bit.
            match &reference {
                None => reference = Some(row.fold),
                Some(golden) => assert_eq!(
                    golden, &row.fold,
                    "{} diverged from the per-step oracle at count {count}",
                    row.engine
                ),
            }
            table.add_row(vec![
                count.to_string(),
                row.engine.to_string(),
                format!("{:.3}", row.wall_s),
                format!("{:.0}", count as f64 / row.wall_s.max(1e-9)),
                row.peak_live.to_string(),
                row.peak_queue.to_string(),
                peak_rss_mib().map_or("-".to_string(), |m| format!("{m:.0}")),
            ]);
            json_rows.push(json_row(count, &row, mode));
        }
    }

    println!("{}", table.render());
    println!(
        "engines on one row serve the identical seeded workload and are asserted \
         bit-identical; peak RSS is the process high-water mark (monotone across rows)"
    );

    if json {
        let path = "BENCH_scale.json";
        let body = format!("[\n{}\n]\n", json_rows.join(",\n"));
        std::fs::write(path, body).expect("writing BENCH_scale.json");
        println!("wrote {path}");
    }
}
