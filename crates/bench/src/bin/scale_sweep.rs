//! Simulator-scale sweep: how fast and in how much memory the runtime
//! itself serves 10⁴ → 10⁶ requests — the numbers behind the "Scale & the
//! event engine" section of EXPERIMENTS.md.
//!
//! Three KV configurations are swept, because the paging regime is where
//! the simulator's own hot-path cost lives:
//!
//! * `unbounded` — the historical default: no paging bookkeeping at all;
//! * `bounded` — the same tiny workload under a bounded per-node pool, so
//!   every admission, growth and release goes through the page allocator
//!   (the delta against `unbounded` is pure paging overhead);
//! * `disagg` — bounded KV with swap preemption on a 2×2 mesh split into
//!   prefill and decode nodes, so every request's pages migrate over the
//!   NoC (the Mugi mesh-serving regime).
//!
//! Three engines run the same seeded open-loop Poisson workload at each
//! request count:
//!
//! * `per-step` — the cycle-stepping `Executor` with the whole trace
//!   materialized and pre-submitted (the original path; skipped at 10⁶,
//!   where holding a million sessions plus a million stat records is
//!   exactly the curve this sweep exists to show);
//! * `event` — the `EventEngine` on the same pre-submitted trace, which
//!   must produce the identical report (asserted);
//! * `event-folded` — the `EventEngine` fed lazily from a `WorkloadStream`,
//!   folding every retired session into a `StatsFold`, so memory is O(live
//!   sessions) regardless of the horizon.
//!
//! Reported per row: simulator wall-clock, requests simulated per second of
//! wall-clock, peak live sessions, peak event-queue length and the
//! process's peak RSS *during that row*. The kernel's `VmHWM` high-water
//! mark is reset via `/proc/self/clear_refs` before each engine run, so a
//! row's figure is its own peak, not an inherited maximum from earlier
//! rows; where the reset is unavailable the row falls back to the (clamped)
//! delta from a baseline sampled at row start.
//!
//! Run with: `cargo run --release -p mugi-bench --bin scale_sweep`
//! (pass `--quick` for a reduced sweep, `--json` to also write the rows to
//! `BENCH_scale.json` so the perf trajectory is tracked across changes).

use mugi::arch::noc::NocConfig;
use mugi::report::TextTable;
use mugi::MugiAccelerator;
use mugi_runtime::{
    EventEngine, Executor, ExecutorConfig, KvConfig, Placement, ScaleReport, Scheduler,
    SchedulerConfig, StatsFold, WorkloadSpec, WorkloadStream,
};
use mugi_workloads::models::ModelId;
use std::time::Instant;

const SEED: u64 = 4242;
const MODEL: ModelId = ModelId::Llama2_7b;

/// One swept serving regime: a workload shape plus the KV/placement
/// configuration it runs under.
struct SweepConfig {
    name: &'static str,
    prompt_tokens: (usize, usize),
    output_tokens: (usize, usize),
    /// Mean Poisson inter-arrival gap, tuned per config so the live
    /// population equilibrates at a few dozen sessions however long the
    /// stream runs.
    mean_gap_cycles: u64,
    kv: KvConfig,
    /// `false` = single 64-lane node; `true` = 2×2 mesh, two prefill and
    /// two decode nodes, every request migrated over the NoC.
    disagg: bool,
    counts_full: &'static [usize],
    counts_quick: &'static [usize],
    /// The per-step oracle's O(total) memory and stat records make it the
    /// contrast curve, not the scale path; cap how far it is driven.
    per_step_cap_full: usize,
    per_step_cap_quick: usize,
}

/// The historical unbounded-KV configuration: open-loop tiny requests at
/// ~0.6x the batched service rate of the 64-lane node. Counts and workload
/// are unchanged from the original sweep so the trajectory stays
/// comparable.
fn unbounded_config() -> SweepConfig {
    SweepConfig {
        name: "unbounded",
        prompt_tokens: (8, 24),
        output_tokens: (1, 4),
        mean_gap_cycles: 3_000_000_000,
        kv: KvConfig::unbounded(),
        disagg: false,
        counts_full: &[10_000, 100_000, 1_000_000],
        counts_quick: &[10_000, 100_000],
        per_step_cap_full: 100_000,
        per_step_cap_quick: 10_000,
    }
}

/// The same tiny workload under a bounded 48-page pool: every admission
/// check, page-table growth and release now runs the allocator, so the
/// req/s delta against `unbounded` is the paging bookkeeping itself. This
/// is the 10⁶-request configuration the extent-allocator work is measured
/// on.
fn bounded_config() -> SweepConfig {
    SweepConfig {
        name: "bounded",
        prompt_tokens: (8, 24),
        output_tokens: (1, 4),
        mean_gap_cycles: 3_000_000_000,
        kv: KvConfig::bounded(128, 48),
        disagg: false,
        counts_full: &[100_000, 1_000_000],
        counts_quick: &[10_000],
        per_step_cap_full: 100_000,
        per_step_cap_quick: 10_000,
    }
}

/// Mid-size prompts on a 2×2 mesh split 2 prefill / 2 decode, bounded KV
/// with swap preemption: every request's KV pages migrate prefill→decode
/// over the NoC, so page-table migration and the swap path are on the
/// measured hot loop.
fn disagg_config() -> SweepConfig {
    SweepConfig {
        name: "disagg",
        prompt_tokens: (32, 128),
        output_tokens: (2, 12),
        mean_gap_cycles: 6_000_000_000,
        kv: KvConfig::bounded(128, 64).with_swap_preemption(),
        disagg: true,
        counts_full: &[100_000],
        counts_quick: &[5_000],
        per_step_cap_full: 100_000,
        per_step_cap_quick: 10_000,
    }
}

impl SweepConfig {
    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            prompt_tokens: self.prompt_tokens,
            output_tokens: self.output_tokens,
            ..WorkloadSpec::default()
        }
        .with_poisson_arrivals(self.mean_gap_cycles)
    }

    fn placement(&self) -> Placement {
        if self.disagg {
            Placement::disaggregated(NocConfig { rows: 2, cols: 2 }, 2)
        } else {
            Placement::single_node()
        }
    }

    fn executor_config(&self) -> ExecutorConfig {
        // The trace-bucketing granularity must equal the pool's page size
        // (128 for every swept config, matching the historical default).
        ExecutorConfig { kv_bucket: self.kv.page_tokens, ..ExecutorConfig::default() }
    }

    fn executor(&self) -> Executor {
        Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), self.kv),
            self.executor_config(),
            self.placement(),
        )
    }

    fn engine(&self) -> EventEngine {
        EventEngine::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), self.kv),
            self.executor_config(),
            self.placement(),
        )
    }
}

/// Peak resident set of this process in MiB (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

/// Marks the start of a per-row RSS measurement window. Resets the
/// kernel's high-water mark (`echo 5 > /proc/self/clear_refs`) so the next
/// `VmHWM` read is this row's own peak; returns a fallback baseline to
/// delta against where the reset is unavailable (non-Linux, locked-down
/// procfs).
fn begin_rss_window() -> Option<f64> {
    if std::fs::write("/proc/self/clear_refs", "5").is_ok() {
        None
    } else {
        peak_rss_mib()
    }
}

/// Peak RSS attributable to the row whose window `baseline` opened.
fn end_rss_window(baseline: Option<f64>) -> Option<f64> {
    let peak = peak_rss_mib()?;
    Some(match baseline {
        None => peak,
        Some(base) => (peak - base).max(0.0),
    })
}

struct Row {
    engine: &'static str,
    wall_s: f64,
    fold: StatsFold,
    peak_live: usize,
    peak_queue: usize,
    /// Peak RSS during this row alone (see [`begin_rss_window`]).
    rss_mib: Option<f64>,
    /// Adaptive control-plane counters — pinned at zero here (the scale
    /// path runs with the controller off), tracked in the JSON so any
    /// accidental activation shows up in the perf trajectory.
    role_rerolls: u64,
    calibration_samples: u64,
}

fn run_per_step(cfg: &SweepConfig, count: usize) -> Row {
    let rss = begin_rss_window();
    // mugi-lint: allow(ambient-nondeterminism, "wall-clock timing of the host run; measures the simulator, never feeds simulated state")
    let t0 = Instant::now();
    let mut ex = cfg.executor();
    for r in WorkloadStream::new(SEED, &[MODEL], cfg.spec()).take(count) {
        ex.submit(r);
    }
    let report = ex.run();
    Row {
        engine: "per-step",
        wall_s: t0.elapsed().as_secs_f64(),
        fold: StatsFold::of_report(&report),
        peak_live: count, // everything is materialized and live at once
        peak_queue: 0,
        rss_mib: end_rss_window(rss),
        role_rerolls: report.kv.role_rerolls,
        calibration_samples: report.kv.calibration_samples,
    }
}

fn run_event_presubmitted(cfg: &SweepConfig, count: usize) -> Row {
    let rss = begin_rss_window();
    // mugi-lint: allow(ambient-nondeterminism, "wall-clock timing of the host run; measures the simulator, never feeds simulated state")
    let t0 = Instant::now();
    let mut ev = cfg.engine();
    for r in WorkloadStream::new(SEED, &[MODEL], cfg.spec()).take(count) {
        ev.submit(r);
    }
    let report = ev.run();
    Row {
        engine: "event",
        wall_s: t0.elapsed().as_secs_f64(),
        fold: StatsFold::of_report(&report),
        peak_live: count,
        peak_queue: ev.queue().peak_len(),
        rss_mib: end_rss_window(rss),
        role_rerolls: report.kv.role_rerolls,
        calibration_samples: report.kv.calibration_samples,
    }
}

fn run_event_folded(cfg: &SweepConfig, count: usize) -> (Row, ScaleReport) {
    let rss = begin_rss_window();
    // mugi-lint: allow(ambient-nondeterminism, "wall-clock timing of the host run; measures the simulator, never feeds simulated state")
    let t0 = Instant::now();
    let mut ev = cfg.engine();
    let report = ev.run_stream_folded(WorkloadStream::new(SEED, &[MODEL], cfg.spec()).take(count));
    let row = Row {
        engine: "event-folded",
        wall_s: t0.elapsed().as_secs_f64(),
        fold: report.fold,
        peak_live: report.peak_live_sessions,
        peak_queue: report.peak_event_queue,
        rss_mib: end_rss_window(rss),
        role_rerolls: ev.executor().role_reroll_count(),
        calibration_samples: ev.executor().scheduler().calibration_samples(),
    };
    (row, report)
}

/// One `BENCH_scale.json` row, formatted by hand (the repo vendors no JSON
/// serializer). `peak_rss_mib` is `null` off Linux.
fn json_row(cfg: &SweepConfig, count: usize, row: &Row, mode: &str) -> String {
    let req_per_s = count as f64 / row.wall_s.max(1e-9);
    let rss = row.rss_mib.map_or("null".to_string(), |m| format!("{m:.1}"));
    format!(
        "  {{\"config\": \"{}\", \"requests\": {count}, \"engine\": \"{}\", \
         \"wall_s\": {:.6}, \"req_per_s\": {:.0}, \"peak_live\": {}, \"peak_queue\": {}, \
         \"peak_rss_mib\": {rss}, \"role_rerolls\": {}, \
         \"calibration_samples\": {}, \"mode\": \"{mode}\"}}",
        cfg.name,
        row.engine,
        row.wall_s,
        req_per_s,
        row.peak_live,
        row.peak_queue,
        row.role_rerolls,
        row.calibration_samples
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = std::env::args().any(|a| a == "--json");
    let configs = [unbounded_config(), bounded_config(), disagg_config()];

    let mut table = TextTable::new(
        "Simulator scale sweep (open-loop Poisson; unbounded / bounded / disaggregated KV)",
        &[
            "config",
            "requests",
            "engine",
            "wall s",
            "req/s (sim)",
            "peak live",
            "peak queue",
            "row RSS MiB",
        ],
    );

    let mut json_rows: Vec<String> = Vec::new();
    let mode = if quick { "quick" } else { "full" };

    for cfg in &configs {
        let counts = if quick { cfg.counts_quick } else { cfg.counts_full };
        let per_step_cap = if quick { cfg.per_step_cap_quick } else { cfg.per_step_cap_full };
        for &count in counts {
            let mut rows: Vec<Row> = Vec::new();
            let mut reference: Option<StatsFold> = None;
            if count <= per_step_cap {
                rows.push(run_per_step(cfg, count));
                rows.push(run_event_presubmitted(cfg, count));
            }
            let (folded, report) = run_event_folded(cfg, count);
            assert_eq!(folded.fold.requests, count as u64, "every generated request must retire");
            // The fold's order-sensitive identity checksum must match a
            // second pass of the same seeded stream: nothing lost, nothing
            // reordered.
            let mut checksum = 0u64;
            for (id, r) in WorkloadStream::new(SEED, &[MODEL], cfg.spec()).take(count).enumerate() {
                checksum =
                    StatsFold::fold_identity(checksum, id as u64, r.prompt_tokens, r.output_tokens);
            }
            assert_eq!(folded.fold.identity_checksum, checksum, "identity checksum drifted");
            assert!(
                report.peak_live_sessions * 100 < count.max(10_000),
                "live population {} is not O(live sessions) at count {count} ({})",
                report.peak_live_sessions,
                cfg.name
            );
            rows.push(folded);

            for row in rows {
                // Every engine that ran the same count must agree bit for
                // bit.
                match &reference {
                    None => reference = Some(row.fold),
                    Some(golden) => assert_eq!(
                        golden, &row.fold,
                        "{} diverged from the per-step oracle at count {count} ({})",
                        row.engine, cfg.name
                    ),
                }
                table.add_row(vec![
                    cfg.name.to_string(),
                    count.to_string(),
                    row.engine.to_string(),
                    format!("{:.3}", row.wall_s),
                    format!("{:.0}", count as f64 / row.wall_s.max(1e-9)),
                    row.peak_live.to_string(),
                    row.peak_queue.to_string(),
                    row.rss_mib.map_or("-".to_string(), |m| format!("{m:.0}")),
                ]);
                json_rows.push(json_row(cfg, count, &row, mode));
            }
        }
    }

    println!("{}", table.render());
    println!(
        "engines on one row serve the identical seeded workload and are asserted \
         bit-identical; row RSS is the process peak during that row alone \
         (high-water mark reset per row via /proc/self/clear_refs)"
    );

    if json {
        let path = "BENCH_scale.json";
        let body = format!("[\n{}\n]\n", json_rows.join(",\n"));
        std::fs::write(path, body).expect("writing BENCH_scale.json");
        println!("wrote {path}");
    }
}
