//! Shared helpers for the Mugi benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation section (see `DESIGN.md` for the experiment index);
//! the Criterion benches in `benches/` measure the reproduction's own kernels
//! and experiment drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mugi::experiments::Preset;

/// Parses the experiment preset from the process arguments: `--quick` selects
/// the reduced sweep, anything else (including no argument) selects the full
/// paper-scale sweep.
pub fn preset_from_args() -> Preset {
    if std::env::args().any(|a| a == "--quick") {
        Preset::Quick
    } else {
        Preset::Full
    }
}

/// Prints a standard header for a regeneration binary.
pub fn print_header(what: &str, preset: Preset) {
    println!("=== Mugi reproduction — {what} (preset: {preset:?}) ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_is_full() {
        // The test harness passes its own arguments, none of which are
        // `--quick`, so the default branch is exercised here.
        assert_eq!(preset_from_args(), Preset::Full);
    }
}
