//! Criterion benches for bounded-KV micro-batch formation: the scheduler's
//! per-step form/complete cycle against a paged KV pool, cold (fresh
//! scheduler, first admissions faulting their pages in) and hot (a warmed
//! steady state of decoding sessions growing KV until the pool churns).
//! Regressions in the zero-rehash queues, the extent allocator or the
//! preemption planner show up here in isolation from the accelerator model.
//!
//! Set `MUGI_BENCH_QUICK=1` to shrink sample counts — the CI perf smoke,
//! which only asserts that the formation path executes, not how fast.

use criterion::{criterion_group, criterion_main, Criterion};
use mugi_runtime::{KvConfig, Request, Scheduler, SchedulerConfig};
use mugi_workloads::models::ModelId;
use std::hint::black_box;

fn quick() -> bool {
    std::env::var_os("MUGI_BENCH_QUICK").is_some()
}

/// The scale-sweep bounded pool: 128-token pages, 48 of them.
fn bounded() -> KvConfig {
    KvConfig::bounded(128, 48)
}

/// Cold formation: a fresh scheduler admits a burst of requests and forms
/// its first micro-batch — construction, queue setup, first-touch
/// page-table growth and the admission bookkeeping all on the line, like
/// the first step of every serve.
fn bench_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_formation");
    group.sample_size(if quick() { 10 } else { 30 });
    group.bench_function("bounded_cold_first_batch", |b| {
        b.iter(|| {
            let mut sched = Scheduler::with_kv(SchedulerConfig::default(), bounded());
            for _ in 0..16 {
                sched.submit(Request::new(ModelId::Llama2_7b, 16, 4));
            }
            black_box(sched.next_micro_batch(0))
        })
    });
    group.finish();
}

/// Hot formation: eight long-generation sessions decode in steady state,
/// each form/complete cycle growing their KV by one entry — page allocation
/// every `page_tokens` steps and, once the 48-page pool runs dry,
/// youngest-first preemption with recompute re-prefills. This is the
/// bounded serving loop the scale sweep runs a million times, minus the
/// accelerator estimate.
fn bench_hot(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_formation");
    group.sample_size(if quick() { 10 } else { 30 });
    let mut sched = Scheduler::with_kv(SchedulerConfig::default(), bounded());
    // 16 + 4096 tokens projects to 33 pages — admissible against the
    // 48-page pool, and eight such sessions oversubscribe it 5×, so the
    // loop reaches page-churn steady state.
    let request = || Request::new(ModelId::Llama2_7b, 16, 4096);
    for _ in 0..8 {
        sched.submit(request());
    }
    // Warm up past the initial prefills so the timed loop starts decoding.
    for _ in 0..8 {
        if let Some(batch) = sched.next_micro_batch(0) {
            sched.complete(&batch, 0);
        }
    }
    group.bench_function("bounded_hot_form_complete", |b| {
        b.iter(|| {
            match sched.next_micro_batch(0) {
                Some(batch) => {
                    sched.complete(&batch, 0);
                    black_box(batch.items.len());
                }
                // The cohort finished: admit the next one so every
                // iteration keeps forming real batches.
                None => {
                    for _ in 0..8 {
                        let _ = sched.try_submit(request());
                    }
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cold, bench_hot);
criterion_main!(benches);
