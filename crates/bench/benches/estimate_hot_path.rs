//! Criterion benches for the serving simulator's per-step hot path: the
//! memoized `estimate_micro_batch_noc` (cold miss vs steady-state hit) and
//! one full `EventEngine::run_stream_folded` serve, so regressions in the
//! two-level estimate cache or the stepping loop are measurable in
//! isolation.
//!
//! Set `MUGI_BENCH_QUICK=1` to shrink sample counts and the folded serve —
//! the CI perf smoke, which only asserts that the hot path executes, not
//! how fast.

use criterion::{criterion_group, criterion_main, Criterion};
use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_runtime::{EventEngine, Scheduler, SchedulerConfig, WorkloadSpec, WorkloadStream};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::BatchSlice;
use std::hint::black_box;

fn quick() -> bool {
    std::env::var_os("MUGI_BENCH_QUICK").is_some()
}

/// A steady-state decode micro-batch shape: a few bucketed contexts plus one
/// chunked prefill slice, like the scheduler emits mid-stream.
fn shape() -> Vec<BatchSlice> {
    vec![
        BatchSlice::decode(6, 128),
        BatchSlice::decode(2, 256),
        BatchSlice::prefill(1, 24).with_kv_len(128),
    ]
}

/// Cold vs hot estimate: the cold case pays trace generation plus the
/// performance model's event-engine run on a fresh accelerator every
/// iteration; the hot case is the memoized steady-state lookup the serving
/// loop sees once per step.
fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_hot_path");
    group.sample_size(if quick() { 10 } else { 30 });
    let slices = shape();
    let noc = NocConfig::single();
    group.bench_function("estimate_micro_batch_noc_cold", |b| {
        b.iter(|| {
            let accel = MugiAccelerator::new(64);
            black_box(accel.estimate_micro_batch_noc(ModelId::Llama2_7b, black_box(&slices), noc))
        })
    });
    let accel = MugiAccelerator::new(64);
    accel.estimate_micro_batch_noc(ModelId::Llama2_7b, &slices, noc);
    group.bench_function("estimate_micro_batch_noc_hot", |b| {
        b.iter(|| {
            black_box(accel.estimate_micro_batch_noc(ModelId::Llama2_7b, black_box(&slices), noc))
        })
    });
    group.finish();
}

/// One full folded event-engine serve over a seeded open-loop stream — the
/// scale_sweep inner loop at microbench size, covering scheduling, the
/// memoized estimates and stats folding end to end.
fn bench_step_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_hot_path");
    group.sample_size(10);
    let requests = if quick() { 200 } else { 2_000 };
    let spec = WorkloadSpec { prompt_tokens: (8, 24), output_tokens: (1, 4), ..Default::default() }
        .with_poisson_arrivals(3_000_000_000);
    group.bench_function("run_stream_folded", |b| {
        b.iter(|| {
            let mut ev = EventEngine::new(
                MugiAccelerator::new(64),
                Scheduler::new(SchedulerConfig::default()),
            );
            let report = ev.run_stream_folded(
                WorkloadStream::new(4242, &[ModelId::Llama2_7b], spec).take(requests),
            );
            black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimate, bench_step_loop);
criterion_main!(benches);
