//! `matmul_scaling`: the old naive triple-loop GEMM (kept as the hidden
//! oracle `matmul_naive`) against the cache/register-blocked kernel behind
//! `Matrix::matmul_with` at 1, 2 and 4 threads, on the 512×512×512 shape the
//! acceptance sweep uses. Numbers are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mugi_numerics::exec::ExecutionContext;
use mugi_numerics::tensor::{matmul_naive, pseudo_random_matrix};
use std::hint::black_box;

fn bench_matmul_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_scaling");
    group.sample_size(10);
    let a = pseudo_random_matrix(512, 512, 1, 1.0);
    let b = pseudo_random_matrix(512, 512, 2, 1.0);
    group.bench_function("naive_512x512x512", |bench| {
        bench.iter(|| black_box(matmul_naive(black_box(&a), black_box(&b))))
    });
    for threads in [1usize, 2, 4] {
        let ctx = ExecutionContext::with_threads(threads);
        group.bench_function(BenchmarkId::new("blocked_512x512x512", threads), |bench| {
            bench.iter(|| black_box(a.matmul_with(black_box(&b), &ctx)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul_scaling);
criterion_main!(benches);
