//! Ablation benches for the design choices called out in DESIGN.md:
//! value-centric sliding window, mantissa rounding width, buffer organisation
//! and the batch/GQA utilisation lever.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mugi_arch::cost::CostModel;
use mugi_arch::modules::FifoBank;
use mugi_numerics::error::rmse;
use mugi_numerics::nonlinear::NonlinearOp;
use mugi_vlp::approx::{VlpApproxConfig, VlpNonlinear, WindowStrategy};
use mugi_workloads::distributions::DistributionProfile;
use mugi_workloads::models::ModelId;
use std::hint::black_box;

/// Ablation: adaptive sliding window vs fixed anchors vs a wide LUT window —
/// measures both runtime and reports accuracy as a side effect.
fn bench_window_ablation(c: &mut Criterion) {
    let inputs = DistributionProfile::for_model(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.5)
        .sample(8192, 9);
    let exact: Vec<f32> = inputs.iter().map(|&x| x.exp()).collect();
    let mut group = c.benchmark_group("ablation_window");
    group.sample_size(20);
    let configs = [
        ("adaptive_anchor_max", VlpApproxConfig::recommended_for(NonlinearOp::Exp)),
        (
            "fixed_minus_4",
            VlpApproxConfig {
                strategy: WindowStrategy::Fixed(-4),
                ..VlpApproxConfig::recommended_for(NonlinearOp::Exp)
            },
        ),
        (
            "fixed_minus_8_window",
            VlpApproxConfig {
                lut_min_exp: -12,
                lut_max_exp: -5,
                strategy: WindowStrategy::Fixed(-12),
                ..VlpApproxConfig::recommended_for(NonlinearOp::Exp)
            },
        ),
    ];
    for (label, cfg) in configs {
        let engine = VlpNonlinear::new(NonlinearOp::Exp, cfg);
        let (approx, _) = engine.apply(&inputs);
        // The accuracy side of the ablation is printed once so the bench log
        // records it next to the runtime.
        println!("ablation_window/{label}: rmse vs exact = {:.4e}", rmse(&exact, &approx));
        group.bench_function(label, |b| b.iter(|| black_box(engine.apply(black_box(&inputs)))));
    }
    group.finish();
}

/// Ablation: mantissa rounding width (2 / 3 / 4 bits) — the paper fixes 3 bits
/// to match the 8-column array; this shows the accuracy/latency trade-off.
fn bench_mantissa_ablation(c: &mut Criterion) {
    let inputs =
        DistributionProfile::for_model(ModelId::Llama2_7b, NonlinearOp::Silu, 0.5).sample(8192, 11);
    let exact: Vec<f32> = inputs.iter().map(|&x| mugi_numerics::nonlinear::silu(x)).collect();
    let mut group = c.benchmark_group("ablation_mantissa_bits");
    group.sample_size(20);
    for bits in [2u8, 3, 4] {
        let cfg = VlpApproxConfig {
            mantissa_bits: bits,
            ..VlpApproxConfig::recommended_for(NonlinearOp::Silu)
        };
        let engine = VlpNonlinear::new(NonlinearOp::Silu, cfg);
        let (approx, stats) = engine.apply(&inputs);
        println!(
            "ablation_mantissa/{bits} bits: rmse {:.4e}, sweep {} cycles",
            rmse(&exact, &approx),
            stats.cycles_per_mapping
        );
        group.bench_with_input(BenchmarkId::from_parameter(bits), &inputs, |b, i| {
            b.iter(|| black_box(engine.apply(black_box(i))))
        });
    }
    group.finish();
}

/// Ablation: Carat-style vs Mugi-style buffer organisation (area model only,
/// Figure 13's FIFO bars).
fn bench_buffer_ablation(c: &mut Criterion) {
    let cost = CostModel::default_45nm();
    let mut group = c.benchmark_group("ablation_buffers");
    group.sample_size(50);
    for height in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::new("carat_style", height), &height, |b, &h| {
            b.iter(|| black_box(FifoBank::carat_style(h, 8, 16).area_mm2(&cost)))
        });
        group.bench_with_input(BenchmarkId::new("mugi_style", height), &height, |b, &h| {
            b.iter(|| black_box(FifoBank::mugi_style(h, 8, 16).area_mm2(&cost)))
        });
        println!(
            "ablation_buffers/height {height}: carat {:.4} mm^2, mugi {:.4} mm^2",
            FifoBank::carat_style(height, 8, 16).area_mm2(&cost),
            FifoBank::mugi_style(height, 8, 16).area_mm2(&cost)
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window_ablation, bench_mantissa_ablation, bench_buffer_ablation);
criterion_main!(benches);
