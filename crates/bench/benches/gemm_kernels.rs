//! Criterion benches for the GEMM side (Figures 12 and 14): the functional VLP
//! GEMM, the architecture-level GEMM cycle model, and the mapping ablation
//! (Mugi transposed mapping versus the Carat mapping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mugi_arch::designs::{Design, DesignConfig};
use mugi_arch::perf::PerfModel;
use mugi_numerics::quant::weight_only_quantize;
use mugi_numerics::tensor::pseudo_random_matrix;
use mugi_vlp::gemm::{VlpGemm, VlpGemmConfig};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{OpTrace, Phase};
use std::hint::black_box;

/// Functional BF16-INT4 VLP GEMM against the dense reference GEMM.
fn bench_functional_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_functional");
    group.sample_size(20);
    let activations = pseudo_random_matrix(8, 512, 1, 1.0);
    let weights = pseudo_random_matrix(512, 512, 2, 0.5);
    let quantized = weight_only_quantize(&weights, 128);
    let engine = VlpGemm::new(VlpGemmConfig::mugi(256));
    group.bench_function("vlp_bf16_int4_8x512x512", |b| {
        b.iter(|| black_box(engine.gemm_bf16_int4(black_box(&activations), black_box(&quantized))))
    });
    let dense = quantized.dequantize().transpose();
    group.bench_function("reference_dense_8x512x512", |b| {
        b.iter(|| black_box(activations.matmul(black_box(&dense))))
    });
    group.finish();
}

/// Architecture-level evaluation of one decode step across designs (the inner
/// loop of Figures 12, 14 and Table 3).
fn bench_design_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_design_evaluation");
    group.sample_size(30);
    let trace =
        OpTrace::generate(&ModelId::Llama2_70b.config(), Phase::Decode, 8, 4096, true, true);
    for (label, cfg) in [
        ("mugi_256", DesignConfig::mugi(256)),
        ("carat_256", DesignConfig::carat(256)),
        ("sa_16", DesignConfig::systolic(16)),
        ("sd_figna_16", DesignConfig::simd_figna(16)),
        ("tensor", DesignConfig::tensor_core()),
    ] {
        let model = PerfModel::new(Design::new(cfg));
        group.bench_with_input(BenchmarkId::new("evaluate", label), &trace, |b, t| {
            b.iter(|| black_box(model.evaluate(black_box(t))))
        });
    }
    group.finish();
}

/// Ablation: Mugi transposed mapping versus the Carat activation-row mapping
/// on a small-batch GEMM (the format-customization argument of Section 4.2).
fn bench_mapping_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mapping");
    group.sample_size(20);
    let activations = pseudo_random_matrix(8, 256, 3, 1.0);
    let weights = pseudo_random_matrix(1024, 256, 4, 0.5);
    let quantized = weight_only_quantize(&weights, 128);
    for (label, cfg) in [
        ("mugi_weight_rows", VlpGemmConfig::mugi(128)),
        ("carat_activation_rows", VlpGemmConfig::carat(128)),
    ] {
        let engine = VlpGemm::new(cfg);
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(engine.gemm_bf16_int4(black_box(&activations), black_box(&quantized)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_functional_gemm, bench_design_evaluation, bench_mapping_ablation);
criterion_main!(benches);
