//! Criterion benches for the nonlinear kernels (Figures 8 and 11): VLP
//! approximation versus the PWL, Taylor, direct-LUT and precise baselines, and
//! the architecture-level nonlinear evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mugi_approx::lut_direct::DirectLutConfig;
use mugi_approx::pwl::PwlConfig;
use mugi_approx::taylor::TaylorConfig;
use mugi_approx::{Approximator, DirectLut, PiecewiseLinear, PreciseVectorArray, TaylorSeries};
use mugi_arch::designs::{Design, DesignConfig, NonlinearMethod};
use mugi_arch::perf::PerfModel;
use mugi_numerics::nonlinear::NonlinearOp;
use mugi_vlp::approx::{VlpApproxConfig, VlpNonlinear};
use mugi_workloads::distributions::DistributionProfile;
use mugi_workloads::models::ModelId;
use std::hint::black_box;

fn softmax_inputs(n: usize) -> Vec<f32> {
    DistributionProfile::for_model(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.5).sample(n, 42)
}

/// Functional nonlinear kernels (Figure 8's methods) on 16 Ki profiled inputs.
fn bench_functional_kernels(c: &mut Criterion) {
    let inputs = softmax_inputs(16 * 1024);
    let mut group = c.benchmark_group("nonlinear_functional_exp");
    group.sample_size(20);
    let vlp =
        VlpNonlinear::new(NonlinearOp::Exp, VlpApproxConfig::recommended_for(NonlinearOp::Exp));
    group.bench_function("vlp", |b| b.iter(|| black_box(vlp.apply(black_box(&inputs)))));
    let pwl =
        PiecewiseLinear::new(NonlinearOp::Exp, PwlConfig { segments: 22, segment_range: 20.0 });
    group.bench_function("pwl", |b| b.iter(|| black_box(pwl.eval_slice(black_box(&inputs)))));
    let taylor = TaylorSeries::new(NonlinearOp::Exp, TaylorConfig { degree: 9, center: -1.0 });
    group.bench_function("taylor", |b| b.iter(|| black_box(taylor.eval_slice(black_box(&inputs)))));
    let lut = DirectLut::new(NonlinearOp::Exp, DirectLutConfig::default());
    group
        .bench_function("direct_lut", |b| b.iter(|| black_box(lut.eval_slice(black_box(&inputs)))));
    let precise = PreciseVectorArray::new(NonlinearOp::Exp);
    group.bench_function("precise", |b| {
        b.iter(|| black_box(precise.eval_slice(black_box(&inputs))))
    });
    group.finish();
}

/// Architecture-level nonlinear evaluation (Figure 11's metric computation).
fn bench_architecture_nonlinear(c: &mut Criterion) {
    let mut group = c.benchmark_group("nonlinear_architecture_fig11");
    group.sample_size(30);
    let elements = 8u64 * 32 * 4096;
    for (label, cfg) in [
        ("mugi_128", DesignConfig::mugi(128)),
        ("va_precise_16", DesignConfig::vector_array(16, NonlinearMethod::Precise)),
        ("va_taylor_16", DesignConfig::vector_array(16, NonlinearMethod::Taylor)),
        ("va_pwl_16", DesignConfig::vector_array(16, NonlinearMethod::Pwl)),
    ] {
        let model = PerfModel::new(Design::new(cfg));
        group.bench_with_input(BenchmarkId::new("evaluate", label), &elements, |b, &e| {
            b.iter(|| black_box(model.evaluate_nonlinear(black_box(e))))
        });
    }
    group.finish();
}

/// VLP softmax pipeline at different row lengths (sequence lengths).
fn bench_vlp_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("vlp_softmax_pipeline");
    group.sample_size(20);
    let engine = VlpNonlinear::new(
        NonlinearOp::Softmax,
        VlpApproxConfig::recommended_for(NonlinearOp::Softmax),
    );
    for seq in [128usize, 1024, 4096] {
        let logits = softmax_inputs(seq);
        group.bench_with_input(BenchmarkId::from_parameter(seq), &logits, |b, l| {
            b.iter(|| black_box(engine.softmax(black_box(l))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_functional_kernels,
    bench_architecture_nonlinear,
    bench_vlp_softmax
);
criterion_main!(benches);
