//! Criterion benches over the experiment drivers themselves (quick presets):
//! one benchmark per paper table / figure, so `cargo bench` exercises the full
//! regeneration path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use mugi::experiments::accuracy::{fig04_profiling, fig06_accuracy_sweep, fig08_relative_error};
use mugi::experiments::architecture::{
    fig11_nonlinear_comparison, fig12_gemm_comparison, fig13_breakdown, fig14_batch_sweep,
    fig16_latency_breakdown, table3_end_to_end,
};
use mugi::experiments::sustainability::{fig15_carbon, fig17_noc_scaling};
use mugi::experiments::Preset;
use mugi_workloads::models::ModelId;
use std::hint::black_box;

fn bench_experiment_drivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_drivers_quick");
    group.sample_size(10);
    group.bench_function("fig04_profiling", |b| {
        b.iter(|| black_box(fig04_profiling(Preset::Quick)))
    });
    group.bench_function("fig08_relative_error", |b| {
        b.iter(|| black_box(fig08_relative_error(Preset::Quick)))
    });
    group.bench_function("fig11_nonlinear_comparison", |b| {
        b.iter(|| black_box(fig11_nonlinear_comparison(Preset::Quick)))
    });
    group.bench_function("fig12_gemm_comparison", |b| {
        b.iter(|| black_box(fig12_gemm_comparison(Preset::Quick)))
    });
    group.bench_function("table3_end_to_end", |b| {
        b.iter(|| black_box(table3_end_to_end(Preset::Quick)))
    });
    group.bench_function("fig13_breakdown", |b| {
        b.iter(|| black_box(fig13_breakdown(Preset::Quick)))
    });
    group.bench_function("fig14_batch_sweep", |b| {
        b.iter(|| black_box(fig14_batch_sweep(Preset::Quick)))
    });
    group.bench_function("fig15_carbon", |b| b.iter(|| black_box(fig15_carbon(Preset::Quick))));
    group.bench_function("fig16_latency_breakdown", |b| {
        b.iter(|| black_box(fig16_latency_breakdown(Preset::Quick)))
    });
    group.bench_function("fig17_noc_scaling", |b| {
        b.iter(|| black_box(fig17_noc_scaling(Preset::Quick)))
    });
    group.finish();

    // Figure 6 runs a reference-transformer forward pass per configuration and
    // is the slowest driver; bench it separately with a minimal sample count.
    let mut heavy = c.benchmark_group("experiment_drivers_heavy");
    heavy.sample_size(10);
    heavy.bench_function("fig06_accuracy_sweep", |b| {
        b.iter(|| black_box(fig06_accuracy_sweep(Preset::Quick, ModelId::Llama2_7b)))
    });
    heavy.finish();
}

criterion_group!(benches, bench_experiment_drivers);
criterion_main!(benches);
