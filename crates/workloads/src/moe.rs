//! Mixture-of-Experts (MoE) workload extension.
//!
//! Section 7.1 of the paper conjectures that Mugi generalises to MoE models,
//! whose layers add a softmax-based gating network and replace the dense FFN
//! with `num_experts` expert FFNs of which each token activates `top_k`.
//! This module extends the operator-trace generator with that structure so the
//! architecture model can evaluate the conjecture: gating adds a small
//! projection plus a softmax, and the FFN GEMMs shrink to the expert width but
//! repeat per activated expert.

use crate::models::ModelConfig;
use crate::ops::{GemmKind, GemmOp, NonlinearTrace, OpTrace, Phase, WorkloadOp};
use serde::{Deserialize, Serialize};

/// Configuration of an MoE extension applied on top of a dense model config.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Total number of experts per layer.
    pub num_experts: usize,
    /// Number of experts activated per token.
    pub top_k: usize,
    /// Hidden dimension of each expert FFN (usually smaller than the dense
    /// FFN dimension).
    pub expert_ffn_dim: usize,
}

impl MoeConfig {
    /// A Mixtral-like configuration: 8 experts, top-2 routing, expert FFN as
    /// wide as the dense model's FFN.
    pub fn mixtral_like(dense: &ModelConfig) -> Self {
        MoeConfig { num_experts: 8, top_k: 2, expert_ffn_dim: dense.ffn_dim }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_experts == 0 {
            return Err("num_experts must be non-zero".to_string());
        }
        if self.top_k == 0 || self.top_k > self.num_experts {
            return Err(format!("top_k {} must be in 1..={}", self.top_k, self.num_experts));
        }
        if self.expert_ffn_dim == 0 {
            return Err("expert_ffn_dim must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Generates the operator trace of one MoE transformer layer: the attention
/// half is identical to the dense model; the FFN half becomes a gating
/// projection + gating softmax + `top_k` expert FFNs per token.
///
/// # Panics
/// Panics if the MoE configuration is invalid or `batch`/`seq_len` is zero.
pub fn generate_moe_trace(
    model: &ModelConfig,
    moe: &MoeConfig,
    phase: Phase,
    batch: usize,
    seq_len: usize,
    woq: bool,
    kvq: bool,
) -> OpTrace {
    moe.validate().expect("invalid MoE configuration");
    let mut trace = OpTrace::generate(model, phase, batch, seq_len, woq, kvq);
    let rows = match phase {
        Phase::Prefill => batch * seq_len,
        Phase::Decode => batch,
    };
    let d = model.hidden_dim;
    let weight_bits = if woq { 4 } else { 16 };

    // Remove the dense FFN GEMMs and the dense FFN activation; keep the
    // attention part (projections, attention GEMMs, softmax) untouched.
    trace.layer_ops.retain(|op| match op {
        WorkloadOp::Gemm(g) => g.kind != GemmKind::Ffn,
        WorkloadOp::Nonlinear(n) => n.op == mugi_numerics::nonlinear::NonlinearOp::Softmax,
    });

    // Gating network: a d × num_experts projection plus a softmax over the
    // expert logits for every token.
    trace.layer_ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Projection,
        m: rows,
        k: d,
        n: moe.num_experts,
        activation_bits: 16,
        weight_bits,
        repeats: 1,
    }));
    trace.layer_ops.push(WorkloadOp::Nonlinear(NonlinearTrace {
        op: mugi_numerics::nonlinear::NonlinearOp::Softmax,
        elements: (rows * moe.num_experts) as u64,
        row_len: moe.num_experts,
        repeats: 1,
    }));

    // Expert FFNs: each token runs top_k experts. Modelled as top_k smaller
    // FFN GEMMs over the full token rows (each expert sees rows/num_experts
    // tokens on average; total MAC work equals rows * top_k expert FFNs).
    let up_repeats = if model.gated_ffn { 2 } else { 1 };
    trace.layer_ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Ffn,
        m: rows,
        k: d,
        n: moe.expert_ffn_dim,
        activation_bits: 16,
        weight_bits,
        repeats: up_repeats * moe.top_k,
    }));
    trace.layer_ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Ffn,
        m: rows,
        k: moe.expert_ffn_dim,
        n: d,
        activation_bits: 16,
        weight_bits,
        repeats: moe.top_k,
    }));
    trace.layer_ops.push(WorkloadOp::Nonlinear(NonlinearTrace {
        op: model.ffn_activation(),
        elements: (rows * moe.expert_ffn_dim) as u64,
        row_len: 1,
        repeats: moe.top_k,
    }));
    trace
}

/// Total expert-weight parameters per MoE layer (for memory-footprint
/// comparisons: all experts must be resident even though only `top_k` run).
pub fn moe_layer_weight_params(model: &ModelConfig, moe: &MoeConfig) -> u64 {
    let d = model.hidden_dim as u64;
    let f = moe.expert_ffn_dim as u64;
    let per_expert = if model.gated_ffn { 3 * d * f } else { 2 * d * f };
    per_expert * moe.num_experts as u64 + d * moe.num_experts as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelId;
    use mugi_numerics::nonlinear::NonlinearOp;

    fn dense() -> ModelConfig {
        ModelId::Llama2_7b.config()
    }

    #[test]
    fn moe_trace_has_gating_and_expert_ffns() {
        let cfg = dense();
        let moe = MoeConfig { num_experts: 8, top_k: 2, expert_ffn_dim: cfg.ffn_dim };
        let trace = generate_moe_trace(&cfg, &moe, Phase::Decode, 8, 4096, true, true);
        // Two softmaxes now: attention plus gating.
        let softmax_count =
            trace.nonlinears().iter().filter(|n| n.op == NonlinearOp::Softmax).count();
        assert_eq!(softmax_count, 2);
        // Gating softmax rows are num_experts wide.
        assert!(trace.nonlinears().iter().any(|n| n.op == NonlinearOp::Softmax && n.row_len == 8));
        // Expert FFN GEMMs repeat top_k times (x2 for the gated up projection).
        let ffn = trace.gemms_of_kind(GemmKind::Ffn);
        assert_eq!(ffn.len(), 2);
        assert_eq!(ffn[0].repeats, 4);
        assert_eq!(ffn[1].repeats, 2);
    }

    #[test]
    fn top2_moe_ffn_macs_are_double_dense() {
        let cfg = dense();
        let moe = MoeConfig::mixtral_like(&cfg);
        let dense_trace = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, true, true);
        let moe_trace = generate_moe_trace(&cfg, &moe, Phase::Decode, 8, 4096, true, true);
        let ffn_macs = |t: &OpTrace| -> u64 {
            t.gemms_of_kind(GemmKind::Ffn).iter().map(|g| g.total_macs()).sum()
        };
        // Top-2 routing with same-width experts executes ~2x the dense FFN
        // compute (plus the negligible gating projection).
        let ratio = ffn_macs(&moe_trace) as f64 / ffn_macs(&dense_trace) as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // Attention MACs are unchanged.
        let attn = |t: &OpTrace| -> u64 {
            t.gemms_of_kind(GemmKind::Attention).iter().map(|g| g.total_macs()).sum()
        };
        assert_eq!(attn(&dense_trace), attn(&moe_trace));
    }

    #[test]
    fn moe_weight_footprint_counts_all_experts() {
        let cfg = dense();
        let moe = MoeConfig { num_experts: 8, top_k: 2, expert_ffn_dim: cfg.ffn_dim };
        let params = moe_layer_weight_params(&cfg, &moe);
        // 8 experts x 3 x d x f for the gated FFN.
        let expected =
            8 * 3 * cfg.hidden_dim as u64 * cfg.ffn_dim as u64 + cfg.hidden_dim as u64 * 8;
        assert_eq!(params, expected);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(MoeConfig { num_experts: 0, top_k: 1, expert_ffn_dim: 1 }.validate().is_err());
        assert!(MoeConfig { num_experts: 4, top_k: 5, expert_ffn_dim: 1 }.validate().is_err());
        assert!(MoeConfig { num_experts: 4, top_k: 2, expert_ffn_dim: 0 }.validate().is_err());
        assert!(MoeConfig { num_experts: 4, top_k: 2, expert_ffn_dim: 64 }.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid MoE configuration")]
    fn generate_rejects_invalid_config() {
        let cfg = dense();
        let bad = MoeConfig { num_experts: 2, top_k: 3, expert_ffn_dim: 64 };
        let _ = generate_moe_trace(&cfg, &bad, Phase::Decode, 1, 16, true, true);
    }
}
