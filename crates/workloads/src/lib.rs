//! # mugi-workloads
//!
//! LLM workload models for the Mugi reproduction.
//!
//! The paper evaluates Mugi on the transformer models of its Table 1
//! (Llama 2 7B/13B/70B, Whisper tiny/large, SwinV2 tiny/large, ViViT base).
//! This crate provides:
//!
//! * [`models`] — the static model configurations of Table 1 (layer counts,
//!   head counts, hidden/FFN dimensions, sequence lengths, GQA group sizes);
//! * [`ops`] — per-layer operator traces: projection / attention / FFN GEMMs
//!   and softmax / SiLU / GELU nonlinear operations with their shapes, for
//!   prefill and decode phases, with WOQ / KVQ / GQA variants;
//! * [`distributions`] — synthetic activation-distribution generators that
//!   substitute the paper's GPU profiling (Figure 4): per-op, per-model,
//!   per-layer-depth value and exponent histograms;
//! * [`mod@reference`] — a small pure-Rust transformer used to measure the
//!   end-to-end effect of nonlinear approximation (proxy perplexity for
//!   Figures 6 and 7).
//!
//! The substitution rationale is documented in `DESIGN.md` at the repository
//! root: every downstream experiment consumes either operator *shapes* or
//! input *distributions*, both of which are faithfully reproduced here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod models;
pub mod moe;
pub mod ops;
pub mod reference;

pub use models::{ModelConfig, ModelFamily, ModelId};
pub use ops::{GemmOp, NonlinearTrace, OpTrace, Phase, WorkloadOp};
