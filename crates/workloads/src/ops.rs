//! Per-layer operator traces: the GEMMs and nonlinear operations a transformer
//! layer performs, with their shapes, for prefill and decode phases.
//!
//! The architecture model (`mugi-arch`) consumes these traces to estimate
//! latency, energy and utilization for every design in the paper's evaluation
//! (Figures 11–17, Table 3).

use crate::models::ModelConfig;
use serde::{Deserialize, Serialize};

/// Inference phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Prefill: all prompt tokens processed at once (large GEMMs).
    Prefill,
    /// Decode: one new token per request (small-batch GEMMs / GEMVs).
    Decode,
}

/// Which logical part of the layer a GEMM belongs to, matching the latency
/// breakdown categories of Figures 15 and 16.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GemmKind {
    /// Q/K/V/O projections.
    Projection,
    /// Attention score (`QKᵀ`) and value (`PV`) GEMMs against the KV cache.
    Attention,
    /// FFN up/gate/down projections.
    Ffn,
}

impl GemmKind {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            GemmKind::Projection => "Projection",
            GemmKind::Attention => "Attention",
            GemmKind::Ffn => "FFN",
        }
    }
}

/// One homogeneous slice of a (possibly mixed) micro-batch: `batch` requests
/// in the same phase sharing a token count and a KV-cache context length.
///
/// A classic trace is a single slice; a continuous-batching scheduler
/// composes several (decode slots plus chunked-prefill slices) and hands
/// them to [`OpTrace::generate_mixed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchSlice {
    /// Inference phase of every request in the slice.
    pub phase: Phase,
    /// Number of requests in the slice.
    pub batch: usize,
    /// Tokens processed per request this step: the prompt (or prompt-chunk)
    /// length for prefill, the attended context length for decode.
    pub seq_len: usize,
    /// KV-cache entries each request attends to. Equals `seq_len` for the
    /// classic whole-prompt traces; a chunked prefill slice attends to the
    /// previously cached prefix plus its own chunk, so `kv_len > seq_len`.
    pub kv_len: usize,
}

impl BatchSlice {
    /// A slice whose attended context equals its token count (the classic
    /// whole-prompt prefill / full-context decode case).
    ///
    /// # Panics
    /// Panics if `batch` or `seq_len` is zero.
    pub fn new(phase: Phase, batch: usize, seq_len: usize) -> Self {
        assert!(batch > 0, "batch must be non-zero");
        assert!(seq_len > 0, "seq_len must be non-zero");
        BatchSlice { phase, batch, seq_len, kv_len: seq_len }
    }

    /// A prefill slice: `batch` prompts of `seq_len` tokens each.
    pub fn prefill(batch: usize, seq_len: usize) -> Self {
        BatchSlice::new(Phase::Prefill, batch, seq_len)
    }

    /// A decode slice: `batch` requests each generating one token against a
    /// `context` entry KV cache.
    pub fn decode(batch: usize, context: usize) -> Self {
        BatchSlice::new(Phase::Decode, batch, context)
    }

    /// Overrides the attended KV-cache length (chunked prefill attends to the
    /// already-cached prefix as well as its own chunk).
    ///
    /// # Panics
    /// Panics if `kv_len` is zero.
    pub fn with_kv_len(mut self, kv_len: usize) -> Self {
        assert!(kv_len > 0, "kv_len must be non-zero");
        self.kv_len = kv_len;
        self
    }

    /// Tokens this slice processes in one step: `batch × seq_len` for
    /// prefill, one per request for decode.
    pub fn tokens(&self) -> usize {
        match self.phase {
            Phase::Prefill => self.batch * self.seq_len,
            Phase::Decode => self.batch,
        }
    }
}

/// A single GEMM operation `A (m×k) × B (k×n)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmOp {
    /// Which part of the layer this GEMM implements.
    pub kind: GemmKind,
    /// Rows of the activation operand (batch × tokens, or batch × group for
    /// GQA attention).
    pub m: usize,
    /// Shared (reduction) dimension.
    pub k: usize,
    /// Columns of the weight / KV operand.
    pub n: usize,
    /// Bits per element of the activation operand (16 for BF16).
    pub activation_bits: usize,
    /// Bits per element of the weight / KV operand (4 under WOQ / KVQ, 16
    /// otherwise).
    pub weight_bits: usize,
    /// How many times this exact GEMM repeats in the layer (e.g. once per
    /// attention head or per KV head).
    pub repeats: usize,
}

impl GemmOp {
    /// Multiply-accumulate count for one instance.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Total MACs including repeats.
    pub fn total_macs(&self) -> u64 {
        self.macs() * self.repeats as u64
    }

    /// Bytes of weight/KV operand traffic for one instance.
    pub fn weight_bytes(&self) -> u64 {
        (self.k as u64 * self.n as u64 * self.weight_bits as u64).div_ceil(8)
    }

    /// Bytes of activation operand traffic for one instance.
    pub fn activation_bytes(&self) -> u64 {
        (self.m as u64 * self.k as u64 * self.activation_bits as u64).div_ceil(8)
    }
}

/// A nonlinear operation applied element-wise (or row-wise for softmax).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NonlinearTrace {
    /// The operation.
    pub op: mugi_numerics::nonlinear::NonlinearOp,
    /// Number of elements processed.
    pub elements: u64,
    /// Row length for softmax (the normalisation dimension); 1 for
    /// element-wise activations.
    pub row_len: usize,
    /// How many times the op repeats in the layer.
    pub repeats: usize,
}

impl NonlinearTrace {
    /// Total element count including repeats.
    pub fn total_elements(&self) -> u64 {
        self.elements * self.repeats as u64
    }
}

/// One operation of a workload trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadOp {
    /// A GEMM.
    Gemm(GemmOp),
    /// A nonlinear operation.
    Nonlinear(NonlinearTrace),
}

/// A full per-layer operator trace plus workload metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpTrace {
    /// The model configuration the trace was generated from.
    pub model: ModelConfig,
    /// Inference phase.
    pub phase: Phase,
    /// Batch size (number of concurrent requests).
    pub batch: usize,
    /// Sequence length (context length for decode, prompt length for prefill).
    pub seq_len: usize,
    /// Whether weights are INT4 (weight-only quantization).
    pub woq: bool,
    /// Whether the KV cache is INT4 (KV-cache quantization).
    pub kvq: bool,
    /// The micro-batch slices the trace was composed from (a single slice for
    /// the classic [`OpTrace::generate`] traces).
    pub slices: Vec<BatchSlice>,
    /// Operations of one transformer layer, in execution order.
    pub layer_ops: Vec<WorkloadOp>,
}

impl OpTrace {
    /// Generates the operator trace for one transformer layer of `model`.
    ///
    /// * In `Prefill`, every GEMM sees `batch × seq_len` activation rows.
    /// * In `Decode`, projections/FFN see `batch` rows; attention GEMMs run
    ///   against the cached `seq_len` keys/values. Under GQA the group of
    ///   query heads sharing a KV head forms a small-batch GEMM of
    ///   `batch × group` rows (the utilisation-critical case for Mugi).
    ///
    /// # Panics
    /// Panics if `batch` or `seq_len` is zero.
    pub fn generate(
        model: &ModelConfig,
        phase: Phase,
        batch: usize,
        seq_len: usize,
        woq: bool,
        kvq: bool,
    ) -> Self {
        Self::generate_mixed(model, &[BatchSlice::new(phase, batch, seq_len)], woq, kvq)
    }

    /// Generates the operator trace of one transformer layer for a *mixed*
    /// micro-batch: the concatenation of each slice's operations in slice
    /// order. This is what a continuous-batching scheduler feeds the
    /// performance model — decode slots for in-flight requests composed with
    /// chunked-prefill slices for newly admitted ones.
    ///
    /// Trace-level metadata aggregates over the slices: `batch` is the total
    /// request count, `seq_len` the longest slice, and `phase` is `Prefill`
    /// only when every slice is prefill (a mixed batch is decode-dominant by
    /// convention).
    ///
    /// # Panics
    /// Panics if `slices` is empty or any slice has a zero dimension.
    pub fn generate_mixed(
        model: &ModelConfig,
        slices: &[BatchSlice],
        woq: bool,
        kvq: bool,
    ) -> Self {
        assert!(!slices.is_empty(), "slices must be non-empty");
        // Each slice contributes a fixed op sequence (7 GEMMs + 2
        // nonlinears); reserving it up front keeps trace generation free of
        // incremental reallocation.
        let mut ops = Vec::with_capacity(slices.len() * 9);
        for slice in slices {
            push_slice_ops(model, *slice, woq, kvq, &mut ops);
        }
        let batch = slices.iter().map(|s| s.batch).sum();
        let seq_len = slices.iter().map(|s| s.seq_len).max().unwrap_or(0);
        let phase = if slices.iter().all(|s| s.phase == Phase::Prefill) {
            Phase::Prefill
        } else {
            Phase::Decode
        };
        OpTrace {
            model: *model,
            phase,
            batch,
            seq_len,
            woq,
            kvq,
            slices: slices.to_vec(),
            layer_ops: ops,
        }
    }

    /// Output tokens produced by one execution of this trace: one per decode
    /// request. Zero for a pure-prefill trace.
    pub fn decode_tokens_per_step(&self) -> usize {
        self.slices.iter().filter(|s| s.phase == Phase::Decode).map(|s| s.batch).sum()
    }

    /// Prompt tokens processed by one execution of this trace across its
    /// prefill slices.
    pub fn prefill_tokens(&self) -> usize {
        self.slices.iter().filter(|s| s.phase == Phase::Prefill).map(|s| s.tokens()).sum()
    }

    /// Tokens per step used for throughput accounting: the decode tokens of
    /// a mixed batch, or — for a pure-prefill trace — the number of prompts,
    /// preserving the historical prompts-per-second meaning of prefill
    /// throughput.
    pub fn tokens_per_step(&self) -> usize {
        let decode = self.decode_tokens_per_step();
        if decode > 0 {
            decode
        } else {
            self.batch
        }
    }

    /// Total MACs across all GEMMs of one layer.
    pub fn layer_macs(&self) -> u64 {
        self.layer_ops
            .iter()
            .map(|op| match op {
                WorkloadOp::Gemm(g) => g.total_macs(),
                WorkloadOp::Nonlinear(_) => 0,
            })
            .sum()
    }

    /// Total nonlinear elements across one layer.
    pub fn layer_nonlinear_elements(&self) -> u64 {
        self.layer_ops
            .iter()
            .map(|op| match op {
                WorkloadOp::Gemm(_) => 0,
                WorkloadOp::Nonlinear(n) => n.total_elements(),
            })
            .sum()
    }

    /// Total MACs for the whole model (all layers).
    pub fn model_macs(&self) -> u64 {
        self.layer_macs() * self.model.layers as u64
    }

    /// Total weight bytes read per layer (each weight is read once per layer
    /// under an output-stationary dataflow with sufficient on-chip reuse).
    pub fn layer_weight_bytes(&self) -> u64 {
        self.layer_ops
            .iter()
            .map(|op| match op {
                WorkloadOp::Gemm(g) => g.weight_bytes() * g.repeats as u64,
                WorkloadOp::Nonlinear(_) => 0,
            })
            .sum()
    }

    /// GEMM ops of a given kind.
    pub fn gemms_of_kind(&self, kind: GemmKind) -> Vec<GemmOp> {
        self.layer_ops
            .iter()
            .filter_map(|op| match op {
                WorkloadOp::Gemm(g) if g.kind == kind => Some(*g),
                _ => None,
            })
            .collect()
    }

    /// Nonlinear traces of the layer.
    pub fn nonlinears(&self) -> Vec<NonlinearTrace> {
        self.layer_ops
            .iter()
            .filter_map(|op| match op {
                WorkloadOp::Nonlinear(n) => Some(*n),
                _ => None,
            })
            .collect()
    }
}

/// Appends the per-layer operations of one micro-batch slice to `ops`.
///
/// * In `Prefill`, every GEMM sees `batch × seq_len` activation rows.
/// * In `Decode`, projections/FFN see `batch` rows; attention GEMMs run
///   against the `kv_len` cached keys/values. Under GQA the group of query
///   heads sharing a KV head forms a small-batch GEMM of `batch × group`
///   rows (the utilisation-critical case for Mugi).
fn push_slice_ops(
    model: &ModelConfig,
    slice: BatchSlice,
    woq: bool,
    kvq: bool,
    ops: &mut Vec<WorkloadOp>,
) {
    assert!(slice.batch > 0, "batch must be non-zero");
    assert!(slice.seq_len > 0, "seq_len must be non-zero");
    assert!(slice.kv_len > 0, "kv_len must be non-zero");
    let BatchSlice { phase, batch, seq_len, kv_len } = slice;
    let d = model.hidden_dim;
    let head_dim = model.head_dim();
    let kv_dim = head_dim * model.kv_heads;
    let f = model.ffn_dim;
    let weight_bits = if woq { 4 } else { 16 };
    let kv_bits = if kvq { 4 } else { 16 };
    let rows = match phase {
        Phase::Prefill => batch * seq_len,
        Phase::Decode => batch,
    };

    // --- Projections: Q, K, V, O ------------------------------------
    ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Projection,
        m: rows,
        k: d,
        n: d,
        activation_bits: 16,
        weight_bits,
        repeats: 2, // Q and O projections (d × d)
    }));
    ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Projection,
        m: rows,
        k: d,
        n: kv_dim,
        activation_bits: 16,
        weight_bits,
        repeats: 2, // K and V projections (d × kv_dim)
    }));

    // --- Attention ---------------------------------------------------
    // Score GEMM (Q Kᵀ) and value GEMM (P V) per KV head. Under GQA the
    // group of query heads forms the activation rows.
    let group = model.gqa_group_size();
    let attn_rows = match phase {
        Phase::Prefill => batch * seq_len * group,
        Phase::Decode => batch * group,
    };
    ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Attention,
        m: attn_rows,
        k: head_dim,
        n: kv_len,
        activation_bits: 16,
        weight_bits: kv_bits,
        repeats: model.kv_heads, // score GEMM per KV head
    }));
    ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Attention,
        m: attn_rows,
        k: kv_len,
        n: head_dim,
        activation_bits: 16,
        weight_bits: kv_bits,
        repeats: model.kv_heads, // value GEMM per KV head
    }));
    // Softmax over the attention scores: one row of `kv_len` per query
    // head per token.
    let softmax_rows = match phase {
        Phase::Prefill => batch as u64 * seq_len as u64 * model.attention_heads as u64,
        Phase::Decode => batch as u64 * model.attention_heads as u64,
    };
    ops.push(WorkloadOp::Nonlinear(NonlinearTrace {
        op: mugi_numerics::nonlinear::NonlinearOp::Softmax,
        elements: softmax_rows * kv_len as u64,
        row_len: kv_len,
        repeats: 1,
    }));

    // --- FFN -----------------------------------------------------------
    let up_repeats = if model.gated_ffn { 2 } else { 1 };
    ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Ffn,
        m: rows,
        k: d,
        n: f,
        activation_bits: 16,
        weight_bits,
        repeats: up_repeats, // up (+ gate) projection
    }));
    ops.push(WorkloadOp::Gemm(GemmOp {
        kind: GemmKind::Ffn,
        m: rows,
        k: f,
        n: d,
        activation_bits: 16,
        weight_bits,
        repeats: 1, // down projection
    }));
    // FFN activation applied to the up-projection output.
    ops.push(WorkloadOp::Nonlinear(NonlinearTrace {
        op: model.ffn_activation(),
        elements: rows as u64 * f as u64,
        row_len: 1,
        repeats: 1,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelId;
    use mugi_numerics::nonlinear::NonlinearOp;

    #[test]
    fn decode_trace_has_expected_structure() {
        let cfg = ModelId::Llama2_7b.config();
        let trace = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, true, true);
        assert_eq!(trace.gemms_of_kind(GemmKind::Projection).len(), 2);
        assert_eq!(trace.gemms_of_kind(GemmKind::Attention).len(), 2);
        assert_eq!(trace.gemms_of_kind(GemmKind::Ffn).len(), 2);
        let nl = trace.nonlinears();
        assert_eq!(nl.len(), 2);
        assert_eq!(nl[0].op, NonlinearOp::Softmax);
        assert_eq!(nl[1].op, NonlinearOp::Silu);
    }

    #[test]
    fn woq_and_kvq_shrink_weight_traffic() {
        let cfg = ModelId::Llama2_7b.config();
        let full = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, false, false);
        let quant = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, true, true);
        assert_eq!(full.layer_weight_bytes() / quant.layer_weight_bytes(), 4);
        // MAC counts are unchanged by quantization.
        assert_eq!(full.layer_macs(), quant.layer_macs());
    }

    #[test]
    fn prefill_macs_scale_with_sequence_length() {
        let cfg = ModelId::Llama2_7b.config();
        let short = OpTrace::generate(&cfg, Phase::Prefill, 1, 128, true, true);
        let long = OpTrace::generate(&cfg, Phase::Prefill, 1, 256, true, true);
        // Projection/FFN GEMMs scale linearly; attention quadratically, so the
        // total grows by a factor between 2 and 4.
        let ratio = long.layer_macs() as f64 / short.layer_macs() as f64;
        assert!(ratio > 2.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn gqa_reduces_attention_kv_repeats() {
        let mha = ModelId::Llama2_13b.config();
        let gqa = ModelId::Llama2_70b.config();
        let mha_trace = OpTrace::generate(&mha, Phase::Decode, 8, 4096, true, true);
        let gqa_trace = OpTrace::generate(&gqa, Phase::Decode, 8, 4096, true, true);
        let mha_attn = &mha_trace.gemms_of_kind(GemmKind::Attention)[0];
        let gqa_attn = &gqa_trace.gemms_of_kind(GemmKind::Attention)[0];
        assert_eq!(mha_attn.repeats, 40);
        assert_eq!(gqa_attn.repeats, 8);
        // Under GQA the per-KV-head activation rows are batch × group = 64,
        // a small-batch GEMM instead of 40 separate batch-8 GEMVs.
        assert_eq!(gqa_attn.m, 8 * 8);
        assert_eq!(mha_attn.m, 8);
    }

    #[test]
    fn decode_attention_scales_with_context_not_batch_rows() {
        let cfg = ModelId::Llama2_7b.config();
        let t1 = OpTrace::generate(&cfg, Phase::Decode, 8, 1024, true, true);
        let t2 = OpTrace::generate(&cfg, Phase::Decode, 8, 2048, true, true);
        let a1: u64 = t1.gemms_of_kind(GemmKind::Attention).iter().map(|g| g.total_macs()).sum();
        let a2: u64 = t2.gemms_of_kind(GemmKind::Attention).iter().map(|g| g.total_macs()).sum();
        assert_eq!(a2, a1 * 2);
        // Projection MACs do not change with context length in decode.
        let p1: u64 = t1.gemms_of_kind(GemmKind::Projection).iter().map(|g| g.total_macs()).sum();
        let p2: u64 = t2.gemms_of_kind(GemmKind::Projection).iter().map(|g| g.total_macs()).sum();
        assert_eq!(p1, p2);
    }

    #[test]
    fn nonlinear_elements_track_ffn_and_softmax() {
        let cfg = ModelId::Llama2_7b.config();
        let trace = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, true, true);
        let nl = trace.nonlinears();
        // Softmax: batch * heads rows of seq_len.
        assert_eq!(nl[0].total_elements(), 8 * 32 * 4096);
        // SiLU: batch rows of ffn_dim.
        assert_eq!(nl[1].total_elements(), 8 * 11008);
        assert_eq!(trace.layer_nonlinear_elements(), 8 * 32 * 4096 + 8 * 11008);
    }

    #[test]
    fn model_macs_multiply_by_layers() {
        let cfg = ModelId::WhisperTiny.config();
        let trace = OpTrace::generate(&cfg, Phase::Decode, 1, 128, false, false);
        assert_eq!(trace.model_macs(), trace.layer_macs() * 4);
    }

    #[test]
    fn single_slice_trace_equals_generate() {
        let cfg = ModelId::Llama2_70b.config();
        let a = OpTrace::generate(&cfg, Phase::Decode, 8, 4096, true, true);
        let b = OpTrace::generate_mixed(&cfg, &[BatchSlice::decode(8, 4096)], true, true);
        assert_eq!(a, b);
        assert_eq!(a.slices, vec![BatchSlice::decode(8, 4096)]);
    }

    #[test]
    fn mixed_trace_concatenates_slices() {
        let cfg = ModelId::Llama2_7b.config();
        let decode = OpTrace::generate(&cfg, Phase::Decode, 8, 1024, true, true);
        let prefill = OpTrace::generate(&cfg, Phase::Prefill, 1, 256, true, true);
        let mixed = OpTrace::generate_mixed(
            &cfg,
            &[BatchSlice::decode(8, 1024), BatchSlice::prefill(1, 256)],
            true,
            true,
        );
        assert_eq!(mixed.layer_ops.len(), decode.layer_ops.len() + prefill.layer_ops.len());
        assert_eq!(mixed.layer_macs(), decode.layer_macs() + prefill.layer_macs());
        assert_eq!(mixed.batch, 9);
        assert_eq!(mixed.seq_len, 1024);
        assert_eq!(mixed.phase, Phase::Decode);
        assert_eq!(mixed.decode_tokens_per_step(), 8);
        assert_eq!(mixed.prefill_tokens(), 256);
        assert_eq!(mixed.tokens_per_step(), 8);
    }

    #[test]
    fn pure_prefill_tokens_per_step_counts_prompts() {
        let cfg = ModelId::Llama2_7b.config();
        let trace = OpTrace::generate(&cfg, Phase::Prefill, 4, 512, true, true);
        assert_eq!(trace.decode_tokens_per_step(), 0);
        assert_eq!(trace.prefill_tokens(), 4 * 512);
        assert_eq!(trace.tokens_per_step(), 4);
    }

    #[test]
    fn chunked_prefill_attends_to_cached_prefix() {
        let cfg = ModelId::Llama2_7b.config();
        let chunk = BatchSlice::prefill(1, 128).with_kv_len(512);
        let trace = OpTrace::generate_mixed(&cfg, &[chunk], true, true);
        let attn = trace.gemms_of_kind(GemmKind::Attention);
        // The score GEMM runs against the whole cached context.
        assert_eq!(attn[0].n, 512);
        assert_eq!(attn[0].m, 128 * cfg.gqa_group_size());
        // Projections only process the chunk's own tokens.
        assert_eq!(trace.gemms_of_kind(GemmKind::Projection)[0].m, 128);
        assert_eq!(trace.prefill_tokens(), 128);
    }

    #[test]
    #[should_panic(expected = "slices must be non-empty")]
    fn empty_slices_rejected() {
        let cfg = ModelId::Llama2_7b.config();
        let _ = OpTrace::generate_mixed(&cfg, &[], true, true);
    }

    #[test]
    #[should_panic(expected = "batch must be non-zero")]
    fn zero_batch_rejected() {
        let cfg = ModelId::Llama2_7b.config();
        let _ = OpTrace::generate(&cfg, Phase::Decode, 0, 128, true, true);
    }

    #[test]
    fn gemm_byte_accounting() {
        let g = GemmOp {
            kind: GemmKind::Projection,
            m: 8,
            k: 4096,
            n: 4096,
            activation_bits: 16,
            weight_bits: 4,
            repeats: 1,
        };
        assert_eq!(g.macs(), 8 * 4096 * 4096);
        assert_eq!(g.weight_bytes(), 4096 * 4096 / 2);
        assert_eq!(g.activation_bytes(), 8 * 4096 * 2);
        assert_eq!(GemmKind::Ffn.label(), "FFN");
    }
}
