//! Synthetic activation-distribution generators (substitute for the paper's
//! GPU profiling, Figure 4).
//!
//! The paper profiles the inputs of softmax, SiLU and GELU across models,
//! layers and sequence lengths, and observes that:
//!
//! * softmax inputs (after max subtraction) are non-positive and their
//!   *exponents* cluster in a narrow band (roughly `[-3, 4]`), even when the
//!   values themselves are spread out; later layers drift toward more
//!   negative values (around −10 for deep Llama 2 layers);
//! * SiLU / GELU inputs cluster tightly around zero across all models;
//! * Llama 2 is the outlier whose softmax distribution varies strongly across
//!   layers, which is what motivates per-layer tuning (Figure 7).
//!
//! We encode those observations as parameterised generators. Every accuracy
//! experiment downstream consumes only these distributions, so matching their
//! shape preserves the behaviour the paper measures.

use crate::models::{ModelFamily, ModelId};
use mugi_numerics::fields::FloatFields;
use mugi_numerics::nonlinear::NonlinearOp;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic input distribution for one (model, op, layer).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistributionProfile {
    /// The nonlinear op whose inputs are modelled.
    pub op: NonlinearOp,
    /// Mean of the underlying Gaussian component.
    pub mean: f32,
    /// Standard deviation of the Gaussian component.
    pub std_dev: f32,
    /// Fraction of heavy-tail samples drawn from a wider Gaussian (models the
    /// outliers visible in the value histograms of Figure 4).
    pub tail_fraction: f32,
    /// Scale multiplier of the heavy tail.
    pub tail_scale: f32,
    /// Whether samples are clamped to be non-positive (softmax inputs after
    /// max subtraction).
    pub non_positive: bool,
}

impl DistributionProfile {
    /// Profile of the nonlinear inputs of `model` at relative layer depth
    /// `depth` in `[0, 1]` (0 = first layer, 1 = last layer).
    pub fn for_model(model: ModelId, op: NonlinearOp, depth: f32) -> Self {
        let depth = depth.clamp(0.0, 1.0);
        let family = model.config().family;
        match op {
            NonlinearOp::Softmax | NonlinearOp::Exp => {
                // Softmax inputs: non-positive, concentrated near zero in early
                // layers, drifting negative with depth. Llama drifts the most
                // (down to about -10 in deep layers); vision models much less.
                let drift = match family {
                    ModelFamily::Llama2 => 10.0,
                    ModelFamily::Whisper => 5.0,
                    ModelFamily::SwinV2 => 4.0,
                    ModelFamily::ViViT => 6.0,
                };
                DistributionProfile {
                    op,
                    mean: -1.5 - drift * depth,
                    std_dev: 2.0 + 1.5 * depth,
                    tail_fraction: 0.05,
                    tail_scale: 3.0,
                    non_positive: true,
                }
            }
            NonlinearOp::Silu | NonlinearOp::Gelu => {
                // FFN activation inputs: centred at (or slightly below) zero,
                // standard deviation of a few units, consistent across layers.
                let spread = match family {
                    ModelFamily::Llama2 => 1.5,
                    ModelFamily::Whisper => 2.5,
                    ModelFamily::SwinV2 => 2.0,
                    ModelFamily::ViViT => 2.0,
                };
                DistributionProfile {
                    op,
                    mean: -0.2,
                    std_dev: spread + 0.3 * depth,
                    tail_fraction: 0.02,
                    tail_scale: 4.0,
                    non_positive: false,
                }
            }
        }
    }

    /// Draws `count` samples from the profile.
    pub fn sample(&self, count: usize, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let scale = if rng.gen::<f32>() < self.tail_fraction {
                    self.std_dev * self.tail_scale
                } else {
                    self.std_dev
                };
                let x = self.mean + gaussian(&mut rng) * scale;
                if self.non_positive {
                    // Softmax inputs are x_i - max(x), hence <= 0.
                    -(x - self.mean).abs() + self.mean.min(0.0)
                } else {
                    x
                }
            })
            .collect()
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// A histogram over values and over BF16 exponents, the two panels the paper
/// plots per model/op in Figure 4.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileHistogram {
    /// Histogram bin edges over the raw values.
    pub value_edges: Vec<f32>,
    /// Counts (fractions) per value bin.
    pub value_density: Vec<f32>,
    /// Exponent histogram: (exponent, fraction of samples).
    pub exponent_density: Vec<(i32, f32)>,
    /// Fraction of exactly-zero samples (which have no exponent).
    pub zero_fraction: f32,
}

impl ProfileHistogram {
    /// Builds value and exponent histograms from samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or `bins` is zero.
    pub fn from_samples(samples: &[f32], bins: usize) -> Self {
        assert!(!samples.is_empty(), "samples must not be empty");
        assert!(bins > 0, "bins must be non-zero");
        let min = samples.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = samples.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let span = (max - min).max(f32::MIN_POSITIVE);
        let mut value_counts = vec![0usize; bins];
        let mut exp_counts = std::collections::BTreeMap::new();
        let mut zeros = 0usize;
        for &s in samples {
            let idx = (((s - min) / span) * bins as f32) as usize;
            value_counts[idx.min(bins - 1)] += 1;
            if s == 0.0 {
                zeros += 1;
            } else {
                let fields = FloatFields::split_f32(s, 7);
                *exp_counts.entry(fields.exponent).or_insert(0usize) += 1;
            }
        }
        let n = samples.len() as f32;
        let value_edges = (0..=bins).map(|i| min + span * i as f32 / bins as f32).collect();
        let value_density = value_counts.iter().map(|&c| c as f32 / n).collect();
        let exponent_density = exp_counts.into_iter().map(|(e, c)| (e, c as f32 / n)).collect();
        ProfileHistogram {
            value_edges,
            value_density,
            exponent_density,
            zero_fraction: zeros as f32 / n,
        }
    }

    /// The smallest exponent window `[lo, lo + size)` that covers at least
    /// `coverage` of the (non-zero) probability mass — the quantity that
    /// justifies the value-centric LUT window.
    pub fn best_exponent_window(&self, size: usize, coverage: f32) -> Option<(i32, f32)> {
        if self.exponent_density.is_empty() || size == 0 {
            return None;
        }
        let min_exp = self.exponent_density.first().map(|&(e, _)| e)?;
        let max_exp = self.exponent_density.last().map(|&(e, _)| e)?;
        let mut best: Option<(i32, f32)> = None;
        for lo in min_exp..=max_exp {
            let hi = lo + size as i32 - 1;
            let mass: f32 = self
                .exponent_density
                .iter()
                .filter(|&&(e, _)| e >= lo && e <= hi)
                .map(|&(_, f)| f)
                .sum();
            if best.map_or(true, |(_, m)| mass > m) {
                best = Some((lo, mass));
            }
        }
        best.filter(|&(_, m)| m >= coverage).or(best)
    }
}

/// Profiles one (model, op, layer-depth) combination: draws samples and builds
/// the Figure-4-style histogram.
pub fn profile(
    model: ModelId,
    op: NonlinearOp,
    depth: f32,
    samples: usize,
    seed: u64,
) -> ProfileHistogram {
    let dist = DistributionProfile::for_model(model, op, depth);
    let data = dist.sample(samples, seed);
    ProfileHistogram::from_samples(&data, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_samples_are_non_positive() {
        let profile = DistributionProfile::for_model(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.0);
        let samples = profile.sample(2000, 1);
        assert!(samples.iter().all(|&x| x <= 0.0));
    }

    #[test]
    fn activation_samples_cluster_near_zero() {
        let profile = DistributionProfile::for_model(ModelId::WhisperLarge, NonlinearOp::Gelu, 0.5);
        let samples = profile.sample(4000, 2);
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 1.0, "mean {mean}");
        let within_8: usize = samples.iter().filter(|x| x.abs() < 8.0).count();
        assert!(within_8 as f32 / samples.len() as f32 > 0.9);
    }

    #[test]
    fn llama_drifts_more_than_vision_models_with_depth() {
        let llama_late =
            DistributionProfile::for_model(ModelId::Llama2_7b, NonlinearOp::Softmax, 1.0);
        let swin_late =
            DistributionProfile::for_model(ModelId::Swinv2Large, NonlinearOp::Softmax, 1.0);
        assert!(llama_late.mean < swin_late.mean);
        let llama_early =
            DistributionProfile::for_model(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.0);
        assert!(llama_late.mean < llama_early.mean);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = DistributionProfile::for_model(ModelId::VivitBase, NonlinearOp::Gelu, 0.3);
        assert_eq!(p.sample(100, 42), p.sample(100, 42));
        assert_ne!(p.sample(100, 42), p.sample(100, 43));
    }

    #[test]
    fn histogram_densities_sum_to_one() {
        let h = profile(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.0, 5000, 7);
        let value_sum: f32 = h.value_density.iter().sum();
        assert!((value_sum - 1.0).abs() < 1e-3);
        let exp_sum: f32 = h.exponent_density.iter().map(|&(_, f)| f).sum();
        assert!((exp_sum + h.zero_fraction - 1.0).abs() < 1e-3);
        assert_eq!(h.value_edges.len(), h.value_density.len() + 1);
    }

    #[test]
    fn exponents_cluster_in_a_narrow_window() {
        // The observation that motivates the value-centric LUT: a window of 8
        // exponents covers the overwhelming majority of softmax inputs.
        let h = profile(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.0, 20000, 11);
        let (lo, mass) = h.best_exponent_window(8, 0.9).unwrap();
        assert!(mass > 0.9, "window starting at {lo} covers only {mass}");
        // SiLU likewise.
        let h = profile(ModelId::Llama2_7b, NonlinearOp::Silu, 0.5, 20000, 12);
        let (_, mass) = h.best_exponent_window(8, 0.85).unwrap();
        assert!(mass > 0.85);
    }

    #[test]
    fn deeper_layers_shift_the_best_window() {
        let early = profile(ModelId::Llama2_7b, NonlinearOp::Softmax, 0.0, 20000, 21);
        let late = profile(ModelId::Llama2_7b, NonlinearOp::Softmax, 1.0, 20000, 22);
        let (lo_early, _) = early.best_exponent_window(8, 0.5).unwrap();
        let (lo_late, _) = late.best_exponent_window(8, 0.5).unwrap();
        // Later layers have larger-magnitude (more negative) inputs, hence
        // larger exponents of |x|; the window moves up or stays, it must not
        // move down.
        assert!(lo_late >= lo_early, "early {lo_early} late {lo_late}");
    }

    #[test]
    #[should_panic(expected = "samples must not be empty")]
    fn empty_samples_rejected() {
        ProfileHistogram::from_samples(&[], 8);
    }
}
