//! Static model configurations (Table 1 of the paper).
//!
//! The table lists, for every studied model: layer count, attention-head and
//! KV-head counts (GQA when they differ), attention hidden dimension, FFN
//! hidden dimension and the sequence lengths used. Vision/audio models
//! (Whisper, SwinV2, ViViT) use GELU in their FFN; Llama uses SiLU (the gated
//! SwiGLU form, which doubles the first FFN projection).

use serde::{Deserialize, Serialize};

/// Model family, which determines which activation the FFN uses and how the
/// per-layer activation distributions drift (see [`crate::distributions`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Llama 2 decoder-only LLM (SiLU / SwiGLU FFN).
    Llama2,
    /// Whisper encoder-decoder speech model (GELU FFN).
    Whisper,
    /// SwinV2 hierarchical vision transformer (GELU FFN).
    SwinV2,
    /// ViViT video transformer (GELU FFN).
    ViViT,
}

/// Identifier for every concrete model studied in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// Llama 2 7B.
    Llama2_7b,
    /// Llama 2 13B.
    Llama2_13b,
    /// Llama 2 70B (grouped-query attention, group size 8).
    Llama2_70b,
    /// Whisper tiny.
    WhisperTiny,
    /// Whisper large.
    WhisperLarge,
    /// SwinV2 tiny.
    Swinv2Tiny,
    /// SwinV2 large.
    Swinv2Large,
    /// ViViT base.
    VivitBase,
}

impl ModelId {
    /// All models of Table 1.
    pub fn all() -> [ModelId; 8] {
        [
            ModelId::Llama2_7b,
            ModelId::Llama2_13b,
            ModelId::Llama2_70b,
            ModelId::WhisperTiny,
            ModelId::WhisperLarge,
            ModelId::Swinv2Tiny,
            ModelId::Swinv2Large,
            ModelId::VivitBase,
        ]
    }

    /// The Llama 2 models used in the architecture evaluation (Figures 11–17).
    pub fn llama_models() -> [ModelId; 3] {
        [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b]
    }

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Llama2_7b => "Llama 2 7B",
            ModelId::Llama2_13b => "Llama 2 13B",
            ModelId::Llama2_70b => "Llama 2 70B",
            ModelId::WhisperTiny => "Whisper Tiny",
            ModelId::WhisperLarge => "Whisper Large",
            ModelId::Swinv2Tiny => "SwinV2 Tiny",
            ModelId::Swinv2Large => "SwinV2 Large",
            ModelId::VivitBase => "ViViT Base",
        }
    }

    /// The static configuration of this model (Table 1).
    pub fn config(self) -> ModelConfig {
        match self {
            ModelId::Llama2_7b => ModelConfig {
                id: self,
                family: ModelFamily::Llama2,
                layers: 32,
                attention_heads: 32,
                kv_heads: 32,
                hidden_dim: 4096,
                ffn_dim: 11008,
                default_seq_len: 4096,
                vocab_size: 32000,
                gated_ffn: true,
            },
            ModelId::Llama2_13b => ModelConfig {
                id: self,
                family: ModelFamily::Llama2,
                layers: 40,
                attention_heads: 40,
                kv_heads: 40,
                hidden_dim: 5120,
                ffn_dim: 13824,
                default_seq_len: 4096,
                vocab_size: 32000,
                gated_ffn: true,
            },
            ModelId::Llama2_70b => ModelConfig {
                id: self,
                family: ModelFamily::Llama2,
                layers: 80,
                attention_heads: 64,
                kv_heads: 8,
                hidden_dim: 8192,
                ffn_dim: 28672,
                default_seq_len: 4096,
                vocab_size: 32000,
                gated_ffn: true,
            },
            ModelId::WhisperTiny => ModelConfig {
                id: self,
                family: ModelFamily::Whisper,
                layers: 4,
                attention_heads: 6,
                kv_heads: 6,
                hidden_dim: 384,
                ffn_dim: 1536,
                default_seq_len: 1500,
                vocab_size: 51865,
                gated_ffn: false,
            },
            ModelId::WhisperLarge => ModelConfig {
                id: self,
                family: ModelFamily::Whisper,
                layers: 32,
                attention_heads: 20,
                kv_heads: 20,
                hidden_dim: 1280,
                ffn_dim: 5120,
                default_seq_len: 1500,
                vocab_size: 51865,
                gated_ffn: false,
            },
            ModelId::Swinv2Tiny => ModelConfig {
                id: self,
                family: ModelFamily::SwinV2,
                layers: 12,
                attention_heads: 24,
                kv_heads: 24,
                hidden_dim: 768,
                ffn_dim: 3072,
                default_seq_len: 4096,
                vocab_size: 1000,
                gated_ffn: false,
            },
            ModelId::Swinv2Large => ModelConfig {
                id: self,
                family: ModelFamily::SwinV2,
                layers: 24,
                attention_heads: 48,
                kv_heads: 48,
                hidden_dim: 1536,
                ffn_dim: 6144,
                default_seq_len: 4096,
                vocab_size: 1000,
                gated_ffn: false,
            },
            ModelId::VivitBase => ModelConfig {
                id: self,
                family: ModelFamily::ViViT,
                layers: 12,
                attention_heads: 12,
                kv_heads: 12,
                hidden_dim: 768,
                ffn_dim: 3072,
                default_seq_len: 3136,
                vocab_size: 400,
                gated_ffn: false,
            },
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static configuration of one transformer model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which model this is.
    pub id: ModelId,
    /// Model family (determines the FFN activation).
    pub family: ModelFamily,
    /// Number of transformer layers.
    pub layers: usize,
    /// Number of attention (query) heads.
    pub attention_heads: usize,
    /// Number of key/value heads; smaller than `attention_heads` under GQA.
    pub kv_heads: usize,
    /// Model (attention) hidden dimension.
    pub hidden_dim: usize,
    /// FFN hidden dimension.
    pub ffn_dim: usize,
    /// Default sequence length used in the evaluation.
    pub default_seq_len: usize,
    /// Vocabulary (or class) size, used for the LM head / classifier GEMM.
    pub vocab_size: usize,
    /// Whether the FFN is gated (SwiGLU-style, doubling the up projection).
    pub gated_ffn: bool,
}

impl ModelConfig {
    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden_dim / self.attention_heads
    }

    /// GQA group size: how many query heads share one KV head.
    pub fn gqa_group_size(&self) -> usize {
        self.attention_heads / self.kv_heads.max(1)
    }

    /// Whether the model uses grouped-query attention.
    pub fn uses_gqa(&self) -> bool {
        self.gqa_group_size() > 1
    }

    /// The FFN activation used by this family.
    pub fn ffn_activation(&self) -> mugi_numerics::nonlinear::NonlinearOp {
        match self.family {
            ModelFamily::Llama2 => mugi_numerics::nonlinear::NonlinearOp::Silu,
            _ => mugi_numerics::nonlinear::NonlinearOp::Gelu,
        }
    }

    /// Total weight parameter count of the transformer blocks (projections
    /// plus FFN), excluding embeddings. Used by the memory-traffic model.
    pub fn block_params(&self) -> u64 {
        let d = self.hidden_dim as u64;
        let f = self.ffn_dim as u64;
        let kv_dim = (self.head_dim() * self.kv_heads) as u64;
        // Q, O projections are d×d; K, V projections are d×kv_dim under GQA.
        let attn = d * d * 2 + d * kv_dim * 2;
        let ffn = if self.gated_ffn { 3 * d * f } else { 2 * d * f };
        (attn + ffn) * self.layers as u64
    }

    /// Approximate total parameter count including the embedding / LM head.
    pub fn total_params(&self) -> u64 {
        self.block_params() + 2 * (self.vocab_size as u64) * (self.hidden_dim as u64)
    }

    /// Size in bytes of the KV cache for `seq_len` cached tokens at
    /// `bits_per_value` precision.
    pub fn kv_cache_bytes(&self, seq_len: usize, bits_per_value: usize) -> u64 {
        let per_token = 2 * self.kv_heads as u64 * self.head_dim() as u64; // K and V
        per_token * seq_len as u64 * self.layers as u64 * bits_per_value as u64 / 8
    }

    /// Layers profiled in the paper's Figure 4 (first / middle / last).
    pub fn profiled_layers(&self) -> Vec<usize> {
        if self.layers <= 2 {
            (0..self.layers).collect()
        } else {
            vec![0, self.layers / 2, self.layers - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mugi_numerics::nonlinear::NonlinearOp;

    #[test]
    fn table1_shapes_are_consistent() {
        for id in ModelId::all() {
            let cfg = id.config();
            assert!(cfg.layers > 0);
            assert_eq!(cfg.hidden_dim % cfg.attention_heads, 0, "{id}: head dim must divide");
            assert!(cfg.kv_heads <= cfg.attention_heads);
            assert_eq!(cfg.attention_heads % cfg.kv_heads, 0, "{id}: GQA group must divide");
            assert!(cfg.ffn_dim > cfg.hidden_dim);
        }
    }

    #[test]
    fn llama70b_uses_gqa_group_of_8() {
        let cfg = ModelId::Llama2_70b.config();
        assert!(cfg.uses_gqa());
        assert_eq!(cfg.gqa_group_size(), 8);
        assert!(!ModelId::Llama2_7b.config().uses_gqa());
    }

    #[test]
    fn ffn_activation_by_family() {
        assert_eq!(ModelId::Llama2_7b.config().ffn_activation(), NonlinearOp::Silu);
        assert_eq!(ModelId::WhisperLarge.config().ffn_activation(), NonlinearOp::Gelu);
        assert_eq!(ModelId::Swinv2Tiny.config().ffn_activation(), NonlinearOp::Gelu);
        assert_eq!(ModelId::VivitBase.config().ffn_activation(), NonlinearOp::Gelu);
    }

    #[test]
    fn parameter_counts_are_in_the_right_ballpark() {
        // Llama 2 7B has ~6.7B parameters; our block count plus embeddings
        // should land within 15% of 7B.
        let p7 = ModelId::Llama2_7b.config().total_params() as f64 / 1e9;
        assert!(p7 > 5.8 && p7 < 7.5, "7B estimate {p7}");
        let p13 = ModelId::Llama2_13b.config().total_params() as f64 / 1e9;
        assert!(p13 > 11.0 && p13 < 14.5, "13B estimate {p13}");
        let p70 = ModelId::Llama2_70b.config().total_params() as f64 / 1e9;
        assert!(p70 > 60.0 && p70 < 75.0, "70B estimate {p70}");
        // Ordering is preserved.
        assert!(p7 < p13 && p13 < p70);
    }

    #[test]
    fn kv_cache_scales_with_precision_and_length() {
        let cfg = ModelId::Llama2_7b.config();
        let bf16 = cfg.kv_cache_bytes(4096, 16);
        let int4 = cfg.kv_cache_bytes(4096, 4);
        assert_eq!(bf16 / int4, 4);
        assert_eq!(cfg.kv_cache_bytes(2048, 16) * 2, bf16);
        // 7B KV cache at 4096 tokens in BF16 is about 2 GiB.
        let gib = bf16 as f64 / (1u64 << 30) as f64;
        assert!(gib > 1.5 && gib < 2.5, "KV cache {gib} GiB");
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let mha = ModelId::Llama2_13b.config().kv_cache_bytes(4096, 16);
        let gqa = ModelId::Llama2_70b.config().kv_cache_bytes(4096, 16);
        // 70B has more layers and a bigger hidden dim, but only 8 KV heads of
        // 128 dims; its cache per layer is much smaller than 13B's.
        let mha_per_layer = mha / 40;
        let gqa_per_layer = gqa / 80;
        assert!(gqa_per_layer < mha_per_layer);
    }

    #[test]
    fn profiled_layers_cover_first_middle_last() {
        let cfg = ModelId::Llama2_7b.config();
        assert_eq!(cfg.profiled_layers(), vec![0, 16, 31]);
        let tiny = ModelId::WhisperTiny.config();
        assert_eq!(tiny.profiled_layers(), vec![0, 2, 3]);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelId::Llama2_70b.to_string(), "Llama 2 70B");
        assert_eq!(ModelId::all().len(), 8);
        assert_eq!(ModelId::llama_models().len(), 3);
    }
}
