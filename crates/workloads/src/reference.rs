//! Reference mini-transformer and proxy-perplexity evaluation.
//!
//! The paper reports end-to-end perplexity / loss of real checkpoints under
//! each nonlinear approximation (Figure 6) and the per-layer tuning curve
//! (Figure 7). Real checkpoints and GPUs are not available in this
//! reproduction, so this module provides the documented substitute: a small,
//! deterministic pure-Rust transformer whose nonlinear operations can be
//! swapped between the exact reference and any approximation, evaluated by a
//! cross-entropy "proxy perplexity" on synthetic sequences.
//!
//! What the substitution preserves (see DESIGN.md): the relative ranking of
//! approximation methods is driven by *where* their error lands relative to
//! the input density, which is exactly what this pipeline measures. Absolute
//! perplexities are not comparable to the paper's.

use crate::models::ModelId;
use mugi_numerics::error::perplexity_from_nats;
use mugi_numerics::nonlinear::{softmax, NonlinearOp};
use mugi_numerics::tensor::{pseudo_random_matrix, Matrix};
use serde::{Deserialize, Serialize};

/// How a nonlinear op is evaluated inside the reference model.
pub trait NonlinearBackend {
    /// Element-wise activation (SiLU or GELU depending on the model family).
    fn activation(&self, op: NonlinearOp, values: &[f32]) -> Vec<f32>;
    /// Row-wise softmax over `cols`-wide rows.
    fn softmax_rows(&self, data: &[f32], cols: usize) -> Vec<f32>;
    /// Label for reports.
    fn label(&self) -> String;
}

/// The exact (software) backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactBackend;

impl NonlinearBackend for ExactBackend {
    fn activation(&self, op: NonlinearOp, values: &[f32]) -> Vec<f32> {
        values.iter().map(|&x| op.eval(x)).collect()
    }

    fn softmax_rows(&self, data: &[f32], cols: usize) -> Vec<f32> {
        mugi_numerics::nonlinear::softmax_rows(data, cols)
    }

    fn label(&self) -> String {
        "exact".to_string()
    }
}

/// Configuration of the reference mini-transformer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReferenceConfig {
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// FFN dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length of the evaluation sequences.
    pub seq_len: usize,
    /// Which FFN activation to use.
    pub activation_is_silu: bool,
    /// Seed for the deterministic weights.
    pub seed: u64,
}

impl ReferenceConfig {
    /// A small configuration that keeps evaluation fast while exercising every
    /// code path (multi-head attention, gated FFN, softmax, LM head).
    pub fn small(seed: u64) -> Self {
        ReferenceConfig {
            layers: 2,
            hidden_dim: 32,
            heads: 4,
            ffn_dim: 64,
            vocab: 128,
            seq_len: 24,
            activation_is_silu: true,
            seed,
        }
    }

    /// A configuration whose proportions mimic a scaled-down version of
    /// `model` (layer count capped for tractability).
    pub fn scaled_from(model: ModelId, seed: u64) -> Self {
        let cfg = model.config();
        ReferenceConfig {
            layers: cfg.layers.min(4),
            hidden_dim: 48,
            heads: 4,
            ffn_dim: 96,
            vocab: 128,
            seq_len: 32,
            activation_is_silu: cfg.ffn_activation() == NonlinearOp::Silu,
            seed,
        }
    }

    fn head_dim(&self) -> usize {
        self.hidden_dim / self.heads
    }
}

/// Per-layer weights of the reference transformer.
#[derive(Clone, Debug)]
struct LayerWeights {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    w_up: Matrix,
    w_gate: Matrix,
    w_down: Matrix,
}

/// The reference mini-transformer.
#[derive(Clone, Debug)]
pub struct ReferenceModel {
    config: ReferenceConfig,
    embedding: Matrix,
    layers: Vec<LayerWeights>,
    lm_head: Matrix,
}

impl ReferenceModel {
    /// Builds the model with deterministic pseudo-random weights.
    ///
    /// # Panics
    /// Panics if the hidden dimension is not divisible by the head count.
    pub fn new(config: ReferenceConfig) -> Self {
        assert_eq!(config.hidden_dim % config.heads, 0, "hidden_dim must be divisible by heads");
        let d = config.hidden_dim;
        let scale = 1.0 / (d as f32).sqrt();
        let s = config.seed;
        let layers = (0..config.layers)
            .map(|l| {
                let base = s.wrapping_add(1000 * (l as u64 + 1));
                LayerWeights {
                    wq: pseudo_random_matrix(d, d, base + 1, scale),
                    wk: pseudo_random_matrix(d, d, base + 2, scale),
                    wv: pseudo_random_matrix(d, d, base + 3, scale),
                    wo: pseudo_random_matrix(d, d, base + 4, scale),
                    w_up: pseudo_random_matrix(d, config.ffn_dim, base + 5, scale),
                    w_gate: pseudo_random_matrix(d, config.ffn_dim, base + 6, scale),
                    w_down: pseudo_random_matrix(config.ffn_dim, d, base + 7, scale),
                }
            })
            .collect();
        ReferenceModel {
            config,
            embedding: pseudo_random_matrix(config.vocab, d, s + 11, 1.0),
            layers,
            lm_head: pseudo_random_matrix(d, config.vocab, s + 13, scale),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ReferenceConfig {
        &self.config
    }

    /// Runs the model over a token sequence and returns the next-token logits
    /// for every position (a `seq_len × vocab` matrix).
    ///
    /// # Panics
    /// Panics if a token id is out of the vocabulary.
    pub fn forward<B: NonlinearBackend>(&self, tokens: &[usize], backend: &B) -> Matrix {
        let d = self.config.hidden_dim;
        let n = tokens.len();
        let act_op =
            if self.config.activation_is_silu { NonlinearOp::Silu } else { NonlinearOp::Gelu };
        // Embed.
        let mut hidden = Matrix::from_fn(n, d, |r, c| {
            let token = tokens[r];
            assert!(token < self.config.vocab, "token {token} out of vocabulary");
            self.embedding[(token, c)]
        });
        for layer in &self.layers {
            // --- Attention ------------------------------------------------
            let q = hidden.matmul(&layer.wq);
            let k = hidden.matmul(&layer.wk);
            let v = hidden.matmul(&layer.wv);
            let head_dim = self.config.head_dim();
            let mut attn_out = Matrix::zeros(n, d);
            for h in 0..self.config.heads {
                let col0 = h * head_dim;
                let slice_cols = |m: &Matrix| Matrix::from_fn(n, head_dim, |r, c| m[(r, col0 + c)]);
                let qh = slice_cols(&q);
                let kh = slice_cols(&k);
                let vh = slice_cols(&v);
                // Causal scores.
                let mut scores = qh.matmul(&kh.transpose()).scale(1.0 / (head_dim as f32).sqrt());
                for r in 0..n {
                    for c in (r + 1)..n {
                        scores[(r, c)] = f32::NEG_INFINITY;
                    }
                }
                let probs_flat = backend.softmax_rows(scores.data(), n);
                let probs = Matrix::from_vec(n, n, probs_flat);
                let out = probs.matmul(&vh);
                for r in 0..n {
                    for c in 0..head_dim {
                        attn_out[(r, col0 + c)] = out[(r, c)];
                    }
                }
            }
            let attn_proj = attn_out.matmul(&layer.wo);
            hidden = rms_norm(&hidden.add(&attn_proj));
            // --- FFN (gated) ----------------------------------------------
            let up = hidden.matmul(&layer.w_up);
            let gate = hidden.matmul(&layer.w_gate);
            let activated =
                Matrix::from_vec(up.rows(), up.cols(), backend.activation(act_op, gate.data()));
            let ffn = activated.hadamard(&up).matmul(&layer.w_down);
            hidden = rms_norm(&hidden.add(&ffn));
        }
        hidden.matmul(&self.lm_head)
    }

    /// Average next-token cross-entropy (nats) of the model under `backend`
    /// over a batch of deterministic synthetic sequences. The *target*
    /// distribution at every position is the exact backend's softmax output,
    /// so the metric is `H(p_exact, q_backend)`; by Gibbs' inequality the
    /// exact backend is the floor and any approximation can only increase the
    /// proxy perplexity — the mechanism behind Figure 6.
    pub fn proxy_cross_entropy<B: NonlinearBackend>(&self, backend: &B, sequences: usize) -> f32 {
        let exact = ExactBackend;
        let mut total = 0.0f64;
        let mut count = 0usize;
        for s in 0..sequences {
            let tokens = self.synthetic_sequence(s as u64);
            let exact_logits = self.forward(&tokens, &exact);
            let logits = self.forward(&tokens, backend);
            for pos in 0..tokens.len().saturating_sub(1) {
                let target = softmax(exact_logits.row(pos));
                let probs = softmax(logits.row(pos));
                for (t, q) in target.iter().zip(&probs) {
                    if *t > 0.0 {
                        total -= *t as f64 * (q.max(1e-9) as f64).ln();
                    }
                }
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            (total / count as f64) as f32
        }
    }

    /// Proxy perplexity (exp of the proxy cross-entropy).
    pub fn proxy_perplexity<B: NonlinearBackend>(&self, backend: &B, sequences: usize) -> f32 {
        perplexity_from_nats(self.proxy_cross_entropy(backend, sequences))
    }

    /// Deterministic synthetic token sequence.
    pub fn synthetic_sequence(&self, seed: u64) -> Vec<usize> {
        let mut state = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03))
            | 1;
        (0..self.config.seq_len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % self.config.vocab
            })
            .collect()
    }
}

/// RMS normalisation (as used by Llama-family models), applied row-wise.
fn rms_norm(m: &Matrix) -> Matrix {
    let cols = m.cols();
    let mut out = m.clone();
    for r in 0..m.rows() {
        let row = m.row(r);
        let rms = (row.iter().map(|x| x * x).sum::<f32>() / cols as f32).sqrt().max(1e-6);
        for c in 0..cols {
            out[(r, c)] = m[(r, c)] / rms;
        }
    }
    out
}

/// A backend that uses closures for the two nonlinear hooks; the facade crate
/// uses it to plug VLP / PWL / Taylor approximations into the reference model
/// without `mugi-workloads` depending on those crates' types directly.
pub struct HookedBackend<A, S>
where
    A: Fn(NonlinearOp, &[f32]) -> Vec<f32>,
    S: Fn(&[f32], usize) -> Vec<f32>,
{
    activation_hook: A,
    softmax_hook: S,
    name: String,
}

impl<A, S> HookedBackend<A, S>
where
    A: Fn(NonlinearOp, &[f32]) -> Vec<f32>,
    S: Fn(&[f32], usize) -> Vec<f32>,
{
    /// Creates a backend from an activation hook and a softmax hook.
    pub fn new(name: impl Into<String>, activation_hook: A, softmax_hook: S) -> Self {
        HookedBackend { activation_hook, softmax_hook, name: name.into() }
    }
}

impl<A, S> NonlinearBackend for HookedBackend<A, S>
where
    A: Fn(NonlinearOp, &[f32]) -> Vec<f32>,
    S: Fn(&[f32], usize) -> Vec<f32>,
{
    fn activation(&self, op: NonlinearOp, values: &[f32]) -> Vec<f32> {
        (self.activation_hook)(op, values)
    }

    fn softmax_rows(&self, data: &[f32], cols: usize) -> Vec<f32> {
        (self.softmax_hook)(data, cols)
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mugi_vlp::approx::{VlpApproxConfig, VlpNonlinear};

    #[test]
    fn forward_produces_finite_logits() {
        let model = ReferenceModel::new(ReferenceConfig::small(1));
        let tokens = model.synthetic_sequence(0);
        let logits = model.forward(&tokens, &ExactBackend);
        assert_eq!(logits.rows(), tokens.len());
        assert_eq!(logits.cols(), model.config().vocab);
        assert!(logits.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn exact_backend_achieves_floor_perplexity() {
        let model = ReferenceModel::new(ReferenceConfig::small(2));
        let exact_ppl = model.proxy_perplexity(&ExactBackend, 2);
        // By construction the targets are the exact backend's own argmax, so
        // the exact perplexity is small (peaked softmax) and any perturbation
        // can only increase it.
        let noisy = HookedBackend::new(
            "noisy",
            |op, xs: &[f32]| xs.iter().map(|&x| op.eval(x) + 0.25).collect(),
            |data, cols| {
                mugi_numerics::nonlinear::softmax_rows(data, cols)
                    .iter()
                    .map(|&p| (p + 0.01) / 1.0)
                    .collect()
            },
        );
        let noisy_ppl = model.proxy_perplexity(&noisy, 2);
        assert!(exact_ppl <= noisy_ppl + 1e-3, "exact {exact_ppl} noisy {noisy_ppl}");
        assert!(exact_ppl >= 1.0);
    }

    #[test]
    fn vlp_backend_stays_close_to_exact() {
        let model = ReferenceModel::new(ReferenceConfig::small(3));
        let sm_engine = VlpNonlinear::new(
            NonlinearOp::Softmax,
            VlpApproxConfig::recommended_for(NonlinearOp::Softmax),
        );
        let silu_engine = VlpNonlinear::new(
            NonlinearOp::Silu,
            VlpApproxConfig::recommended_for(NonlinearOp::Silu),
        );
        let gelu_engine = VlpNonlinear::new(
            NonlinearOp::Gelu,
            VlpApproxConfig::recommended_for(NonlinearOp::Gelu),
        );
        let vlp = HookedBackend::new(
            "vlp",
            move |op, xs: &[f32]| match op {
                NonlinearOp::Silu => silu_engine.apply(xs).0,
                NonlinearOp::Gelu => gelu_engine.apply(xs).0,
                _ => xs.iter().map(|&x| op.eval(x)).collect(),
            },
            move |data, cols| sm_engine.softmax_rows(data, cols).0,
        );
        let exact_ppl = model.proxy_perplexity(&ExactBackend, 2);
        let vlp_ppl = model.proxy_perplexity(&vlp, 2);
        assert!(vlp_ppl >= exact_ppl - 1e-3);
        // VLP approximation should not blow the proxy perplexity up by more
        // than ~2x on this small model.
        assert!(vlp_ppl < exact_ppl * 2.0 + 1.0, "exact {exact_ppl} vlp {vlp_ppl}");
    }

    #[test]
    fn sequences_are_deterministic() {
        let model = ReferenceModel::new(ReferenceConfig::small(5));
        assert_eq!(model.synthetic_sequence(3), model.synthetic_sequence(3));
        assert_ne!(model.synthetic_sequence(3), model.synthetic_sequence(4));
        assert!(model.synthetic_sequence(0).iter().all(|&t| t < model.config().vocab));
    }

    #[test]
    fn scaled_config_tracks_family_activation() {
        let llama = ReferenceConfig::scaled_from(ModelId::Llama2_7b, 1);
        assert!(llama.activation_is_silu);
        let whisper = ReferenceConfig::scaled_from(ModelId::WhisperTiny, 1);
        assert!(!whisper.activation_is_silu);
        assert!(whisper.layers <= 4);
    }

    #[test]
    #[should_panic(expected = "hidden_dim must be divisible by heads")]
    fn bad_head_count_rejected() {
        ReferenceModel::new(ReferenceConfig { heads: 5, ..ReferenceConfig::small(1) });
    }
}
