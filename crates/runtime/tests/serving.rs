//! End-to-end serving integration: 64 concurrent requests across two models
//! through the scheduler → executor → accelerator pipeline.

use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_numerics::exec::ExecutionContext;
use mugi_runtime::{
    synthetic_requests, Executor, ExecutorConfig, Placement, Scheduler, SchedulerConfig,
    SchedulingPolicy, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

const MODELS: [ModelId; 2] = [ModelId::Llama2_7b, ModelId::Llama2_70b];

fn run_with(policy: SchedulingPolicy, ctx: ExecutionContext) -> mugi_runtime::RuntimeReport {
    let requests = synthetic_requests(7, 64, &MODELS, WorkloadSpec::default());
    let mut engine = Executor::new(
        MugiAccelerator::with_context(256, ctx),
        Scheduler::new(SchedulerConfig { policy, ..SchedulerConfig::default() }),
    );
    for r in &requests {
        engine.submit(*r);
    }
    engine.run()
}

#[test]
fn serves_64_concurrent_requests_across_two_models() {
    let requests = synthetic_requests(7, 64, &MODELS, WorkloadSpec::default());
    let report = run_with(SchedulingPolicy::Fcfs, ExecutionContext::default());
    assert_eq!(report.requests.len(), 64, "every request must finish");
    for (stats, request) in report.requests.iter().zip(&requests) {
        assert_eq!(stats.output_tokens, request.output_tokens);
        assert_eq!(stats.prompt_tokens, request.prompt_tokens);
        assert!(stats.ttft_s > 0.0);
        assert!(stats.e2e_s >= stats.ttft_s);
        assert!(stats.energy_uj > 0.0);
        assert!(stats.micro_batches > 0);
    }
    assert_eq!(report.for_model(ModelId::Llama2_7b).len(), 32);
    assert_eq!(report.for_model(ModelId::Llama2_70b).len(), 32);
    assert!(report.throughput_tokens_per_s > 0.0);
    assert!(report.ttft.p50 > 0.0 && report.ttft.p99 >= report.ttft.p50);
    assert!(report.tpot.p50 > 0.0 && report.tpot.p99 >= report.tpot.p50);
    // Bucketed decode contexts keep the shared trace cache far smaller than
    // the number of executed micro-batches.
    assert!((report.trace_cache_entries as u64) < report.micro_batches);
    let total: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
    assert_eq!(report.total_output_tokens, total);
}

#[test]
fn both_policies_generate_the_same_tokens() {
    let fcfs = run_with(SchedulingPolicy::Fcfs, ExecutionContext::default());
    let spf = run_with(SchedulingPolicy::ShortestPrefillFirst, ExecutionContext::default());
    assert_eq!(fcfs.total_output_tokens, spf.total_output_tokens);
    assert_eq!(fcfs.requests.len(), spf.requests.len());
    assert!(spf.ttft.p50 > 0.0);
}

#[test]
fn sharded_mesh_serves_the_same_workload_much_faster() {
    let requests = synthetic_requests(7, 64, &MODELS, WorkloadSpec::default());
    let run = |placement: Placement| {
        let mut engine = Executor::with_placement(
            MugiAccelerator::new(256),
            Scheduler::new(SchedulerConfig::default()),
            ExecutorConfig::default(),
            placement,
        );
        for r in &requests {
            engine.submit(*r);
        }
        engine.run()
    };
    let single = run(Placement::single_node());
    let mesh = run(Placement::sharded(NocConfig::mesh_4x4()));
    // Same tokens, same finished requests, near-linear throughput scaling.
    assert_eq!(mesh.total_output_tokens, single.total_output_tokens);
    assert_eq!(mesh.requests.len(), single.requests.len());
    let speedup = mesh.throughput_tokens_per_s / single.throughput_tokens_per_s;
    assert!(speedup > 12.0 && speedup <= 16.0, "4x4 serving speedup {speedup}");
    // The NoC transfer model charges every request for inter-node movement.
    assert_eq!(single.noc_energy_uj, 0.0);
    assert!(mesh.noc_energy_uj > 0.0);
    assert!(mesh.requests.iter().all(|r| r.noc_energy_uj > 0.0));
    // Latency milestones stay ordered under overlapped execution.
    for r in &mesh.requests {
        assert!(r.ttft_s > 0.0 && r.e2e_s >= r.ttft_s);
    }
    // Every node of the gang was busy for the same cycles.
    assert_eq!(mesh.node_busy_cycles.len(), 16);
    assert!(mesh.node_busy_cycles.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn simulated_statistics_are_independent_of_the_execution_context() {
    // The execution context parallelizes the software kernels; the simulated
    // serving clock, latencies and energies must not change at all.
    let single = run_with(SchedulingPolicy::Fcfs, ExecutionContext::default());
    let parallel = run_with(SchedulingPolicy::Fcfs, ExecutionContext::with_threads(4));
    assert_eq!(single, parallel);
}
