//! Adaptive control-plane suite: bit-inertness of a disabled controller,
//! cross-engine determinism with the controller enabled, quiescent-handoff
//! safety under bounded KV, and online SLO calibration behaviour.
//!
//! The quiescence guarantee is pinned two ways: the scheduler's
//! `set_pool_role` asserts its pool is empty at every flip (so any
//! non-quiescent handoff aborts the run), and the stepwise test below
//! additionally checks the externally visible invariants — at most one
//! draining node, both roles always represented, tokens conserved across
//! every re-roll.

use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_runtime::{
    phased_requests, ControlConfig, EventEngine, Executor, ExecutorConfig, KvConfig, Placement,
    PoolRole, Request, RuntimeReport, Scheduler, SchedulerConfig, SloConfig, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

const MODEL: ModelId = ModelId::Llama2_7b;

/// Collapses a report to the bit patterns the identity tests compare: every
/// float via `to_bits`, so any perturbation — however small — fails.
fn fingerprint(report: &RuntimeReport) -> Vec<u64> {
    let energy_sum: f64 = report.requests.iter().map(|r| r.energy_uj).sum();
    let noc_sum: f64 = report.requests.iter().map(|r| r.noc_energy_uj).sum();
    let ttft_sum: f64 = report.requests.iter().map(|r| r.ttft_s).sum();
    vec![
        report.requests.len() as u64,
        report.makespan_s.to_bits(),
        report.throughput_tokens_per_s.to_bits(),
        report.ttft.p50.to_bits(),
        report.ttft.p95.to_bits(),
        report.ttft.p99.to_bits(),
        report.tpot.p50.to_bits(),
        report.tpot.p95.to_bits(),
        report.tpot.p99.to_bits(),
        energy_sum.to_bits(),
        noc_sum.to_bits(),
        ttft_sum.to_bits(),
        report.micro_batches,
        report.total_output_tokens,
        report.kv.peak_used_pages,
        report.kv.preemptions,
        report.kv.reprefill_tokens,
        report.kv.evicted_pages,
        report.kv.migrations,
        report.kv.migrated_pages,
        report.kv.transfer_bytes,
        report.kv.transfer_stall_cycles as u64,
    ]
}

/// A prefill-heavy opening followed by a wide decode tail: the demand shift
/// the role controller exists to chase.
fn shifting_mix(prefills: usize, decodes: usize) -> Vec<Request> {
    let prefill_heavy = WorkloadSpec {
        prompt_tokens: (768, 2048),
        output_tokens: (1, 4),
        arrival_spread_cycles: 10_000_000,
        ..WorkloadSpec::default()
    };
    let decode_heavy = WorkloadSpec {
        prompt_tokens: (32, 96),
        output_tokens: (96, 192),
        arrival_spread_cycles: 10_000_000,
        ..WorkloadSpec::default()
    };
    phased_requests(
        17,
        &[MODEL],
        &[(prefill_heavy, 0, prefills), (decode_heavy, 60_000_000, decodes)],
    )
}

/// The controller configuration the adaptive tests run under: every feature
/// on, with a cooldown short enough for this workload scale to re-roll.
fn adaptive() -> ControlConfig {
    ControlConfig {
        reassign_roles: true,
        load_aware_migration: true,
        calibrate_slo: true,
        min_flip_interval_cycles: 1_000_000,
        min_demand_tokens: 64,
        ..ControlConfig::default()
    }
}

fn run_executor(
    requests: &[Request],
    kv: KvConfig,
    control: ControlConfig,
    prefill_nodes: usize,
) -> (RuntimeReport, u64) {
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(128),
        Scheduler::with_kv(SchedulerConfig::default(), kv),
        ExecutorConfig { kv_bucket: kv.page_tokens, control, ..ExecutorConfig::default() },
        Placement::disaggregated(NocConfig::mesh_4x4(), prefill_nodes),
    );
    for r in requests {
        engine.submit(*r);
    }
    let report = engine.run();
    let rerolls = engine.role_reroll_count();
    (report, rerolls)
}

/// Controller knobs without any enabled feature must be bit-inert: tuning
/// cooldowns, dead-bands or calibration windows while every feature flag is
/// off cannot perturb a single output bit relative to the default config.
#[test]
fn disabled_controller_knobs_are_bit_inert() {
    let requests = shifting_mix(8, 24);
    let knobbed = ControlConfig {
        min_flip_interval_cycles: 1,
        min_demand_tokens: 1,
        calibration_warmup_tokens: 1,
        calibration_ewma_shift: 7,
        ..ControlConfig::default()
    };
    assert!(!knobbed.any_enabled());
    let (baseline, base_rerolls) =
        run_executor(&requests, KvConfig::unbounded(), ControlConfig::default(), 8);
    let (tuned, tuned_rerolls) = run_executor(&requests, KvConfig::unbounded(), knobbed, 8);
    assert_eq!(base_rerolls, 0);
    assert_eq!(tuned_rerolls, 0);
    assert_eq!(baseline.kv.role_rerolls, 0);
    assert_eq!(baseline.kv.calibration_samples, 0);
    assert_eq!(baseline.kv.calibrated_cycles_per_prefill_token, None);
    assert_eq!(fingerprint(&baseline), fingerprint(&tuned));
}

/// With the controller fully enabled, the per-step executor and the
/// discrete-event engine must still agree bit-for-bit: both observe batch
/// completions in the same order, so the controller's integer decisions —
/// drains, flips, calibration samples — replay identically.
#[test]
fn adaptive_engines_agree_bit_for_bit() {
    let requests = shifting_mix(12, 36);
    let (stepped, step_rerolls) = run_executor(&requests, KvConfig::unbounded(), adaptive(), 8);
    let kv = KvConfig::unbounded();
    let mut event = EventEngine::with_placement(
        MugiAccelerator::new(128),
        Scheduler::with_kv(SchedulerConfig::default(), kv),
        ExecutorConfig {
            kv_bucket: kv.page_tokens,
            control: adaptive(),
            ..ExecutorConfig::default()
        },
        Placement::disaggregated(NocConfig::mesh_4x4(), 8),
    );
    for r in &requests {
        event.submit(*r);
    }
    let evented = event.run();
    assert!(step_rerolls > 0, "this mix must exercise the controller");
    assert_eq!(step_rerolls, event.executor().role_reroll_count());
    assert_eq!(fingerprint(&stepped), fingerprint(&evented));
}

/// Stepwise safety under bounded KV: at most one draining node at a time,
/// both roles always represented (the desired-split clamp), roles only
/// change through a drain, and every token survives the re-rolls. The
/// scheduler's own `set_pool_role` assertion aborts the run if any flip
/// happens on a non-empty pool.
#[test]
fn bounded_rerolls_stay_quiescent_and_conserve_tokens() {
    let requests = shifting_mix(8, 24);
    let kv = KvConfig { node_pages: Some(48), ..KvConfig::default() };
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(128),
        Scheduler::with_kv(SchedulerConfig::default(), kv),
        ExecutorConfig {
            kv_bucket: kv.page_tokens,
            control: adaptive(),
            ..ExecutorConfig::default()
        },
        Placement::disaggregated(NocConfig::mesh_4x4(), 8),
    );
    for r in &requests {
        engine.submit(*r);
    }
    let mut last_roles = engine.node_roles().to_vec();
    let mut observed_flips = 0u64;
    while engine.step() {
        let roles = engine.node_roles();
        assert_eq!(roles.len(), last_roles.len());
        assert!(
            roles.iter().any(|r| matches!(r, PoolRole::Prefill))
                && roles.iter().any(|r| matches!(r, PoolRole::Decode)),
            "the desired-split clamp must keep both roles populated"
        );
        if let Some(d) = engine.draining_node() {
            assert!(d < roles.len());
        }
        observed_flips +=
            roles.iter().zip(last_roles.iter()).filter(|(now, before)| now != before).count()
                as u64;
        last_roles = roles.to_vec();
    }
    // The terminating step can still flip an already-quiescent node.
    observed_flips += engine
        .node_roles()
        .iter()
        .zip(last_roles.iter())
        .filter(|(now, before)| now != before)
        .count() as u64;
    let report = engine.report();
    let expected: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
    assert_eq!(report.total_output_tokens, expected, "re-rolls must conserve tokens");
    assert!(engine.role_reroll_count() > 0, "bounded pressure must still re-roll");
    assert_eq!(observed_flips, engine.role_reroll_count());
    assert_eq!(report.kv.role_rerolls, engine.role_reroll_count());
}

/// Online calibration on a streamed workload: the stale optimistic guess
/// admits everything; the calibrated gate measures the true per-batch rate,
/// publishes a corrected estimate orders of magnitude above the guess, and
/// sheds the arrivals whose projected TTFT cannot make the target.
#[test]
fn calibration_tightens_streamed_admission() {
    let spec = WorkloadSpec {
        prompt_tokens: (768, 2048),
        output_tokens: (4, 8),
        arrival_spread_cycles: 300_000_000_000,
        ..WorkloadSpec::default()
    };
    let mut requests = phased_requests(23, &[MODEL], &[(spec, 0, 24)]);
    requests.sort_by_key(|r| r.arrival_cycle);
    let guess = 500;
    let mut results = Vec::new();
    for calibrate in [false, true] {
        let mut engine = EventEngine::with_placement(
            MugiAccelerator::new(128),
            Scheduler::with_kv(
                SchedulerConfig::default(),
                KvConfig {
                    slo: Some(SloConfig {
                        target_ttft_cycles: 600_000_000_000,
                        cycles_per_prefill_token: guess,
                    }),
                    ..KvConfig::default()
                },
            ),
            ExecutorConfig {
                control: ControlConfig { calibrate_slo: calibrate, ..ControlConfig::default() },
                ..ExecutorConfig::default()
            },
            Placement::disaggregated(NocConfig::mesh_4x4(), 8),
        );
        results.push(engine.run_stream(requests.iter().copied()));
    }
    let (stale, calibrated) = (&results[0], &results[1]);
    assert_eq!(stale.kv.rejected_requests, 0, "the stale guess admits the whole stream");
    assert_eq!(stale.kv.calibration_samples, 0);
    assert_eq!(stale.kv.calibrated_cycles_per_prefill_token, None);
    assert!(calibrated.kv.rejected_requests > 0, "the calibrated gate must shed load");
    assert!(calibrated.kv.calibration_samples > 0);
    let rate = calibrated
        .kv
        .calibrated_cycles_per_prefill_token
        .expect("a warmed calibrator publishes its rate");
    assert!(rate > guess, "calibration must correct an optimistic guess upward: {rate}");
    assert!(
        calibrated.requests.len() < stale.requests.len(),
        "shedding must show up as fewer served requests"
    );
    assert_eq!(
        calibrated.requests.len() as u64 + calibrated.kv.rejected_requests,
        stale.requests.len() as u64,
        "every request is either served or counted rejected"
    );
}
