//! Hasher-seed independence of scheduler batch formation.
//!
//! `std::collections::HashMap`/`HashSet` draw a fresh `RandomState` per
//! instance, so two maps built in the same process already iterate in
//! different orders — the per-process seed does not need to change for
//! order sensitivity to show. The scheduler therefore keeps its session
//! bookkeeping in ordered collections (enforced by `mugi-lint`'s
//! `unordered-iteration` rule), and this test pins the observable
//! consequence: two independently constructed schedulers fed the identical
//! workload must form byte-for-byte identical micro-batch sequences.

use mugi_runtime::{synthetic_requests, Scheduler, SchedulerConfig, WorkloadSpec};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::Phase;

const MODELS: [ModelId; 2] = [ModelId::Llama2_7b, ModelId::Llama2_70b];

/// Drives `sched` to completion with a fixed completion latency, recording
/// every formed micro-batch as `(cycle, model, [(id, phase, tokens)])`.
fn batch_trace(mut sched: Scheduler) -> Vec<(u64, ModelId, Vec<(u64, Phase, usize)>)> {
    for r in synthetic_requests(11, 96, &MODELS, WorkloadSpec::default()) {
        sched.submit(r);
    }
    let mut trace = Vec::new();
    let mut now = 0;
    while !sched.all_finished() {
        if let Some(batch) = sched.next_micro_batch(now) {
            trace.push((
                now,
                batch.model,
                batch.items.iter().map(|i| (i.id.0, i.phase, i.tokens)).collect(),
            ));
            now += 100;
            sched.complete(&batch, now);
        } else {
            now += 100;
        }
        assert!(now < 10_000_000, "scheduler failed to drain the workload");
    }
    trace
}

#[test]
fn batch_formation_is_identical_across_scheduler_instances() {
    // Each instance would own distinct `RandomState` seeds if any hash
    // collection influenced formation order; ordered collections make the
    // traces structurally equal instead of merely statistically similar.
    let first = batch_trace(Scheduler::new(SchedulerConfig::default()));
    let second = batch_trace(Scheduler::new(SchedulerConfig::default()));
    assert!(!first.is_empty(), "the workload must form at least one batch");
    assert_eq!(first, second, "batch formation depends on hasher state");
}
