//! Property tests for the continuous-batching scheduler, the multi-node
//! placement layer, the paged KV cache and the discrete-event engine:
//! liveness (no request starves, even under preemption), the micro-batch
//! caps (token budget, max batch), exact output-token accounting, the
//! placement invariants (token conservation, per-node clocks bounded by the
//! makespan, 1×1 placement bit-identical to the single-node executor), the
//! paging invariants (pages never double-mapped, `free + Σ mapped ==
//! capacity` after any op sequence, an unbounded pool bit-identical to a
//! never-full bounded one), and the event-engine invariants (full-report
//! bit-identity to the per-step oracle across every placement policy,
//! nondecreasing event-queue pops, session-arena slots never aliased while
//! live).

use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_runtime::kv::oracle as kv_oracle;
use mugi_runtime::{
    pages_for, EventEngine, EventQueue, Executor, ExecutorConfig, KvConfig, KvPool, PageId,
    PageTable, Placement, Request, Scheduler, SchedulerConfig, SchedulingPolicy, SessionArena,
    KV_BITS,
};
use mugi_runtime::{Session, SessionState};
use mugi_workloads::models::ModelId;
use proptest::prelude::*;

prop_compose! {
    fn request_strategy()(
        model_idx in 0usize..3,
        prompt in 1usize..300,
        output in 1usize..24,
        arrival in 0u64..500,
    ) -> Request {
        let models = [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b];
        Request::new(models[model_idx], prompt, output).arriving_at(arrival)
    }
}

// Small workloads for the end-to-end placement properties, which run a full
// executor simulation per case.
prop_compose! {
    fn small_request_strategy()(
        model_idx in 0usize..2,
        prompt in 1usize..120,
        output in 1usize..8,
        arrival in 0u64..200,
    ) -> Request {
        let models = [ModelId::Llama2_7b, ModelId::Llama2_13b];
        Request::new(models[model_idx], prompt, output).arriving_at(arrival)
    }
}

// One paging operation against a shared pool: table index plus a token
// target (0 = release every page of that table).
prop_compose! {
    fn kv_op_strategy()(
        table in 0usize..6,
        tokens in 0usize..600,
    ) -> (usize, usize) {
        (table, tokens)
    }
}

// One two-pool paging operation: table index, action (0 = grow, 1 = release
// everything, 2 = migrate to the other pool) and a token target.
prop_compose! {
    fn kv_migration_op_strategy()(
        table in 0usize..4,
        action in 0usize..3,
        tokens in 1usize..400,
    ) -> (usize, usize, usize) {
        (table, action, tokens)
    }
}

prop_compose! {
    fn config_strategy()(
        max_batch in 1usize..17,
        token_budget in 1usize..512,
        prefill_chunk in 1usize..128,
        spf in any::<bool>(),
    ) -> SchedulerConfig {
        SchedulerConfig {
            max_batch,
            token_budget,
            prefill_chunk,
            policy: if spf {
                SchedulingPolicy::ShortestPrefillFirst
            } else {
                SchedulingPolicy::Fcfs
            },
            ..SchedulerConfig::default()
        }
    }
}

// One arena operation: push up to four sessions, then retire up to four.
prop_compose! {
    fn arena_op_strategy()(
        pushes in 0usize..5,
        retires in 0usize..5,
    ) -> (usize, usize) {
        (pushes, retires)
    }
}

// One placement drawn from every policy family, over a 2×2 mesh.
prop_compose! {
    fn placement_strategy()(
        kind in 0usize..4,
        prefill_nodes in 1usize..4,
    ) -> Placement {
        let noc = NocConfig { rows: 2, cols: 2 };
        match kind {
            0 => Placement::single_node(),
            1 => Placement::data_parallel(noc),
            2 => Placement::sharded(noc),
            _ => Placement::disaggregated(noc, prefill_nodes),
        }
    }
}

proptest! {
    #[test]
    fn scheduler_drains_every_workload_within_its_caps(
        requests in prop::collection::vec(request_strategy(), 1..40),
        config in config_strategy(),
    ) {
        let mut sched = Scheduler::new(config);
        for r in &requests {
            sched.submit(*r);
        }
        // Every emitted micro-batch advances at least one token of total
        // work, and the clock only jumps when a future arrival is the sole
        // remaining work, so the loop must drain within this bound — a
        // starving request would blow it.
        let total_work: usize =
            requests.iter().map(|r| r.prompt_tokens + r.output_tokens).sum();
        let cap = total_work + requests.len() + 10;
        let mut now = 0u64;
        let mut steps = 0usize;
        while !sched.all_finished() {
            steps += 1;
            prop_assert!(steps <= cap, "scheduler made no progress (starvation)");
            if let Some(batch) = sched.next_micro_batch(now) {
                // The hard caps hold for every micro-batch.
                prop_assert!(batch.items.len() <= config.max_batch);
                prop_assert!(batch.total_tokens() <= config.token_budget);
                for item in &batch.items {
                    prop_assert!(item.tokens >= 1);
                    prop_assert!(item.tokens <= config.prefill_chunk.max(1));
                    prop_assert_eq!(
                        sched.session(item.id).request.model, batch.model,
                        "micro-batches are per-model"
                    );
                }
                now += 1;
                sched.complete(&batch, now);
            } else {
                let next = sched.next_arrival_after(now);
                prop_assert!(next.is_some(), "unfinished work but nothing runnable");
                now = next.unwrap();
            }
        }
        // Exact accounting: every request generated exactly what it asked
        // for, prefilled its whole prompt, and its milestones are ordered.
        for s in sched.sessions() {
            prop_assert!(s.is_finished());
            prop_assert_eq!(s.generated_tokens, s.request.output_tokens);
            prop_assert_eq!(s.prefilled_tokens, s.request.prompt_tokens);
            let first = s.first_token_cycle.unwrap();
            let finish = s.finish_cycle.unwrap();
            prop_assert!(first >= s.request.arrival_cycle);
            prop_assert!(finish >= first);
        }
    }

    #[test]
    fn multi_node_placement_conserves_tokens_and_respects_the_makespan(
        requests in prop::collection::vec(small_request_strategy(), 1..10),
        sharded in any::<bool>(),
        rows in 1usize..3,
        cols in 1usize..3,
    ) {
        let noc = NocConfig { rows, cols };
        let placement =
            if sharded { Placement::sharded(noc) } else { Placement::data_parallel(noc) };
        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::new(SchedulerConfig::default()),
            ExecutorConfig::default(),
            placement,
        );
        for r in &requests {
            ex.submit(*r);
        }
        let report = ex.run();
        // Sharded / data-parallel execution conserves the workload exactly.
        let expected: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
        prop_assert_eq!(report.total_output_tokens, expected);
        prop_assert_eq!(report.requests.len(), requests.len());
        for s in ex.scheduler().sessions() {
            prop_assert_eq!(s.generated_tokens, s.request.output_tokens);
            prop_assert_eq!(s.prefilled_tokens, s.request.prompt_tokens);
        }
        // No node's clock or busy time ever exceeds the makespan.
        let makespan = ex.clock_cycles();
        prop_assert_eq!(report.node_busy_cycles.len(), noc.nodes());
        for &clock in ex.node_clocks() {
            prop_assert!(clock <= makespan, "node clock {clock} > makespan {makespan}");
        }
        for &busy in &report.node_busy_cycles {
            prop_assert!(busy <= makespan, "node busy {busy} > makespan {makespan}");
        }
        // NoC energy flows exactly when the mesh is real.
        if noc.nodes() == 1 {
            prop_assert_eq!(report.noc_energy_uj, 0.0);
        } else {
            prop_assert!(report.noc_energy_uj > 0.0);
        }
    }

    #[test]
    fn single_node_placements_are_bit_identical(
        requests in prop::collection::vec(small_request_strategy(), 1..8),
        spf in any::<bool>(),
    ) {
        let policy =
            if spf { SchedulingPolicy::ShortestPrefillFirst } else { SchedulingPolicy::Fcfs };
        let config = SchedulerConfig { policy, ..SchedulerConfig::default() };
        let run = |placement: Option<Placement>| {
            let accel = MugiAccelerator::new(64);
            let sched = Scheduler::new(config);
            let mut ex = match placement {
                None => Executor::new(accel, sched),
                Some(p) => {
                    Executor::with_placement(accel, sched, ExecutorConfig::default(), p)
                }
            };
            for r in &requests {
                ex.submit(*r);
            }
            ex.run()
        };
        // The plain single-node executor and both 1×1 placements must agree
        // bit for bit, down to every per-request float.
        let base = run(None);
        let one_by_one = run(Some(Placement::single_node()));
        let sharded = run(Some(Placement::sharded(NocConfig::single())));
        prop_assert_eq!(&base, &one_by_one);
        prop_assert_eq!(&base, &sharded);
    }

    #[test]
    fn kv_pool_never_double_maps_and_conserves_pages(
        capacity in 1usize..48,
        ops in prop::collection::vec(kv_op_strategy(), 1..80),
    ) {
        // Random grow/release sequences over six tables sharing one pool,
        // driven in lockstep against the retained pre-extent free-list
        // allocator (`kv::oracle`): every operation must have the same
        // outcome on both, every observable count must agree, and on the
        // extent side the free bitmap plus all mapped pages must equal the
        // capacity exactly with no page ever mapped by two tables at once.
        let page_tokens = 16;
        let mut pool = KvPool::bounded(capacity);
        let mut reference = kv_oracle::Pool::bounded(capacity);
        let mut tables: Vec<PageTable> = (0..6).map(|_| PageTable::new()).collect();
        let mut ref_tables: Vec<kv_oracle::Table> =
            (0..6).map(|_| kv_oracle::Table::new()).collect();
        for (t, tokens) in ops {
            if tokens == 0 {
                let released = tables[t].release_all(&mut pool);
                let ref_released = ref_tables[t].release_all(&mut reference);
                prop_assert_eq!(released, ref_released, "release count diverged");
            } else {
                let target = pages_for(tokens, page_tokens);
                let grew = tables[t].grow(0, &mut pool, target);
                let ref_grew = ref_tables[t].grow(0, &mut reference, target);
                prop_assert_eq!(grew, ref_grew, "grow outcome diverged from the oracle");
                prop_assert_eq!(grew, tables[t].mapped_pages() >= target);
            }
            // Every count the scheduler can observe agrees with the oracle.
            prop_assert_eq!(pool.free_pages(), reference.free_pages());
            prop_assert_eq!(pool.used_pages(), reference.used_pages());
            prop_assert_eq!(pool.peak_used_pages(), reference.peak_used_pages());
            for (a, b) in tables.iter().zip(&ref_tables) {
                prop_assert_eq!(a.mapped_pages(), b.mapped_pages(), "table size diverged");
                prop_assert_eq!(a.home(), b.home(), "table home diverged");
            }
            let mapped: usize = tables.iter().map(PageTable::mapped_pages).sum();
            prop_assert_eq!(pool.free_pages() + mapped, capacity, "page leak or double-count");
            let mut all: Vec<PageId> = tables.iter().flat_map(PageTable::page_ids).collect();
            let total = all.len();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), total, "a page is mapped by two tables");
            prop_assert!(all.iter().all(|p| (p.0 as usize) < capacity), "page id out of range");
            for table in &tables {
                let from_extents: usize = table.extents().iter().map(|e| e.len as usize).sum();
                prop_assert_eq!(
                    from_extents,
                    table.mapped_pages(),
                    "extent list disagrees with the cached page count"
                );
                prop_assert!(
                    table.extents().iter().all(|e| e.len > 0),
                    "a mapped extent may never be empty"
                );
            }
        }
    }

    #[test]
    fn kv_migration_matches_the_pre_extent_oracle(
        cap_a in 1usize..24,
        cap_b in 1usize..24,
        ops in prop::collection::vec(kv_migration_op_strategy(), 1..60),
    ) {
        // Grow/release/migrate sequences over two pools, extent allocator
        // and pre-extent oracle in lockstep: migration outcomes (including
        // refusals when the target lacks room), page counts and homes must
        // never diverge, and pages must be conserved across both pools.
        let page_tokens = 16;
        let caps = [cap_a, cap_b];
        let mut pools = [KvPool::bounded(cap_a), KvPool::bounded(cap_b)];
        let mut refs = [kv_oracle::Pool::bounded(cap_a), kv_oracle::Pool::bounded(cap_b)];
        let mut tables: Vec<PageTable> = (0..4).map(|_| PageTable::new()).collect();
        let mut ref_tables: Vec<kv_oracle::Table> =
            (0..4).map(|_| kv_oracle::Table::new()).collect();
        for (t, action, tokens) in ops {
            let home = tables[t].home();
            prop_assert_eq!(home, ref_tables[t].home());
            match action {
                // Grow on the current home (or pool 0 while homeless).
                0 => {
                    let pool = home.unwrap_or(0);
                    let target = pages_for(tokens, page_tokens);
                    let grew = tables[t].grow(pool, &mut pools[pool], target);
                    let ref_grew = ref_tables[t].grow(pool, &mut refs[pool], target);
                    prop_assert_eq!(grew, ref_grew, "grow outcome diverged");
                }
                // Release everything.
                1 => {
                    if let Some(pool) = home {
                        let a = tables[t].release_all(&mut pools[pool]);
                        let b = ref_tables[t].release_all(&mut refs[pool]);
                        prop_assert_eq!(a, b, "release count diverged");
                    }
                }
                // Migrate to the other pool (only legal with pages mapped).
                _ => {
                    if let Some(from) = home {
                        let (a, b) = if from == 0 {
                            let [p0, p1] = &mut pools;
                            let [r0, r1] = &mut refs;
                            (tables[t].migrate(p0, 1, p1), ref_tables[t].migrate(r0, 1, r1))
                        } else {
                            let [p0, p1] = &mut pools;
                            let [r0, r1] = &mut refs;
                            (tables[t].migrate(p1, 0, p0), ref_tables[t].migrate(r1, 0, r0))
                        };
                        prop_assert_eq!(a, b, "migration outcome diverged");
                    }
                }
            }
            for pool in 0..2 {
                prop_assert_eq!(pools[pool].free_pages(), refs[pool].free_pages());
                prop_assert_eq!(pools[pool].peak_used_pages(), refs[pool].peak_used_pages());
                let mapped: usize = tables
                    .iter()
                    .filter(|tb| tb.home() == Some(pool))
                    .map(PageTable::mapped_pages)
                    .sum();
                prop_assert_eq!(
                    pools[pool].free_pages() + mapped,
                    caps[pool],
                    "page leak or double-count in pool {}",
                    pool
                );
            }
            for (a, b) in tables.iter().zip(&ref_tables) {
                prop_assert_eq!(a.mapped_pages(), b.mapped_pages());
                prop_assert_eq!(a.home(), b.home());
            }
        }
    }

    #[test]
    fn bounded_kv_pools_preempt_but_every_request_still_finishes(
        requests in prop::collection::vec(small_request_strategy(), 1..10),
        headroom in 0usize..3,
        sharded in any::<bool>(),
        rows in 1usize..3,
        cols in 1usize..3,
    ) {
        // Liveness under maximum KV pressure: the per-node pool is sized to
        // the single largest request (plus 0–2 pages of headroom), so the
        // workload constantly preempts — yet every request must finish with
        // exact token accounting and every page must come home.
        let page_tokens = 32;
        let max_need = requests
            .iter()
            .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
            .max()
            .unwrap();
        let kv = KvConfig::bounded(page_tokens, max_need + headroom);
        let noc = NocConfig { rows, cols };
        let placement =
            if sharded { Placement::sharded(noc) } else { Placement::data_parallel(noc) };
        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), kv),
            ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
            placement,
        );
        for r in &requests {
            ex.submit(*r);
        }
        let report = ex.run();
        prop_assert_eq!(report.requests.len(), requests.len());
        let expected: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
        prop_assert_eq!(report.total_output_tokens, expected);
        for s in ex.scheduler().sessions() {
            prop_assert!(s.is_finished(), "a preempted session starved");
            prop_assert_eq!(s.generated_tokens, s.request.output_tokens);
            prop_assert_eq!(s.page_table.mapped_pages(), 0, "finished sessions hold pages");
        }
        prop_assert_eq!(ex.scheduler().kv_used_pages(), 0, "pages leaked");
        let capacity = report.kv.capacity_pages.unwrap();
        prop_assert!(report.kv.peak_used_pages <= capacity);
        // Stall accounting is exact: a fixed fault cost per evicted page.
        prop_assert_eq!(
            report.kv.fault_stall_cycles,
            report.kv.evicted_pages * ExecutorConfig::default().fault_stall_cycles
        );
        // Preemption implies recompute debt and vice versa.
        prop_assert_eq!(report.kv.preemptions > 0, report.kv.reprefill_tokens > 0);
    }

    #[test]
    fn prefill_backlog_ledger_matches_the_scan_it_replaced(
        requests in prop::collection::vec(small_request_strategy(), 1..10),
        headroom in 0usize..3,
    ) {
        // The incremental pending-prefill ledger must agree with the
        // live-session scan it replaced at *every* step and *every* arrival
        // cutoff — including mid-run, with evictions re-crediting recompute
        // debt and chunked prefills debiting it, which is exactly where an
        // incremental counter would drift if any mutation site were missed.
        let page_tokens = 32;
        let max_need = requests
            .iter()
            .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
            .max()
            .unwrap();
        let kv = KvConfig::bounded(page_tokens, max_need + headroom);
        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), kv),
            ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
            Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
        );
        for r in &requests {
            ex.submit(*r);
        }
        let mut probes: Vec<u64> =
            requests.iter().map(|r| r.arrival_cycle).collect();
        probes.extend([0, 1, 250, u64::MAX]);
        loop {
            for &probe in &probes {
                let scanned: u64 = ex
                    .scheduler()
                    .sessions()
                    .iter()
                    .filter(|s| !s.is_finished() && s.request.arrival_cycle <= probe)
                    .map(|s| s.remaining_prefill() as u64)
                    .sum();
                prop_assert_eq!(ex.scheduler().prefill_backlog_at(probe), scanned);
            }
            prop_assert_eq!(
                ex.scheduler().prefill_backlog_at(u64::MAX),
                ex.scheduler().pending_prefill_total()
            );
            if !ex.step() {
                break;
            }
        }
        prop_assert_eq!(ex.scheduler().pending_prefill_total(), 0, "drained runs owe nothing");
    }

    #[test]
    fn unbounded_pool_is_bit_identical_to_a_never_full_bounded_one(
        requests in prop::collection::vec(small_request_strategy(), 1..8),
        spf in any::<bool>(),
    ) {
        // The regression oracle for the whole paging layer: with capacity
        // that never binds, every per-request statistic (TTFT, TPOT, energy,
        // micro-batch counts) and every aggregate must match the unbounded
        // (pre-paging) executor bit for bit — the bookkeeping may not
        // perturb scheduling at all.
        let policy =
            if spf { SchedulingPolicy::ShortestPrefillFirst } else { SchedulingPolicy::Fcfs };
        let config = SchedulerConfig { policy, ..SchedulerConfig::default() };
        let run = |kv: KvConfig| {
            let mut ex = Executor::new(MugiAccelerator::new(64), Scheduler::with_kv(config, kv));
            for r in &requests {
                ex.submit(*r);
            }
            ex.run()
        };
        let unbounded = run(KvConfig::unbounded());
        let bounded = run(KvConfig::bounded(128, 1 << 20));
        prop_assert_eq!(bounded.kv.preemptions, 0);
        prop_assert_eq!(bounded.kv.fault_stall_cycles, 0);
        prop_assert!(bounded.kv.peak_used_pages > 0, "the bounded run did page its KV");
        // Identical modulo the KV bookkeeping block itself.
        let mut bounded_sans_kv = bounded.clone();
        bounded_sans_kv.kv = unbounded.kv;
        prop_assert_eq!(&unbounded, &bounded_sans_kv);
    }

    #[test]
    fn disaggregated_pools_conserve_tokens_across_handoffs(
        requests in prop::collection::vec(small_request_strategy(), 1..10),
        prefill_nodes in 1usize..4,
        swap in any::<bool>(),
        bounded in any::<bool>(),
        headroom in 0usize..3,
    ) {
        // Token conservation and liveness across prefill→decode pool
        // handoffs: whatever the split of a 2×2 mesh, the preemption mode
        // and the pool pressure, every request finishes with exact token
        // accounting, every page comes home and no migration is stranded.
        let page_tokens = 32;
        let noc = NocConfig { rows: 2, cols: 2 };
        let kv = if bounded {
            let max_need = requests
                .iter()
                .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
                .max()
                .unwrap();
            let kv = KvConfig::bounded(page_tokens, max_need + headroom);
            if swap { kv.with_swap_preemption() } else { kv }
        } else {
            KvConfig { page_tokens, ..KvConfig::unbounded() }
        };
        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), kv),
            ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
            Placement::disaggregated(noc, prefill_nodes),
        );
        for r in &requests {
            ex.submit(*r);
        }
        let report = ex.run();
        prop_assert_eq!(report.requests.len(), requests.len());
        let expected: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
        prop_assert_eq!(report.total_output_tokens, expected);
        for s in ex.scheduler().sessions() {
            prop_assert!(s.is_finished(), "a session starved across the handoff");
            prop_assert_eq!(s.generated_tokens, s.request.output_tokens);
            prop_assert_eq!(s.page_table.mapped_pages(), 0, "finished sessions hold pages");
        }
        prop_assert_eq!(ex.scheduler().kv_used_pages(), 0, "pages leaked");
        prop_assert_eq!(ex.pending_migration_count(), 0, "a migration was stranded");
        // Transfers flow exactly when KV moves; swaps never appear without
        // the swap mode, and swap-outs and recompute evictions are the only
        // extra migration sources.
        prop_assert_eq!(report.kv.migrations > 0, report.kv.transfer_bytes > 0);
        if !swap || !bounded {
            prop_assert_eq!(report.kv.swap_outs, 0);
        }
        if report.kv.preemptions == 0 && report.kv.swap_outs == 0 {
            // Every multi-token session migrates exactly once: at its one
            // and only prefill completion. Single-token sessions finish at
            // prefill completion and never migrate.
            let multi = requests.iter().filter(|r| r.output_tokens >= 2).count() as u64;
            prop_assert_eq!(report.kv.migrations, multi);
        }
    }

    #[test]
    fn unbounded_disaggregation_migrates_once_per_prefill_completion(
        requests in prop::collection::vec(small_request_strategy(), 1..10),
        prefill_nodes in 1usize..4,
    ) {
        // With an unbounded pool nothing is ever preempted, so the
        // migrated-page count is exactly the page equivalent of each
        // multi-token session's prompt-plus-first-token KV at handoff time.
        let noc = NocConfig { rows: 2, cols: 2 };
        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::new(SchedulerConfig::default()),
            ExecutorConfig::default(),
            Placement::disaggregated(noc, prefill_nodes),
        );
        for r in &requests {
            ex.submit(*r);
        }
        let report = ex.run();
        let page_tokens = ex.scheduler().kv_config().page_tokens;
        let multi: Vec<&Request> =
            requests.iter().filter(|r| r.output_tokens >= 2).collect();
        prop_assert_eq!(report.kv.migrations, multi.len() as u64);
        let expected_pages: u64 =
            multi.iter().map(|r| pages_for(r.prompt_tokens + 1, page_tokens) as u64).sum();
        prop_assert_eq!(report.kv.migrated_pages, expected_pages);
        let expected_bytes: u64 = multi
            .iter()
            .map(|r| r.model.config().kv_cache_bytes(r.prompt_tokens + 1, KV_BITS))
            .sum();
        prop_assert_eq!(report.kv.transfer_bytes, expected_bytes);
        for s in ex.scheduler().sessions() {
            prop_assert_eq!(
                u64::from(s.migrations),
                u64::from(s.request.output_tokens >= 2)
            );
        }
    }

    #[test]
    fn swap_mode_is_inert_on_colocated_placements(
        requests in prop::collection::vec(small_request_strategy(), 1..8),
        headroom in 0usize..2,
        sharded in any::<bool>(),
    ) {
        // Swap-style preemption needs a prefill pool to page into; colocated
        // placements have none, so the mode must fall back to recompute and
        // reproduce the recompute run bit for bit even under heavy
        // preemption pressure.
        let page_tokens = 32;
        let max_need = requests
            .iter()
            .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
            .max()
            .unwrap();
        let noc = NocConfig { rows: 2, cols: 2 };
        let placement =
            if sharded { Placement::sharded(noc) } else { Placement::data_parallel(noc) };
        let run = |kv: KvConfig| {
            let mut ex = Executor::with_placement(
                MugiAccelerator::new(64),
                Scheduler::with_kv(SchedulerConfig::default(), kv),
                ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
                placement,
            );
            for r in &requests {
                ex.submit(*r);
            }
            ex.run()
        };
        let kv = KvConfig::bounded(page_tokens, max_need + headroom);
        let recompute = run(kv);
        let swap = run(kv.with_swap_preemption());
        prop_assert_eq!(swap.kv.swap_outs, 0, "no prefill pool exists to swap into");
        prop_assert_eq!(&recompute, &swap);
    }

    #[test]
    fn decode_slots_never_outnumber_in_flight_sessions(
        requests in prop::collection::vec(request_strategy(), 1..20),
        config in config_strategy(),
    ) {
        let mut sched = Scheduler::new(config);
        for r in &requests {
            sched.submit(*r);
        }
        let mut now = 0u64;
        for _ in 0..2000 {
            if sched.all_finished() {
                break;
            }
            match sched.next_micro_batch(now) {
                Some(batch) => {
                    prop_assert!(batch.decode_slots() <= requests.len());
                    // A session appears at most once per micro-batch.
                    let mut ids: Vec<_> = batch.items.iter().map(|i| i.id).collect();
                    ids.sort();
                    ids.dedup();
                    prop_assert_eq!(ids.len(), batch.items.len());
                    now += 1;
                    sched.complete(&batch, now);
                }
                None => match sched.next_arrival_after(now) {
                    Some(next) => now = next,
                    None => break,
                },
            }
        }
    }

    #[test]
    fn event_engine_is_bit_identical_to_the_per_step_oracle(
        requests in prop::collection::vec(small_request_strategy(), 1..10),
        placement in placement_strategy(),
        bounded in any::<bool>(),
        swap in any::<bool>(),
        headroom in 0usize..3,
    ) {
        // The tentpole property: on any workload, any placement policy and
        // any KV regime — unbounded, bounded with recompute preemption,
        // bounded with swap preemption — the event engine's report equals
        // the per-step executor's report exactly, every float included. A
        // completion event addressing a retired session would panic the
        // run, so this also proves no event ever targets one.
        let page_tokens = 32;
        let kv = if bounded {
            let max_need = requests
                .iter()
                .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
                .max()
                .unwrap();
            let kv = KvConfig::bounded(page_tokens, max_need + headroom);
            if swap { kv.with_swap_preemption() } else { kv }
        } else {
            KvConfig::unbounded()
        };
        let exec = ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() };

        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), kv),
            exec,
            placement,
        );
        for r in &requests {
            ex.submit(*r);
        }
        let oracle = ex.run();

        let mut ev = EventEngine::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), kv),
            exec,
            placement,
        );
        for r in &requests {
            ev.submit(*r);
        }
        let event = ev.run();

        prop_assert_eq!(&oracle, &event, "event engine diverged from the oracle");
        // Exactly one completion event per dispatched micro-batch, all
        // consumed, none left behind.
        prop_assert_eq!(ev.queue().pop_count(), event.micro_batches);
        prop_assert!(ev.queue().is_empty());
        prop_assert_eq!(ev.queue().arrival_time_regressions(), 0);
    }

    #[test]
    fn lazily_streamed_sorted_workloads_match_presubmitted_runs(
        mut requests in prop::collection::vec(small_request_strategy(), 1..10),
        placement in placement_strategy(),
    ) {
        // Streaming equivalence on any placement: submitting each request
        // at its arrival event must reproduce the pre-submitted run bit for
        // bit, provided arrivals are nondecreasing (the stable sort keeps
        // same-cycle requests in generation order, preserving ids).
        requests.sort_by_key(|r| r.arrival_cycle);
        let build = || {
            EventEngine::with_placement(
                MugiAccelerator::new(64),
                Scheduler::new(SchedulerConfig::default()),
                ExecutorConfig::default(),
                placement,
            )
        };
        let mut pre = build();
        for r in &requests {
            pre.submit(*r);
        }
        let presubmitted = pre.run();
        let mut streaming = build();
        let streamed = streaming.run_stream(requests.iter().copied());
        prop_assert_eq!(&presubmitted, &streamed);
        prop_assert_eq!(streaming.queue().arrival_time_regressions(), 0);
        prop_assert_eq!(
            streaming.queue().pop_count(),
            requests.len() as u64 + streamed.micro_batches
        );
    }

    #[test]
    fn event_queue_pops_every_completion_in_nondecreasing_order(
        times in prop::collection::vec(0u64..10_000, 1..64),
    ) {
        // The queue invariant in isolation: any multiset of completion
        // times pops back sorted, ties in push (seq) order, with exact
        // observability counters.
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push_completion(t, i as u64);
        }
        prop_assert_eq!(q.len(), times.len());
        prop_assert_eq!(q.peak_len(), times.len());
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, e.kind));
        }
        for pair in popped.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "pops went back in time");
            if pair[0].0 == pair[1].0 {
                // Equal times pop in push order; flight == push index here.
                let flight = |k| match k {
                    mugi_runtime::EventKind::Completion { flight } => flight,
                    other => panic!("unexpected event kind {other:?}"),
                };
                prop_assert!(flight(pair[0].1) < flight(pair[1].1), "tie broke out of order");
            }
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let popped_times: Vec<u64> = popped.iter().map(|p| p.0).collect();
        prop_assert_eq!(popped_times, sorted, "an event was lost or invented");
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.pop_count(), times.len() as u64);
        prop_assert_eq!(q.completion_time_regressions(), 0);
    }

    #[test]
    fn session_arena_slots_are_never_aliased_while_live(
        ops in prop::collection::vec(arena_op_strategy(), 1..60),
    ) {
        // Random push/retire interleavings: live ids stay dense and
        // ascending (no slot ever aliases another session), the live window
        // indexes correctly through compactions, and the peak-live
        // high-water mark matches a reference model.
        let mut arena = SessionArena::new();
        let mut next_id = 0u64;
        let mut model_peak = 0usize;
        for (pushes, retires) in ops {
            for _ in 0..pushes {
                let req = Request::new(ModelId::Llama2_7b, 1, 1);
                arena.push(Session::new(mugi_runtime::RequestId(next_id), req));
                next_id += 1;
            }
            model_peak = model_peak.max(arena.len());
            let n = retires.min(arena.len());
            for i in 0..n {
                arena[i].state = SessionState::Finished;
            }
            arena.retire_prefix(n);
            arena.assert_invariants();
            prop_assert_eq!(
                arena.retired_count() + arena.len(),
                next_id as usize,
                "sessions were lost or duplicated"
            );
            for (i, s) in arena.live().iter().enumerate() {
                prop_assert_eq!(s.id, arena[i].id, "index and live window disagree");
                prop_assert_eq!(s.id.0 as usize, arena.retired_count() + i);
            }
        }
        prop_assert_eq!(arena.peak_live(), model_peak);
    }
}

proptest! {
    /// The SLO calibrator is conservative by construction: whenever it
    /// publishes a rate, that rate is at least the cumulative measured mean
    /// (rounded up) — so calibrated admission never accepts a request the
    /// true measured mean rate would have rejected — and at least 1. Before
    /// warmup it publishes nothing.
    #[test]
    fn calibrator_rate_never_undercuts_the_measured_mean(
        sample_tokens in prop::collection::vec(1u64..5_000, 1..64),
        sample_cycles in prop::collection::vec(1u64..50_000_000_000, 1..64),
        warmup in 1u64..4_096,
        shift in 0u32..8,
    ) {
        let mut cal = mugi_runtime::SloCalibrator::new(warmup, shift);
        let (mut tokens_total, mut cycles_total) = (0u64, 0u64);
        for (&tokens, &cycles) in sample_tokens.iter().zip(sample_cycles.iter()) {
            cal.observe(tokens, cycles);
            tokens_total += tokens;
            cycles_total += cycles;
            match cal.rate() {
                Some(rate) => {
                    prop_assert!(tokens_total >= warmup.max(1));
                    prop_assert!(rate >= cycles_total.div_ceil(tokens_total));
                    prop_assert!(rate >= 1);
                }
                None => prop_assert!(tokens_total < warmup.max(1)),
            }
        }
    }
}
