//! KV-pressure integration tests: a deterministic overload of a tiny paged
//! KV pool must preempt sessions — yet every request still completes with
//! exact token accounting, and the report's rejection/preemption counters
//! match hand-computed values.
//!
//! The `soak_*` test is `#[ignore]`d: it runs many pool sizes × policies ×
//! placements and is meant for the CI `--include-ignored` pass, not the
//! default tier-1 loop.

use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_runtime::{
    pages_for, synthetic_requests, Executor, ExecutorConfig, KvConfig, KvFreePages, Placement,
    Request, Scheduler, SchedulerConfig, SchedulingPolicy, WorkloadSpec,
};
use mugi_workloads::models::ModelId;

/// Builds a single-node executor over a paged pool of `node_pages` pages of
/// `page_tokens` KV entries.
fn bounded_executor(config: SchedulerConfig, page_tokens: usize, node_pages: usize) -> Executor {
    Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(config, KvConfig::bounded(page_tokens, node_pages)),
        ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
        Placement::single_node(),
    )
}

#[test]
fn deterministic_overload_preempts_and_every_request_completes() {
    // 16 decode-heavy requests (prompts 64–256, outputs 48–96) in one burst
    // against a 12-page × 32-token pool: the peak demand of a single
    // request is pages_for(256 + 96) = 11 pages, so the whole population
    // fights over a pool that barely fits one of them.
    let page_tokens = 32;
    let requests = synthetic_requests(11, 16, &[ModelId::Llama2_7b], WorkloadSpec::kv_pressure());
    let max_need = requests
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    let mut engine = bounded_executor(SchedulerConfig::default(), page_tokens, max_need + 1);
    for r in &requests {
        engine.submit(*r);
    }
    let report = engine.run();

    // Pressure really happened…
    assert!(report.kv.preemptions > 0, "a pool this tight must preempt");
    assert!(report.kv.reprefill_tokens > 0);
    assert!(report.kv.evicted_pages > 0);
    assert_eq!(
        report.kv.fault_stall_cycles,
        report.kv.evicted_pages * ExecutorConfig::default().fault_stall_cycles,
        "stall cycles are charged per evicted page, nothing else"
    );
    assert_eq!(report.kv.capacity_pages, Some(max_need as u64 + 1));
    assert!(report.kv.peak_used_pages <= max_need as u64 + 1);
    assert!(report.kv.peak_occupancy().unwrap() > 0.9, "the pool ran essentially full");

    // …and yet every request completed with exact token accounting.
    assert_eq!(report.requests.len(), requests.len(), "every request must finish");
    let expected: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
    assert_eq!(report.total_output_tokens, expected);
    for (stats, request) in report.requests.iter().zip(&requests) {
        assert_eq!(stats.output_tokens, request.output_tokens);
        assert_eq!(stats.prompt_tokens, request.prompt_tokens);
        assert!(stats.ttft_s > 0.0 && stats.e2e_s >= stats.ttft_s);
    }
    // All pages came home.
    assert_eq!(engine.scheduler().kv_used_pages(), 0);
    assert_eq!(engine.kv_free_pages(0).pages(), Some(max_need + 1));
    // Per-session preemption counters sum to the report's, and preempted
    // sessions really did extra prefill work (their final prefill target
    // grew past the plain prompt by the generated entries they rebuilt).
    let sessions = engine.scheduler().sessions();
    let preemptions: u64 = sessions.iter().map(|s| u64::from(s.preemptions)).sum();
    assert_eq!(preemptions, report.kv.preemptions);
    let prompt_total: u64 = requests.iter().map(|r| r.prompt_tokens as u64).sum();
    let prefilled_total: u64 = sessions.iter().map(|s| s.prefill_target as u64).sum();
    assert!(
        prefilled_total > prompt_total,
        "decode-phase evictions must leave visible re-prefill work"
    );
}

#[test]
fn rejection_count_matches_hand_computed_backpressure() {
    // Queue-depth admission: with a live-session bound of 6 and all 16
    // submissions arriving before the run starts (no session can finish in
    // between), exactly the first 6 are admitted and the remaining 10 are
    // rejected — a value the workload generator can compute by hand.
    let page_tokens = 32;
    let requests = synthetic_requests(5, 16, &[ModelId::Llama2_7b], WorkloadSpec::kv_pressure());
    let bound = 6;
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(
            SchedulerConfig::default(),
            KvConfig::bounded(page_tokens, 16).with_max_live_sessions(bound),
        ),
        ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
        Placement::single_node(),
    );
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    for r in &requests {
        match engine.try_submit(*r) {
            Ok(_) => admitted += 1,
            Err(e) => {
                rejected += 1;
                assert!(e.to_string().contains("queue full"), "{e}");
            }
        }
    }
    assert_eq!(admitted, bound);
    assert_eq!(rejected, requests.len() - bound);
    let report = engine.run();
    assert_eq!(report.kv.rejected_requests, rejected as u64);
    assert_eq!(report.requests.len(), bound, "every admitted request completes");
}

#[test]
fn hand_computed_preemption_counters() {
    // The fully hand-traceable scenario (same arithmetic as the scheduler
    // unit test, here end-to-end through the executor with stall charging).
    // Pool: 4 pages × 4 tokens. Two requests r0/r1, prompt 4, output 8,
    // max_batch 2, budget 8, chunk 4:
    //
    // * both prefill together (2 pages each: 4-token prompt + the emitted
    //   first token), pool full;
    // * both decode in lockstep while their KV grows 5 → 8 entries inside
    //   the two pages;
    // * at KV 8→9 the older r0 needs a third page: the pool is dry, so the
    //   younger holder r1 is evicted — 1 preemption, 2 pages, and its full
    //   8-entry KV (prompt 4 + 4 generated) becomes re-prefill debt;
    // * r1 re-prefills in 4-token chunks as pages free up and still
    //   finishes all 8 tokens.
    let fault = 100;
    let mut engine = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(
            SchedulerConfig {
                max_batch: 2,
                token_budget: 8,
                prefill_chunk: 4,
                policy: SchedulingPolicy::Fcfs,
                ..SchedulerConfig::default()
            },
            KvConfig::bounded(4, 4),
        ),
        ExecutorConfig { kv_bucket: 4, fault_stall_cycles: fault, ..ExecutorConfig::default() },
        Placement::single_node(),
    );
    engine.submit(Request::new(ModelId::Llama2_7b, 4, 8));
    engine.submit(Request::new(ModelId::Llama2_7b, 4, 8));
    let report = engine.run();
    assert_eq!(report.kv.preemptions, 1);
    assert_eq!(report.kv.evicted_pages, 2);
    assert_eq!(report.kv.reprefill_tokens, 8);
    assert_eq!(report.kv.rejected_requests, 0);
    assert_eq!(report.kv.fault_stall_cycles, 2 * fault);
    assert_eq!(report.total_output_tokens, 16, "token accounting is exact");
    let sessions = engine.scheduler().sessions();
    assert_eq!(sessions[0].preemptions, 0, "the oldest session is never evicted");
    assert_eq!(sessions[1].preemptions, 1);
}

#[test]
fn pressure_costs_latency_but_not_tokens() {
    // The same workload through a tight pool and an unbounded one: identical
    // tokens out, strictly larger makespan under pressure (re-prefill work
    // plus fault stalls are pure overhead).
    let page_tokens = 32;
    let requests = synthetic_requests(11, 12, &[ModelId::Llama2_7b], WorkloadSpec::kv_pressure());
    let max_need = requests
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    let run = |kv: KvConfig| {
        let mut engine = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), kv),
            ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
            Placement::single_node(),
        );
        for r in &requests {
            engine.submit(*r);
        }
        engine.run()
    };
    let tight = run(KvConfig::bounded(page_tokens, max_need));
    let roomy = run(KvConfig::unbounded());
    assert!(tight.kv.preemptions > 0);
    assert_eq!(roomy.kv.preemptions, 0);
    assert_eq!(tight.total_output_tokens, roomy.total_output_tokens);
    assert!(
        tight.makespan_s > roomy.makespan_s,
        "pressure must cost simulated time: {} vs {}",
        tight.makespan_s,
        roomy.makespan_s
    );
}

#[test]
#[ignore = "slow soak; run with --include-ignored (CI does)"]
fn soak_pool_sizes_policies_and_placements_all_drain() {
    // A broad invariant sweep: several pool sizes under both scheduling
    // policies and all placement flavours must drain a 32-request two-model
    // workload with exact accounting and zero leaked pages.
    let page_tokens = 64;
    let models = [ModelId::Llama2_7b, ModelId::Llama2_13b];
    let requests = synthetic_requests(7, 32, &models, WorkloadSpec::kv_pressure());
    let max_need = requests
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    let expected: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
    let placements = [
        Placement::single_node(),
        Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
        Placement::sharded(NocConfig { rows: 2, cols: 2 }),
    ];
    for policy in [SchedulingPolicy::Fcfs, SchedulingPolicy::ShortestPrefillFirst] {
        for extra in [0, 2, 8, 64] {
            for placement in placements {
                let mut engine = Executor::with_placement(
                    MugiAccelerator::new(64),
                    Scheduler::with_kv(
                        SchedulerConfig { policy, ..SchedulerConfig::default() },
                        KvConfig::bounded(page_tokens, max_need + extra),
                    ),
                    ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
                    placement,
                );
                for r in &requests {
                    engine.submit(*r);
                }
                let report = engine.run();
                let label = format!("{policy:?} +{extra} pages {}", placement.label());
                assert_eq!(report.requests.len(), requests.len(), "{label}");
                assert_eq!(report.total_output_tokens, expected, "{label}");
                assert_eq!(engine.scheduler().kv_used_pages(), 0, "{label}: leaked pages");
                assert!(
                    report.kv.peak_used_pages <= report.kv.capacity_pages.unwrap(),
                    "{label}: over capacity"
                );
            }
        }
    }
}

/// Regression for the `unwrap_or(usize::MAX)` placement bug: both engines'
/// idle-node sorts rank nodes by `Executor::kv_free_pages`, which used to
/// answer `None` for an out-of-range pool index — indistinguishable from an
/// unbounded pool, so an indexing bug would silently rank the broken node
/// as infinitely free. Valid indices must answer with the real headroom on
/// every node of a bounded multi-pool placement.
#[test]
fn idle_sort_headroom_is_bounded_on_every_valid_node() {
    let mut ex = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(32, 8)),
        ExecutorConfig { kv_bucket: 32, ..ExecutorConfig::default() },
        Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
    );
    ex.submit(Request::new(ModelId::Llama2_7b, 16, 1));
    for node in 0..4 {
        assert_eq!(
            ex.kv_free_pages(node),
            KvFreePages::Pages(8),
            "node {node} must report its own bounded pool"
        );
    }
    // Unbounded configurations keep the explicit unbounded state instead.
    let unb = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::new(SchedulerConfig::default()),
        ExecutorConfig::default(),
        Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
    );
    assert_eq!(unb.kv_free_pages(3), KvFreePages::Unbounded);
}

/// The other half of the regression: an out-of-range node→pool mapping now
/// fails loudly at the shared accessor both idle sorts go through.
#[test]
#[should_panic(expected = "out of range")]
fn idle_sort_headroom_panics_past_the_last_bounded_pool() {
    let ex = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(32, 8)),
        ExecutorConfig { kv_bucket: 32, ..ExecutorConfig::default() },
        Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
    );
    let _ = ex.kv_free_pages(4); // one past the 2x2 mesh
}
