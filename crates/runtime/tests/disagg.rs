//! Prefill/decode disaggregation integration tests: bit-identity of
//! colocated placements against pre-refactor golden outputs, hand-computed
//! KV-migration transfer energy/stall counters, swap-style versus
//! recompute-style preemption, and incremental session retirement.

use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_runtime::{
    pages_for, synthetic_requests, DecodeOrder, Executor, ExecutorConfig, KvConfig, Placement,
    Request, RuntimeReport, Scheduler, SchedulerConfig, WorkloadSpec, KV_BITS,
};
use mugi_workloads::models::ModelId;

const MODEL: ModelId = ModelId::Llama2_7b;

/// The default configuration with the pre-refactor FCFS decode order — the
/// exact scheduler the golden values below were captured from.
fn fcfs_config() -> SchedulerConfig {
    SchedulerConfig { decode_order: DecodeOrder::Fcfs, ..SchedulerConfig::default() }
}

/// Collapses a report to the bit patterns the golden test pins: every float
/// is compared via `to_bits`, so any perturbation — however small — fails.
fn fingerprint(report: &RuntimeReport) -> Vec<u64> {
    let energy_sum: f64 = report.requests.iter().map(|r| r.energy_uj).sum();
    let noc_sum: f64 = report.requests.iter().map(|r| r.noc_energy_uj).sum();
    let ttft_sum: f64 = report.requests.iter().map(|r| r.ttft_s).sum();
    vec![
        report.makespan_s.to_bits(),
        report.throughput_tokens_per_s.to_bits(),
        report.ttft.p50.to_bits(),
        report.ttft.p99.to_bits(),
        report.tpot.p50.to_bits(),
        report.tpot.p95.to_bits(),
        energy_sum.to_bits(),
        noc_sum.to_bits(),
        ttft_sum.to_bits(),
        report.micro_batches,
        report.total_output_tokens,
        report.kv.peak_used_pages,
        report.kv.preemptions,
        report.kv.reprefill_tokens,
        report.kv.evicted_pages,
        report.kv.fault_stall_cycles,
    ]
}

#[test]
fn colocated_placements_match_pre_refactor_goldens_bit_for_bit() {
    // The values below were captured from the pre-disaggregation build
    // (commit d77bc82) running the exact same scenarios. With the FCFS
    // decode order pinned, the refactored runtime must reproduce every
    // float bit for bit on every colocated placement — proof that the
    // phase-filter / pool-role / migration plumbing is inert unless a
    // disaggregated placement switches it on. The ttft/tpot percentile
    // entries were re-captured when `Percentiles::of` moved to true
    // nearest-rank (the p50 — and at n = 16 the p95 — rank legitimately
    // shifts one element); every simulation entry is the original capture.

    // Scenario A: single node, unbounded pool, 24 one-model requests so the
    // decode population (24) exceeds max_batch (16) and decode ordering
    // genuinely binds.
    let requests = synthetic_requests(11, 24, &[MODEL], WorkloadSpec::kv_pressure());
    let mut ex = Executor::new(MugiAccelerator::new(64), Scheduler::new(fcfs_config()));
    for r in &requests {
        ex.submit(*r);
    }
    assert_eq!(
        fingerprint(&ex.run()),
        vec![
            0x409bd459ab6d00b4,
            0x3fef3e6bbf0c9c77,
            0x4080578aee301ed7,
            0x40959b8d927a408e,
            0x40231ca0b1e245ae,
            0x402699c304633574,
            0x4185921485d0f8bb,
            0x0,
            0x40d135bd3b3f1b49,
            157,
            1739,
            0,
            0,
            0,
            0,
            0,
        ],
        "single-node colocated run diverged from the pre-refactor golden"
    );

    // Scenario B: data-parallel 2x2 with a bounded pool under real
    // preemption pressure, two models.
    let page_tokens = 32;
    let models = [ModelId::Llama2_7b, ModelId::Llama2_13b];
    let requests = synthetic_requests(7, 20, &models, WorkloadSpec::kv_pressure());
    let max_need = requests
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    let mut ex = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(fcfs_config(), KvConfig::bounded(page_tokens, max_need + 2)),
        ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
        Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
    );
    for r in &requests {
        ex.submit(*r);
    }
    assert_eq!(
        fingerprint(&ex.run()),
        vec![
            0x409c992e107ed345,
            0x3fea666e015ae7c3,
            0x40799899afe9e811,
            0x40937856a4bce34b,
            0x40183ff03f7bbe1a,
            0x40242ff3a1d5c336,
            0x41a446a0db83dafa,
            0x4062508ce04db30f,
            0x40c582e40ed5b0cc,
            1174,
            1510,
            52,
            12,
            1887,
            64,
            16384,
        ],
        "bounded data-parallel run diverged from the pre-refactor golden"
    );

    // Scenario C: sharded 2x2, unbounded.
    let requests = synthetic_requests(3, 16, &models, WorkloadSpec::default());
    let mut ex = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::new(fcfs_config()),
        ExecutorConfig::default(),
        Placement::sharded(NocConfig { rows: 2, cols: 2 }),
    );
    for r in &requests {
        ex.submit(*r);
    }
    assert_eq!(
        fingerprint(&ex.run()),
        vec![
            0x40839f2c5cc57dce,
            0x3fe0832435b68b66,
            0x407912637818c06b,
            0x407e5f0f76425189,
            0x40256107ef9f7c4f,
            0x40524bb95b236fcf,
            0x418b36d3aa16905e,
            0x40dae5d8a1ed2532,
            0x40b389c73cc52d46,
            81,
            324,
            0,
            0,
            0,
            0,
            0,
        ],
        "sharded run diverged from the pre-refactor golden"
    );
}

#[test]
fn prefill_completion_migrates_kv_with_hand_computed_transfer_costs() {
    // One prefill node, one decode node, unbounded pool. Session a
    // (prompt 100, output 4) completes its prefill in one chunk, emits its
    // first token and must migrate kv_len = 101 entries to the decode node;
    // session b (prompt 50, output 1) finishes *at* prefill completion and
    // must not migrate at all.
    let noc = NocConfig { rows: 2, cols: 1 };
    let mut ex = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::new(SchedulerConfig::default()),
        ExecutorConfig::default(),
        Placement::disaggregated(noc, 1),
    );
    let a = ex.submit(Request::new(MODEL, 100, 4));
    let b = ex.submit(Request::new(MODEL, 50, 1));
    let report = ex.run();

    assert_eq!(report.requests.len(), 2);
    assert_eq!(report.total_output_tokens, 5, "token conservation across the handoff");

    // Exactly one migration: a's 101-entry KV in one 128-token page.
    let bytes = MODEL.config().kv_cache_bytes(101, KV_BITS);
    assert_eq!(report.kv.migrations, 1);
    assert_eq!(report.kv.migrated_pages, 1, "101 entries fit one 128-token page");
    assert_eq!(report.kv.transfer_bytes, bytes);
    assert_eq!(report.kv.transfer_stall_cycles, noc.transfer_cycles(bytes));
    assert_eq!(report.kv.swap_outs, 0);
    let cost = MugiAccelerator::new(64).cost_model();
    let expected_uj = noc.transfer_energy_pj(bytes, &cost) * 1e-6;
    assert!((report.kv.transfer_energy_uj - expected_uj).abs() < 1e-12);

    // The transfer is itemized per request: a pays, b does not.
    let ra = &report.requests[a.0 as usize];
    let rb = &report.requests[b.0 as usize];
    assert_eq!(ra.kv_transfer_bytes, bytes);
    assert!((ra.kv_transfer_energy_uj - expected_uj).abs() < 1e-12);
    assert_eq!(rb.kv_transfer_bytes, 0);
    assert_eq!(rb.kv_transfer_energy_uj, 0.0);
    assert_eq!(ex.scheduler().session(a).migrations, 1);
    assert_eq!(ex.scheduler().session(b).migrations, 0);
    assert_eq!(ex.pending_migration_count(), 0, "no migration may be left behind");
}

/// Runs the hand-traceable two-request overload on a 1-prefill/1-decode
/// mesh with 4-token pages and 4-page pools.
fn run_two_request_disagg(kv: KvConfig) -> (Executor, RuntimeReport) {
    let mut ex = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(
            SchedulerConfig {
                max_batch: 2,
                token_budget: 8,
                prefill_chunk: 4,
                ..SchedulerConfig::default()
            },
            kv,
        ),
        ExecutorConfig { kv_bucket: 4, ..ExecutorConfig::default() },
        Placement::disaggregated(NocConfig { rows: 2, cols: 1 }, 1),
    );
    ex.submit(Request::new(MODEL, 4, 8));
    ex.submit(Request::new(MODEL, 4, 8));
    let report = ex.run();
    (ex, report)
}

#[test]
fn swap_preemption_trades_recompute_for_hand_computed_transfers() {
    // Both requests prefill together on the prefill node (2 pages each,
    // kv = 5 after the emitted first token), migrate to the decode node and
    // decode in lockstep until r0's KV crosses 8 entries and needs a third
    // page from the dry decode pool.
    //
    // Under recompute preemption r1 is evicted: it drops its 2 pages,
    // re-prefills its whole 8-entry KV on the prefill node and migrates a
    // second time. Under swap preemption r1's 2 pages are paged *out* to
    // the prefill pool instead (8 KV entries over the NoC), kept intact,
    // and paged back in once r0 finishes — no re-prefill at all.
    let bytes5 = MODEL.config().kv_cache_bytes(5, KV_BITS);
    let bytes8 = MODEL.config().kv_cache_bytes(8, KV_BITS);

    let (ex, recompute) = run_two_request_disagg(KvConfig::bounded(4, 4));
    assert_eq!(recompute.total_output_tokens, 16);
    assert_eq!(recompute.kv.preemptions, 1);
    assert_eq!(recompute.kv.evicted_pages, 2);
    assert_eq!(recompute.kv.reprefill_tokens, 8);
    assert_eq!(recompute.kv.swap_outs, 0);
    // Handoffs: r0 and r1 at kv 5, plus r1 again at kv 8 after recompute.
    assert_eq!(recompute.kv.migrations, 3);
    assert_eq!(recompute.kv.migrated_pages, 6);
    assert_eq!(recompute.kv.transfer_bytes, 2 * bytes5 + bytes8);
    let sessions = ex.scheduler().sessions();
    assert_eq!(sessions[0].preemptions, 0, "the oldest session is never evicted");
    assert_eq!(sessions[1].preemptions, 1);
    assert_eq!((sessions[0].migrations, sessions[1].migrations), (1, 2));

    let (ex, swap) = run_two_request_disagg(KvConfig::bounded(4, 4).with_swap_preemption());
    assert_eq!(swap.total_output_tokens, 16);
    assert_eq!(swap.kv.preemptions, 0, "swap replaces every recompute eviction here");
    assert_eq!(swap.kv.evicted_pages, 0);
    assert_eq!(swap.kv.reprefill_tokens, 0);
    assert_eq!(swap.kv.fault_stall_cycles, 0);
    assert_eq!(swap.kv.swap_outs, 1);
    assert_eq!(swap.kv.swapped_pages, 2);
    // Handoffs: r0 and r1 at kv 5, r1's swap-in at kv 8; plus the swap-out
    // itself at kv 8.
    assert_eq!(swap.kv.migrations, 3);
    assert_eq!(swap.kv.transfer_bytes, 2 * bytes5 + 2 * bytes8);
    let noc = NocConfig { rows: 2, cols: 1 };
    let expected_stalls = noc.transfer_cycles(bytes5) * 2 // handoffs
        + noc.transfer_cycles(bytes8)                     // swap-out
        + noc.transfer_cycles(bytes8); // swap-in
    assert_eq!(swap.kv.transfer_stall_cycles, expected_stalls);
    let sessions = ex.scheduler().sessions();
    assert_eq!(sessions[1].swap_outs, 1);
    assert_eq!(sessions[1].preemptions, 0);
    assert_eq!((sessions[0].migrations, sessions[1].migrations), (1, 2));

    // The whole point: swapping pays bytes instead of recomputed tokens.
    assert!(swap.kv.reprefill_tokens < recompute.kv.reprefill_tokens);
    assert!(swap.kv.transfer_bytes > recompute.kv.transfer_bytes);
}

#[test]
fn disaggregation_beats_colocated_decode_tpot_under_long_prefills() {
    // A mixed long-prefill stream: under colocated data-parallel placement
    // nearly every micro-batch mixes a 512-token prefill chunk in with the
    // decode slots, so every decode token pays a prefill-sized step. The
    // disaggregated split keeps decode steps pure and must cut decode TPOT
    // p95 by a wide margin on the same mesh.
    let requests =
        synthetic_requests(13, 24, &[MODEL], WorkloadSpec::mixed_long_prefill(40_000_000));
    let run = |placement: Placement| {
        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::new(SchedulerConfig::default()),
            ExecutorConfig::default(),
            placement,
        );
        for r in &requests {
            ex.submit(*r);
        }
        ex.run()
    };
    let noc = NocConfig { rows: 2, cols: 2 };
    let colocated = run(Placement::data_parallel(noc));
    let disagg = run(Placement::disaggregated(noc, 2));
    assert_eq!(disagg.total_output_tokens, colocated.total_output_tokens);
    assert!(
        disagg.tpot.p95 < colocated.tpot.p95,
        "disaggregation must improve decode TPOT p95: {} vs {}",
        disagg.tpot.p95,
        colocated.tpot.p95
    );
    assert!(disagg.kv.migrations > 0, "handoffs must actually happen");
    assert_eq!(colocated.kv.migrations, 0, "colocated runs never migrate");
}

#[test]
fn incremental_retirement_matches_the_unretired_report() {
    // The same workload with and without incremental retirement must
    // produce identical reports — retirement only changes *when* statistics
    // are folded in, never their values — while keeping the scheduler's
    // session window bounded instead of growing with every submission.
    let requests = synthetic_requests(9, 32, &[MODEL], WorkloadSpec::default());
    let run = |retire_finished: bool| {
        let mut ex = Executor::with_config(
            MugiAccelerator::new(64),
            Scheduler::new(SchedulerConfig::default()),
            ExecutorConfig { retire_finished, ..ExecutorConfig::default() },
        );
        for r in &requests {
            ex.submit(*r);
        }
        let report = ex.run();
        (ex, report)
    };
    let (keep_ex, keep) = run(false);
    let (retire_ex, retire) = run(true);
    assert_eq!(keep, retire, "retirement must not perturb the report at all");
    assert_eq!(keep_ex.scheduler().sessions().len(), requests.len());
    assert_eq!(
        retire_ex.scheduler().sessions().len(),
        0,
        "every finished session must have been retired"
    );
    assert_eq!(retire_ex.scheduler().retired_session_count(), requests.len());
    assert_eq!(retire_ex.scheduler().submitted_count(), requests.len());
    assert!(retire_ex.scheduler().all_finished());
}

#[test]
fn disaggregated_bounded_pools_conserve_tokens_and_pages() {
    // A decode-heavy overload across a 2-prefill/2-decode mesh with tight
    // per-node pools: every request must finish whichever preemption mode
    // is in force, and every page must come home.
    let page_tokens = 32;
    let requests = synthetic_requests(11, 16, &[MODEL], WorkloadSpec::kv_pressure());
    let max_need = requests
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    let expected: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
    for swap in [false, true] {
        let kv = if swap {
            KvConfig::bounded(page_tokens, max_need + 1).with_swap_preemption()
        } else {
            KvConfig::bounded(page_tokens, max_need + 1)
        };
        let mut ex = Executor::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), kv),
            ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
            Placement::disaggregated(NocConfig { rows: 2, cols: 2 }, 2),
        );
        for r in &requests {
            ex.submit(*r);
        }
        let report = ex.run();
        let label = if swap { "swap" } else { "recompute" };
        assert_eq!(report.requests.len(), requests.len(), "{label}");
        assert_eq!(report.total_output_tokens, expected, "{label}");
        assert_eq!(ex.scheduler().kv_used_pages(), 0, "{label}: leaked pages");
        assert_eq!(ex.pending_migration_count(), 0, "{label}: stranded migration");
        assert!(report.kv.migrations >= requests.len() as u64, "{label}: every prefill hands off");
        assert!(report.kv.transfer_bytes > 0, "{label}");
    }
}
