//! Event-engine equivalence suite: golden bit-identity tests captured from
//! the pre-refactor per-step runtime (commit e0e057f), a streaming-workload
//! determinism test, and the 1M-request soak proving memory stays bounded.
//!
//! The golden fingerprints below were captured by running the per-step
//! `Executor` at commit e0e057f on the exact scenarios in this file: every
//! float is pinned via `to_bits`, so any perturbation — however small —
//! fails. The event engine must reproduce each one exactly (FP-sum order
//! preserved), which proves the discrete-event reorganization changes *how*
//! the simulation is driven, never *what* it computes.

use mugi::arch::noc::NocConfig;
use mugi::MugiAccelerator;
use mugi_runtime::{
    pages_for, synthetic_requests, EventEngine, Executor, ExecutorConfig, KvConfig, Placement,
    Request, RuntimeReport, Scheduler, SchedulerConfig, StatsFold, WorkloadSpec, WorkloadStream,
};
use mugi_workloads::models::ModelId;

const MODEL: ModelId = ModelId::Llama2_7b;

/// Collapses a report to the bit patterns the golden tests pin: every float
/// is compared via `to_bits`, so any perturbation — however small — fails.
fn fingerprint(report: &RuntimeReport) -> Vec<u64> {
    let energy_sum: f64 = report.requests.iter().map(|r| r.energy_uj).sum();
    let noc_sum: f64 = report.requests.iter().map(|r| r.noc_energy_uj).sum();
    let ttft_sum: f64 = report.requests.iter().map(|r| r.ttft_s).sum();
    let kv_energy_sum: f64 = report.requests.iter().map(|r| r.kv_transfer_energy_uj).sum();
    vec![
        report.requests.len() as u64,
        report.makespan_s.to_bits(),
        report.throughput_tokens_per_s.to_bits(),
        report.ttft.p50.to_bits(),
        report.ttft.p95.to_bits(),
        report.ttft.p99.to_bits(),
        report.tpot.p50.to_bits(),
        report.tpot.p95.to_bits(),
        report.tpot.p99.to_bits(),
        energy_sum.to_bits(),
        noc_sum.to_bits(),
        ttft_sum.to_bits(),
        kv_energy_sum.to_bits(),
        report.noc_energy_uj.to_bits(),
        report.micro_batches,
        report.total_output_tokens,
        report.kv.peak_used_pages,
        report.kv.preemptions,
        report.kv.reprefill_tokens,
        report.kv.evicted_pages,
        report.kv.fault_stall_cycles,
        report.kv.migrations,
        report.kv.migrated_pages,
        report.kv.swap_outs,
        report.kv.swapped_pages,
        report.kv.transfer_bytes,
        report.kv.transfer_energy_uj.to_bits(),
        report.kv.transfer_stall_cycles as u64,
    ]
}

/// One golden scenario: a workload plus the full engine configuration, so
/// the per-step oracle and the event engine can both be built from it.
struct Scenario {
    name: &'static str,
    requests: Vec<Request>,
    scheduler: SchedulerConfig,
    kv: KvConfig,
    executor: ExecutorConfig,
    placement: Placement,
}

/// The four golden scenarios, one per placement policy family. Each is
/// deliberately overloaded enough that its policy's machinery genuinely
/// binds (decode rotation, preemption, tiling, migration + swap).
fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // A: single node, unbounded pool, 24 one-model requests so the decode
    // population (24) exceeds max_batch (16) and decode rotation binds.
    out.push(Scenario {
        name: "single-node",
        requests: synthetic_requests(21, 24, &[MODEL], WorkloadSpec::kv_pressure()),
        scheduler: SchedulerConfig::default(),
        kv: KvConfig::unbounded(),
        executor: ExecutorConfig::default(),
        placement: Placement::single_node(),
    });

    // B: data-parallel 2x2 with bounded per-node pools under real
    // preemption pressure, two models.
    let page_tokens = 32;
    let models = [ModelId::Llama2_7b, ModelId::Llama2_13b];
    let requests = synthetic_requests(7, 20, &models, WorkloadSpec::kv_pressure());
    let max_need = requests
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    out.push(Scenario {
        name: "dp-bounded-kv",
        requests,
        scheduler: SchedulerConfig::default(),
        kv: KvConfig::bounded(page_tokens, max_need + 2),
        executor: ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
        placement: Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
    });

    // C: sharded 2x2, unbounded, staggered arrivals.
    out.push(Scenario {
        name: "sharded",
        requests: synthetic_requests(
            3,
            16,
            &models,
            WorkloadSpec { arrival_spread_cycles: 30_000_000, ..WorkloadSpec::default() },
        ),
        scheduler: SchedulerConfig::default(),
        kv: KvConfig::unbounded(),
        executor: ExecutorConfig::default(),
        placement: Placement::sharded(NocConfig { rows: 2, cols: 2 }),
    });

    // D: disaggregated 2p2d on a 2x2 mesh, bounded pools, swap-style
    // preemption — migrations, swap-outs and swap-ins all exercised.
    let requests = synthetic_requests(11, 16, &[MODEL], WorkloadSpec::kv_pressure());
    let max_need = requests
        .iter()
        .map(|r| pages_for(r.prompt_tokens + r.output_tokens, page_tokens))
        .max()
        .unwrap();
    out.push(Scenario {
        name: "disagg-swap",
        requests,
        scheduler: SchedulerConfig::default(),
        kv: KvConfig::bounded(page_tokens, max_need + 1).with_swap_preemption(),
        executor: ExecutorConfig { kv_bucket: page_tokens, ..ExecutorConfig::default() },
        placement: Placement::disaggregated(NocConfig { rows: 2, cols: 2 }, 2),
    });

    out
}

/// Runs one scenario on the per-step executor.
fn run_per_step(s: &Scenario) -> RuntimeReport {
    let mut ex = Executor::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(s.scheduler, s.kv),
        s.executor,
        s.placement,
    );
    for r in &s.requests {
        ex.submit(*r);
    }
    ex.run()
}

/// Golden fingerprints captured from the per-step executor at commit
/// e0e057f, in `scenarios()` order. The six percentile entries (indices
/// 3–8) were re-captured when `Percentiles::of` was fixed to true
/// nearest-rank: at these population sizes the p50 rank (and, at n = 16,
/// the p95 rank) legitimately moves one element. Every simulation entry —
/// makespan, throughput, energy and NoC sums, all KV counters — is
/// untouched from the e0e057f capture, which is what pins the simulation
/// itself as bit-identical.
fn golden(name: &str) -> Vec<u64> {
    match name {
        "single-node" => vec![
            0x0000000000000018,
            0x409aa32e019b0ab3,
            0x3ff00a1a6ece3a00,
            0x40805771ebaab372,
            0x409546d8dfaa9ffc,
            0x40962f40748f4909,
            0x40234d64cc0da2b7,
            0x4027c1481a5955eb,
            0x4027d24d39ba03be,
            0x41846d170ce08724,
            0x0000000000000000,
            0x40d1955e1e15bfb0,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000095,
            0x00000000000006ad,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
        ],
        "dp-bounded-kv" => vec![
            0x0000000000000014,
            0x409bb4c9fe7109ad,
            0x3feb400dd8ffa8f1,
            0x40799899afe9e811,
            0x409293f292af19b4,
            0x40932dcb38c34006,
            0x40192f19fcc7a70e,
            0x40231328267217eb,
            0x402727530d406f2b,
            0x41a4b2640bc58018,
            0x40636303db56d349,
            0x40c543a4f6b62a4a,
            0x0000000000000000,
            0x40636303db56d348,
            0x000000000000048e,
            0x00000000000005e6,
            0x0000000000000034,
            0x000000000000000e,
            0x00000000000008bc,
            0x000000000000004c,
            0x0000000000004c00,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
        ],
        "sharded" => vec![
            0x0000000000000010,
            0x40817918445ea9af,
            0x3fe5762ec5028bcb,
            0x40703f4f3484c1f1,
            0x407a286edcb29df7,
            0x407a286edcb29df7,
            0x401a801861ddc461,
            0x404757f3b6c7ac8f,
            0x404757f3b6c7ac8f,
            0x41888eb9b9cc285f,
            0x40d781923bd746a1,
            0x40b32b6a2891fa3e,
            0x0000000000000000,
            0x40d781923bd746a2,
            0x000000000000005a,
            0x0000000000000177,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
            0x0000000000000000,
        ],
        "disagg-swap" => vec![
            0x0000000000000010,
            0x40937bb0fb2bafdc,
            0x3fee8a07a7ebec33,
            0x4063c24027e348e5,
            0x40867b61b7af0363,
            0x40867b61b7af0363,
            0x4012678ae4fa9a3a,
            0x401d5777f264f847,
            0x401d5777f264f847,
            0x419308f76b77a1a7,
            0x405331a08bfc2216,
            0x40b6ed9f721ce86e,
            0x40a8fbe4e84c8514,
            0x405331a08bfc2218,
            0x0000000000000386,
            0x00000000000004a6,
            0x000000000000002c,
            0x0000000000000003,
            0x00000000000001db,
            0x0000000000000010,
            0x0000000000001000,
            0x000000000000001b,
            0x0000000000000087,
            0x0000000000000008,
            0x0000000000000027,
            0x000000009ed80000,
            0x40a8fbe4e84c8512,
            0x0000000000d3cafc,
        ],
        _ => panic!("no golden recorded for scenario {name}"),
    }
}

/// Runs one scenario on the event engine, returning the engine too so
/// tests can inspect its queue counters after the run.
fn run_event(s: &Scenario) -> (RuntimeReport, EventEngine) {
    let mut ev = EventEngine::with_placement(
        MugiAccelerator::new(64),
        Scheduler::with_kv(s.scheduler, s.kv),
        s.executor,
        s.placement,
    );
    for r in &s.requests {
        ev.submit(*r);
    }
    let report = ev.run();
    (report, ev)
}

/// Regeneration helper, not a check: prints every scenario's fingerprint in
/// the hex layout of [`golden`]. Run it when a golden legitimately moves
/// (`cargo test -p mugi-runtime --test event_engine print_fingerprints -- \
/// --ignored --nocapture`), then audit the diff entry by entry before
/// pasting — only entries a deliberate change explains may differ.
#[test]
#[ignore = "golden regeneration helper; prints, asserts nothing"]
fn print_fingerprints() {
    for s in scenarios() {
        println!("        \"{}\" => vec![", s.name);
        for word in fingerprint(&run_per_step(&s)) {
            println!("            0x{word:016x},");
        }
        println!("        ],");
    }
}

/// The per-step executor must keep matching the digests captured at
/// e0e057f: the refactor that extracted its core must not perturb it.
#[test]
fn per_step_executor_matches_goldens() {
    for s in scenarios() {
        let fp = fingerprint(&run_per_step(&s));
        assert_eq!(fp, golden(s.name), "per-step fingerprint drifted for {}", s.name);
    }
}

/// The tentpole claim: the event engine reproduces every golden scenario —
/// every placement policy, preemption mode and migration path — bit for
/// bit, floats included.
#[test]
fn event_engine_matches_goldens() {
    for s in scenarios() {
        let (report, ev) = run_event(&s);
        assert_eq!(
            fingerprint(&report),
            golden(s.name),
            "event-engine fingerprint drifted for {}",
            s.name
        );
        // Every dispatched batch raised exactly one completion event.
        assert_eq!(ev.queue().pop_count(), report.micro_batches, "{}", s.name);
        assert!(ev.queue().is_empty(), "{}", s.name);
        assert_eq!(ev.queue().arrival_time_regressions(), 0, "{}", s.name);
    }
}

/// Beyond the digest: the *entire* reports — every per-request stat, every
/// float — must be equal between the oracle and the event engine.
#[test]
fn event_engine_reports_equal_per_step_reports_exactly() {
    for s in scenarios() {
        let per_step = run_per_step(&s);
        let (event, _) = run_event(&s);
        assert_eq!(per_step, event, "full-report divergence for {}", s.name);
    }
}

/// Completion events must pop in nondecreasing time order wherever the
/// theory says they do: always on single-pool placements (one shared KV
/// pool means no cross-clock page liberation), and empirically on the
/// golden multi-pool scenarios too.
#[test]
fn event_queue_completion_pops_are_monotone() {
    for s in scenarios() {
        let single_pool = matches!(s.name, "single-node" | "sharded");
        let (_, ev) = run_event(&s);
        let regressions = ev.queue().completion_time_regressions();
        if single_pool {
            assert_eq!(regressions, 0, "single-pool {} must pop monotonically", s.name);
        } else {
            // Multi-pool bounded configs *may* legally regress (a lagging
            // node can batch in the past with pages freed in the future);
            // these two goldens happen not to — pin that.
            assert_eq!(regressions, 0, "{} regressed unexpectedly", s.name);
        }
    }
}

/// Engine-level streaming determinism: serving a sorted (Poisson) workload
/// lazily from a `WorkloadStream` must produce the exact report of
/// pre-submitting the materialized trace — on a multi-node placement, with
/// arrivals landing mid-flight.
#[test]
fn streamed_poisson_run_matches_presubmitted() {
    let spec = WorkloadSpec::kv_pressure().with_poisson_arrivals(3_000_000);
    let models = [ModelId::Llama2_7b, ModelId::Llama2_13b];
    let build = || {
        EventEngine::with_placement(
            MugiAccelerator::new(64),
            Scheduler::with_kv(SchedulerConfig::default(), KvConfig::unbounded()),
            ExecutorConfig::default(),
            Placement::data_parallel(NocConfig { rows: 2, cols: 2 }),
        )
    };

    let trace = synthetic_requests(97, 40, &models, spec);
    let mut pre = build();
    for r in &trace {
        pre.submit(*r);
    }
    let presubmitted = pre.run();

    let mut streaming = build();
    let streamed = streaming.run_stream(WorkloadStream::new(97, &models, spec).take(40));

    assert_eq!(presubmitted, streamed, "lazy submission must not perturb the report");
    assert_eq!(streaming.queue().arrival_time_regressions(), 0);
    // 40 arrival events + one completion per micro-batch.
    assert_eq!(streaming.queue().pop_count(), 40 + streamed.micro_batches);
}

/// The 1M-request soak (ignored in the default tier; CI runs it with
/// `--include-ignored`). Proves the two scale claims end to end:
///
/// * **Memory stays O(live sessions):** the peak live-session count is
///   bounded by the arrival/service equilibrium (thousands), not by the
///   million-request horizon, and the event queue never holds more than
///   one event per node plus the staged arrival.
/// * **Nothing is lost or reordered:** the fold's order-sensitive identity
///   checksum over every retired request matches the checksum computed
///   independently from a second pass of the same seeded stream.
#[test]
#[ignore = "1M-request soak; run with --include-ignored"]
fn soak_one_million_requests_in_bounded_memory() {
    const COUNT: usize = 1_000_000;
    let spec =
        WorkloadSpec { prompt_tokens: (8, 24), output_tokens: (1, 4), ..WorkloadSpec::default() }
            // ~0.6x the batched service rate (~1.8e9 cycles/request on the 64-lane
            // node), so the arrival/service equilibrium settles at a few dozen live
            // sessions — open-loop load, not an instantaneous burst.
            .with_poisson_arrivals(3_000_000_000);
    let models = [MODEL];

    let mut engine =
        EventEngine::new(MugiAccelerator::new(64), Scheduler::new(SchedulerConfig::default()));
    let report = engine.run_stream_folded(WorkloadStream::new(4242, &models, spec).take(COUNT));

    assert_eq!(report.fold.requests, COUNT as u64, "every request must retire");

    // Independent single-pass ground truth from a fresh stream.
    let mut checksum = 0u64;
    let mut output_tokens = 0u64;
    let mut prompt_tokens = 0u64;
    for (id, r) in WorkloadStream::new(4242, &models, spec).take(COUNT).enumerate() {
        checksum = StatsFold::fold_identity(checksum, id as u64, r.prompt_tokens, r.output_tokens);
        prompt_tokens += r.prompt_tokens as u64;
        output_tokens += r.output_tokens as u64;
    }
    assert_eq!(report.fold.identity_checksum, checksum, "identity checksum must match");
    assert_eq!(report.fold.prompt_tokens, prompt_tokens);
    assert_eq!(report.fold.output_tokens, output_tokens);

    // O(live sessions), not O(total requests).
    assert!(
        report.peak_live_sessions < COUNT / 100,
        "peak live sessions {} is not bounded by the arrival/service equilibrium",
        report.peak_live_sessions
    );
    assert!(
        report.peak_event_queue <= report.nodes + 1,
        "event queue grew past one completion per node plus the staged arrival: {}",
        report.peak_event_queue
    );
    assert_eq!(engine.queue().arrival_time_regressions(), 0);
    assert!(report.throughput_tokens_per_s > 0.0);
}
