//! Paged KV-cache management: the pool of physical pages each node owns and
//! the per-session page tables that map onto it.
//!
//! The serving claims of the paper rest on the KV cache being a first-class,
//! finite resource. This module models it the way PagedAttention-style
//! servers do:
//!
//! * a [`KvPool`] holds a bounded number of physical *pages*, each covering
//!   [`KvConfig::page_tokens`] KV entries (the same granularity the executor
//!   buckets decode contexts at for trace caching);
//! * every admitted session owns a [`PageTable`] of page handles; prefill
//!   chunks and decode growth allocate pages from the pool of the node the
//!   session's KV lives on;
//! * when the pool runs dry the scheduler *preempts*: the most recently
//!   admitted page-holder is evicted, drops its pages, re-enters the waiting
//!   queue and pays re-prefill on readmission (recompute-style preemption) —
//!   or, under [`PreemptionMode::Swap`] with disaggregated placement, its
//!   pages are paged out over the NoC into a prefill pool instead
//!   ([`PageTable::migrate`]) and paged back in later, trading re-prefill
//!   compute for transfer energy and latency;
//! * under disaggregated placement a completed prefill's pages *migrate*
//!   from their prefill pool to a decode pool ([`PageTable::migrate`]),
//!   which the executor charges as a NoC transfer, rather than being
//!   recomputed on the decode side.
//!
//! An **unbounded** configuration ([`KvConfig::unbounded`], the default)
//! disables all bookkeeping: no pages are tracked, no session is ever
//! rejected, deferred or preempted, and the runtime behaves bit-identically
//! to a world without KV accounting. That makes the bounded path a pure
//! opt-in and gives the property tests a regression oracle.
//!
//! Physically, pages live in a two-level free bitmap per pool and are
//! handed out as [`Extent`]s — maximal runs of contiguous pages, lowest
//! address first — so a session's table is a short extent list, decode
//! growth is usually an in-place extension of its last extent, and
//! release/migration move extents rather than pages. None of this is
//! observable in the simulation: all accounting is in page *counts* and
//! bytes, allocation succeeds exactly when `free >= n`, and the pre-extent
//! free-list allocator is retained in [`oracle`] as the property-test
//! reference.
//!
//! Pool invariants (property-tested in `tests/proptests.rs`):
//!
//! * a page is mapped by at most one table at a time (never double-mapped);
//! * `free + Σ mapped == capacity` after any sequence of operations;
//! * a table always maps at least [`pages_for`]`(kv_len)` pages while its
//!   session is live;
//! * the extent allocator maps the same page *set* as [`oracle`] under
//!   identical operation sequences.

// mugi-lint: allow(hot-path-panic, "bitmap word/summary indices are derived from page ids bounded by the pool capacity, and panics enforce allocator invariants (exhausted-pool scan, double map/free); a deterministic simulator must abort on corrupt pool state rather than guess")

use mugi_numerics::cast::{u32_from_usize, usize_from_u32, usize_from_u64};
use mugi_workloads::models::ModelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// KV-cache precision in bits per value (BF16), used to convert a session's
/// KV length into NoC transfer bytes when pages migrate between pools.
pub const KV_BITS: usize = 16;

/// Handle of one physical KV page inside a [`KvPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Pages needed to hold `tokens` KV entries at `page_tokens` granularity.
/// Zero tokens still occupy one page — a session's table is never empty
/// while the session is live, so a zero-context decode maps to exactly one
/// page (see the boundary regression test in `scheduler.rs`).
///
/// # Panics
/// Panics if `page_tokens` is zero.
pub fn pages_for(tokens: usize, page_tokens: usize) -> usize {
    assert!(page_tokens > 0, "page_tokens must be non-zero");
    tokens.div_ceil(page_tokens).max(1)
}

/// What happens to a session evicted from a full KV pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PreemptionMode {
    /// Drop the victim's pages; the victim re-enters the waiting queue and
    /// recomputes its whole KV by prefilling again (the pre-disaggregation
    /// behaviour, and the only possible one under colocated placement).
    #[default]
    Recompute,
    /// Page the victim's KV out over the NoC into a prefill pool instead of
    /// dropping it: the victim keeps its cache and is paged back into a
    /// decode pool later (swap-style preemption). Only possible under
    /// disaggregated placement when a prefill pool has room; falls back to
    /// [`PreemptionMode::Recompute`] otherwise.
    Swap,
}

/// Projected-TTFT admission bound: reject a submission when the prefill
/// backlog queued ahead of it at its arrival cycle (plus the new prompt)
/// projects past the target.
///
/// The projection is deliberately crude — backlog tokens × a static
/// cycles-per-prefill-token service-rate estimate, counting only sessions
/// that arrive no later than the new request — but unlike the blunt
/// queue-depth bound it scales with *work*, so a few long prompts and many
/// short ones are treated alike.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SloConfig {
    /// Maximum acceptable projected TTFT in cycles.
    pub target_ttft_cycles: u64,
    /// Service-rate estimate: cycles one prefill token costs end to end.
    pub cycles_per_prefill_token: u64,
}

/// Static configuration of the paged KV cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KvConfig {
    /// KV entries per page. Must match the executor's trace-bucketing
    /// granularity (`ExecutorConfig::kv_bucket`) for the paged view and the
    /// trace-cache view of a context to agree.
    pub page_tokens: usize,
    /// Physical pages per node, or `None` for an unbounded pool (no
    /// bookkeeping at all — the pre-paging behaviour).
    pub node_pages: Option<usize>,
    /// Maximum concurrently live (admitted, unfinished) sessions; further
    /// [`Scheduler::try_submit`](crate::Scheduler::try_submit) calls are
    /// rejected — the backpressure signal a workload generator sees. `None`
    /// admits everything.
    pub max_live_sessions: Option<usize>,
    /// What eviction from a full pool costs the victim: recompute (default)
    /// or a NoC swap-out to a prefill pool (disaggregated placement only).
    pub preemption: PreemptionMode,
    /// Optional projected-TTFT admission bound (off by default).
    pub slo: Option<SloConfig>,
}

impl Default for KvConfig {
    /// Unbounded pool, 128-token pages, no admission bound.
    fn default() -> Self {
        KvConfig::unbounded()
    }
}

impl KvConfig {
    /// No capacity limit and no admission bound: bit-identical to a runtime
    /// without KV accounting.
    pub fn unbounded() -> Self {
        KvConfig {
            page_tokens: 128,
            node_pages: None,
            max_live_sessions: None,
            preemption: PreemptionMode::Recompute,
            slo: None,
        }
    }

    /// A bounded pool of `node_pages` pages of `page_tokens` KV entries on
    /// every node.
    ///
    /// # Panics
    /// Panics if `page_tokens` or `node_pages` is zero.
    pub fn bounded(page_tokens: usize, node_pages: usize) -> Self {
        assert!(page_tokens > 0, "page_tokens must be non-zero");
        assert!(node_pages > 0, "node_pages must be non-zero");
        KvConfig { page_tokens, node_pages: Some(node_pages), ..KvConfig::unbounded() }
    }

    /// Sizes a bounded pool from a per-node KV-byte budget and the dominant
    /// model's dimensions: `node_pages = budget / bytes-per-page`, where one
    /// page holds `page_tokens` BF16 KV entries across all layers and KV
    /// heads of `model`.
    ///
    /// # Panics
    /// Panics if `page_tokens` is zero or the budget is smaller than one
    /// page.
    pub fn for_budget(model: ModelId, node_kv_bytes: u64, page_tokens: usize) -> Self {
        let page_bytes = model.config().kv_cache_bytes(page_tokens, KV_BITS).max(1);
        let pages = node_kv_bytes / page_bytes;
        assert!(pages > 0, "KV budget of {node_kv_bytes} B holds less than one page");
        KvConfig::bounded(page_tokens, usize_from_u64(pages))
    }

    /// Sets the admission bound on concurrently live sessions.
    pub fn with_max_live_sessions(mut self, bound: usize) -> Self {
        assert!(bound > 0, "max_live_sessions must be non-zero");
        self.max_live_sessions = Some(bound);
        self
    }

    /// Switches preemption to swap-style page-out over the NoC
    /// ([`PreemptionMode::Swap`]); meaningful only under disaggregated
    /// placement, where prefill pools exist to swap into.
    pub fn with_swap_preemption(mut self) -> Self {
        self.preemption = PreemptionMode::Swap;
        self
    }

    /// Enables the projected-TTFT admission bound.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        assert!(slo.target_ttft_cycles > 0, "target_ttft_cycles must be non-zero");
        assert!(slo.cycles_per_prefill_token > 0, "cycles_per_prefill_token must be non-zero");
        self.slo = Some(slo);
        self
    }

    /// Whether the pool has a capacity limit.
    pub fn is_bounded(&self) -> bool {
        self.node_pages.is_some()
    }
}

/// Why a submission was rejected by admission control.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdmissionError {
    /// The live-session queue is at its configured depth bound; retry after
    /// some sessions finish.
    QueueFull {
        /// Sessions currently live (admitted, unfinished).
        live: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The request can never fit: even alone it needs more pages than one
    /// node's pool holds, so admitting it would deadlock that pool.
    NeverFits {
        /// Pages the request needs at its peak (`prompt + output` tokens).
        needed_pages: usize,
        /// Pages a single node's pool holds ([`KvConfig::node_pages`]).
        capacity_pages: usize,
    },
    /// The projected TTFT — the queued prefill backlog plus this prompt,
    /// scaled by the [`SloConfig`] service-rate estimate — exceeds the
    /// configured target; admitting the request would miss its deadline.
    SloViolation {
        /// Projected TTFT of the request in cycles.
        projected_cycles: u64,
        /// The configured bound ([`SloConfig::target_ttft_cycles`]).
        target_cycles: u64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { live, bound } => {
                write!(f, "admission queue full ({live} live sessions at bound {bound})")
            }
            AdmissionError::NeverFits { needed_pages, capacity_pages } => write!(
                f,
                "request needs {needed_pages} KV pages but the pool holds only {capacity_pages}"
            ),
            AdmissionError::SloViolation { projected_cycles, target_cycles } => write!(
                f,
                "projected TTFT of {projected_cycles} cycles exceeds the {target_cycles}-cycle \
                 SLO target"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Free-page headroom of one scheduler pool, as placement logic sees it.
///
/// An unbounded configuration models no pages at all, so its headroom is a
/// distinct *unbounded* state — not a `None` an out-of-range pool index
/// could alias. Keeping the two apart matters: placement ranks nodes by
/// headroom, and a silent indexing bug that read as "infinitely free" would
/// win every placement decision instead of failing loudly (the scheduler
/// asserts the index whenever pools are bounded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvFreePages {
    /// The configuration is unbounded: no pool exists and nothing can run
    /// out of pages.
    Unbounded,
    /// A bounded pool with this many pages currently free.
    Pages(usize),
}

impl KvFreePages {
    /// Free-page count for placement ranking: an unbounded pool outranks
    /// every bounded one.
    pub fn ranking(self) -> usize {
        match self {
            KvFreePages::Unbounded => usize::MAX,
            KvFreePages::Pages(free) => free,
        }
    }

    /// Whether `pages` more pages can be allocated right now.
    pub fn fits(self, pages: usize) -> bool {
        match self {
            KvFreePages::Unbounded => true,
            KvFreePages::Pages(free) => free >= pages,
        }
    }

    /// The bounded free-page count, or `None` for an unbounded pool.
    pub fn pages(self) -> Option<usize> {
        match self {
            KvFreePages::Unbounded => None,
            KvFreePages::Pages(free) => Some(free),
        }
    }
}

/// A run of `len` physically contiguous KV pages starting at page `start` —
/// the unit the extent allocator hands out and reclaims. A session's whole
/// context is typically one or two extents, so releasing, migrating or
/// hashing a table is O(extents), not O(pages).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Extent {
    /// First page of the run.
    pub start: u32,
    /// Pages in the run (never zero for a mapped extent).
    pub len: u32,
}

impl Extent {
    /// One past the last page of the run.
    pub fn end(self) -> u32 {
        self.start + self.len
    }
}

/// Bits per free-bitmap word.
const WORD_BITS: usize = 64;

/// A contiguous bit mask of `len` bits starting at bit `lo` (`lo + len` must
/// not exceed the word).
fn bit_mask(lo: usize, len: usize) -> u64 {
    debug_assert!(len >= 1 && lo + len <= WORD_BITS);
    (u64::MAX >> (WORD_BITS - len)) << lo
}

/// A bounded pool of physical KV pages (one per node under data-parallel
/// placement; one aggregate pool under sharded placement).
///
/// Free pages are tracked in a two-level bitmap: `words[w]` holds one bit
/// per page (set = free) and `summary` holds one bit per word (set = the
/// word has a free page), so finding the lowest free page is two word scans
/// plus two `trailing_zeros`, and allocation hands out *extents* — maximal
/// runs of contiguous free pages, lowest address first. Allocation is
/// deterministic, never fails while `free_pages() >= n` (fragmentation
/// yields more extents, never a refusal), and a page is never mapped twice:
/// `free + Σ mapped == capacity` is property-tested against the retained
/// pre-extent free-list implementation ([`oracle`]).
#[derive(Clone, Debug)]
pub struct KvPool {
    capacity: usize,
    /// Count of set bits across `words`.
    free: usize,
    /// One bit per page; set = free.
    words: Vec<u64>,
    /// One bit per word of `words`; set = that word is non-zero.
    summary: Vec<u64>,
    peak_used: usize,
}

impl KvPool {
    /// A pool of `capacity` free pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "a KV pool needs at least one page");
        let _ = u32_from_usize(capacity); // page ids must stay u32-addressable
        let n_words = capacity.div_ceil(WORD_BITS);
        let mut words = vec![u64::MAX; n_words];
        let tail = capacity % WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last = bit_mask(0, tail);
            }
        }
        let mut summary = vec![0u64; n_words.div_ceil(WORD_BITS)];
        for (w, word) in words.iter().enumerate() {
            if *word != 0 {
                if let Some(s) = summary.get_mut(w / WORD_BITS) {
                    *s |= 1 << (w % WORD_BITS);
                }
            }
        }
        KvPool { capacity, free: capacity, words, summary, peak_used: 0 }
    }

    /// Total pages the pool holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently unmapped.
    pub fn free_pages(&self) -> usize {
        self.free
    }

    /// Pages currently mapped by some table.
    pub fn used_pages(&self) -> usize {
        self.capacity - self.free
    }

    /// High-water mark of mapped pages.
    pub fn peak_used_pages(&self) -> usize {
        self.peak_used
    }

    /// The lowest free page, via the summary level then the word level.
    ///
    /// # Panics
    /// Panics if no page is free (callers check `free` first).
    fn lowest_free_page(&self) -> u32 {
        for (sw, &bits) in self.summary.iter().enumerate() {
            if bits != 0 {
                let w = sw * WORD_BITS + usize_from_u32(bits.trailing_zeros());
                let word = self.words[w];
                return u32_from_usize(w * WORD_BITS) + word.trailing_zeros();
            }
        }
        panic!("lowest_free_page on an exhausted pool");
    }

    /// Length of the run of free pages starting exactly at `start`, capped
    /// at `cap` (zero when `start` itself is not free).
    fn free_run_len(&self, start: u32, cap: u32) -> u32 {
        let mut len = 0u32;
        let mut w = start as usize / WORD_BITS;
        let mut b = start % u32_from_usize(WORD_BITS);
        while len < cap && w < self.words.len() {
            // Shifting in zeros from the top means `trailing_zeros` of the
            // complement never over-counts past the word's remaining bits.
            let run = (!(self.words[w] >> b)).trailing_zeros();
            len += run;
            if run < u32_from_usize(WORD_BITS) - b {
                break;
            }
            w += 1;
            b = 0;
        }
        len.min(cap)
    }

    /// Flips the `len` bits from `page` on: `set` marks them free, `!set`
    /// marks them used. Keeps `summary` coherent. Debug-asserts the bits
    /// were all in the opposite state (double-free / double-map detection).
    fn flip_range(&mut self, page: u32, len: u32, set: bool) {
        let mut at = page as usize;
        let end = at + len as usize;
        debug_assert!(end <= self.capacity, "page run beyond pool capacity");
        while at < end {
            let w = at / WORD_BITS;
            let b = at % WORD_BITS;
            let take = (WORD_BITS - b).min(end - at);
            let mask = bit_mask(b, take);
            if set {
                debug_assert_eq!(self.words[w] & mask, 0, "freeing a page that is already free");
                self.words[w] |= mask;
                self.summary[w / WORD_BITS] |= 1 << (w % WORD_BITS);
            } else {
                debug_assert_eq!(self.words[w] & mask, mask, "mapping a page that is not free");
                self.words[w] &= !mask;
                if self.words[w] == 0 {
                    self.summary[w / WORD_BITS] &= !(1 << (w % WORD_BITS));
                }
            }
            at += take;
        }
    }

    /// Allocates exactly `n` pages as lowest-address-first extents appended
    /// to `out`, or returns `false` (pool and `out` unchanged) if fewer than
    /// `n` pages are free. Fragmentation costs extra extents, never a
    /// spurious failure — the success condition is `free_pages() >= n`,
    /// exactly as with the pre-extent free list.
    pub fn alloc_extents(&mut self, n: usize, out: &mut Vec<Extent>) -> bool {
        if self.free < n {
            return false;
        }
        let mut remaining = u32_from_usize(n);
        while remaining > 0 {
            let start = self.lowest_free_page();
            let len = self.free_run_len(start, remaining);
            self.flip_range(start, len, false);
            out.push(Extent { start, len });
            remaining -= len;
        }
        self.free -= n;
        self.peak_used = self.peak_used.max(self.used_pages());
        true
    }

    /// Extends an allocation in place: takes up to `want` free pages
    /// starting exactly at page `at`, returning how many were taken (zero if
    /// `at` is used or past the end). The O(1)-ish decode-growth path: when
    /// the pages right after a table's last extent are still free, growth
    /// lengthens that extent instead of adding one.
    pub fn extend_at(&mut self, at: u32, want: u32) -> u32 {
        if at as usize >= self.capacity {
            return 0;
        }
        let got = self.free_run_len(at, want);
        if got > 0 {
            self.flip_range(at, got, false);
            self.free -= usize_from_u32(got);
            self.peak_used = self.peak_used.max(self.used_pages());
        }
        got
    }

    /// Returns an extent's pages to the pool.
    ///
    /// # Panics
    /// Panics (in debug builds) if any page of the run is already free —
    /// a sign a page was double-mapped or released twice.
    pub fn release_run(&mut self, extent: Extent) {
        self.flip_range(extent.start, extent.len, true);
        self.free += extent.len as usize;
        debug_assert!(self.free <= self.capacity, "released more pages than the pool holds");
    }
}

/// The per-session map from a session's KV entries to the physical pages of
/// the pool its KV lives on — a compact list of [`Extent`]s plus a cached
/// page count, so growth is usually an in-place extension of the last
/// extent and release/migration walk extents, not pages.
///
/// `home` pins the session to one pool once its first page is allocated:
/// under data-parallel placement a session's KV physically lives on one
/// node, so only micro-batches formed for that node may schedule it. The
/// table forgets its home when it releases all pages (eviction or finish).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTable {
    extents: Vec<Extent>,
    pages: usize,
    home: Option<usize>,
}

impl PageTable {
    /// An empty, homeless table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.pages
    }

    /// The mapped extents, in allocation order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Every mapped page handle, in extent order (a test/diagnostic view —
    /// hot paths never enumerate pages).
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        self.extents.iter().flat_map(|e| (e.start..e.end()).map(PageId))
    }

    /// Pool index the session's KV lives on, or `None` while no page is
    /// mapped.
    pub fn home(&self) -> Option<usize> {
        self.home
    }

    /// Whether the table may allocate from pool `pool` (homeless, or already
    /// homed there).
    pub fn admissible_on(&self, pool: usize) -> bool {
        self.home.is_none_or(|h| h == pool)
    }

    /// Grows the table to `target_pages` mapped pages out of `pool`
    /// (pool index `pool_id`). No-op if the table already maps that many.
    /// Returns `false` (nothing allocated) if the pool lacks free pages.
    ///
    /// Growth first tries to lengthen the table's last extent in place
    /// (the common decode step: the adjacent pages are usually still free),
    /// and only then asks the pool for fresh extents.
    ///
    /// # Panics
    /// Panics if the table is homed to a different pool.
    pub fn grow(&mut self, pool_id: usize, pool: &mut KvPool, target_pages: usize) -> bool {
        assert!(self.admissible_on(pool_id), "page table homed to a different pool");
        let needed = target_pages.saturating_sub(self.pages);
        if needed == 0 {
            return true;
        }
        if pool.free_pages() < needed {
            return false;
        }
        let mut remaining = u32_from_usize(needed);
        if let Some(last) = self.extents.last_mut() {
            let got = pool.extend_at(last.end(), remaining);
            last.len += got;
            remaining -= got;
        }
        if remaining > 0 {
            let ok = pool.alloc_extents(usize_from_u32(remaining), &mut self.extents);
            debug_assert!(ok, "free pages were checked before growing");
        }
        self.pages = target_pages;
        self.home = Some(pool_id);
        true
    }

    /// Releases every mapped page back into `pool` and forgets the home.
    /// Returns how many pages were released.
    pub fn release_all(&mut self, pool: &mut KvPool) -> usize {
        for e in self.extents.drain(..) {
            pool.release_run(e);
        }
        let released = self.pages;
        self.pages = 0;
        self.home = None;
        released
    }

    /// Moves every mapped page from `from` (the current home) into `to`
    /// (pool index `to_id`), re-homing the table — the paged-KV half of a
    /// prefill→decode handoff or a swap-out, the physical movement being
    /// charged separately as a NoC transfer. Returns the number of pages
    /// migrated, or `None` — with both pools and the table unchanged — if
    /// `to` lacks the free pages.
    ///
    /// # Panics
    /// Panics if the table maps no pages (nothing to migrate) or if `to_id`
    /// is the table's current home (a self-migration is a bug).
    pub fn migrate(&mut self, from: &mut KvPool, to_id: usize, to: &mut KvPool) -> Option<usize> {
        assert!(!self.extents.is_empty(), "an empty table has nothing to migrate");
        assert_ne!(self.home, Some(to_id), "migration target is already the home pool");
        let count = self.pages;
        if to.free_pages() < count {
            return None;
        }
        for e in self.extents.drain(..) {
            from.release_run(e);
        }
        let ok = to.alloc_extents(count, &mut self.extents);
        debug_assert!(ok, "free pages were checked before migrating");
        self.home = Some(to_id);
        Some(count)
    }
}

/// The pre-extent page allocator — a LIFO `Vec<PageId>` free list and
/// per-page tables — retained verbatim as the reference implementation the
/// extent allocator is property-tested against (`tests/proptests.rs` drives
/// both on identical operation sequences and compares mapped page *sets*
/// and every count). Not used on any serving path.
pub mod oracle {
    use super::{u32_from_usize, PageId};

    /// Pre-extent [`KvPool`](super::KvPool): an explicit LIFO free list.
    #[derive(Clone, Debug)]
    pub struct Pool {
        capacity: usize,
        free: Vec<PageId>,
        peak_used: usize,
    }

    impl Pool {
        /// A pool of `capacity` free pages.
        ///
        /// # Panics
        /// Panics if `capacity` is zero.
        pub fn bounded(capacity: usize) -> Self {
            assert!(capacity > 0, "a KV pool needs at least one page");
            // Reversed so page p0 is handed out first (LIFO free list).
            let free = (0..u32_from_usize(capacity)).rev().map(PageId).collect();
            Pool { capacity, free, peak_used: 0 }
        }

        /// Total pages the pool holds.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// Pages currently unmapped.
        pub fn free_pages(&self) -> usize {
            self.free.len()
        }

        /// Pages currently mapped by some table.
        pub fn used_pages(&self) -> usize {
            self.capacity - self.free.len()
        }

        /// High-water mark of mapped pages.
        pub fn peak_used_pages(&self) -> usize {
            self.peak_used
        }

        /// Takes `n` pages from the free list, or `None` (pool unchanged)
        /// if fewer than `n` are free.
        pub fn alloc(&mut self, n: usize) -> Option<Vec<PageId>> {
            if self.free.len() < n {
                return None;
            }
            let pages = self.free.split_off(self.free.len() - n);
            self.peak_used = self.peak_used.max(self.used_pages());
            Some(pages)
        }

        /// Returns pages to the free list.
        pub fn release(&mut self, pages: Vec<PageId>) {
            debug_assert!(
                self.free.len() + pages.len() <= self.capacity,
                "released more pages than the pool holds"
            );
            self.free.extend(pages);
        }
    }

    /// Pre-extent [`PageTable`](super::PageTable): one handle per page.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct Table {
        pages: Vec<PageId>,
        home: Option<usize>,
    }

    impl Table {
        /// An empty, homeless table.
        pub fn new() -> Self {
            Table::default()
        }

        /// Pages currently mapped.
        pub fn mapped_pages(&self) -> usize {
            self.pages.len()
        }

        /// The mapped page handles.
        pub fn pages(&self) -> &[PageId] {
            &self.pages
        }

        /// Pool index the session's KV lives on, or `None` while no page
        /// is mapped.
        pub fn home(&self) -> Option<usize> {
            self.home
        }

        /// Whether the table may allocate from pool `pool`.
        pub fn admissible_on(&self, pool: usize) -> bool {
            self.home.is_none_or(|h| h == pool)
        }

        /// Grows the table to `target_pages` mapped pages out of `pool`.
        ///
        /// # Panics
        /// Panics if the table is homed to a different pool.
        pub fn grow(&mut self, pool_id: usize, pool: &mut Pool, target_pages: usize) -> bool {
            assert!(self.admissible_on(pool_id), "page table homed to a different pool");
            let needed = target_pages.saturating_sub(self.pages.len());
            if needed == 0 {
                return true;
            }
            let Some(mut fresh) = pool.alloc(needed) else {
                return false;
            };
            self.pages.append(&mut fresh);
            self.home = Some(pool_id);
            true
        }

        /// Releases every mapped page back into `pool` and forgets the
        /// home. Returns how many pages were released.
        pub fn release_all(&mut self, pool: &mut Pool) -> usize {
            let released = self.pages.len();
            pool.release(std::mem::take(&mut self.pages));
            self.home = None;
            released
        }

        /// Moves every mapped page from `from` into `to` (pool index
        /// `to_id`), re-homing the table.
        ///
        /// # Panics
        /// Panics if the table maps no pages or `to_id` is already home.
        pub fn migrate(&mut self, from: &mut Pool, to_id: usize, to: &mut Pool) -> Option<usize> {
            assert!(!self.pages.is_empty(), "an empty table has nothing to migrate");
            assert_ne!(self.home, Some(to_id), "migration target is already the home pool");
            let count = self.pages.len();
            let fresh = to.alloc(count)?;
            from.release(std::mem::replace(&mut self.pages, fresh));
            self.home = Some(to_id);
            Some(count)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounds_up_and_never_returns_zero() {
        assert_eq!(pages_for(0, 128), 1, "an empty context still owns one page");
        assert_eq!(pages_for(1, 128), 1);
        assert_eq!(pages_for(128, 128), 1);
        assert_eq!(pages_for(129, 128), 2);
        assert_eq!(pages_for(4096, 128), 32);
    }

    #[test]
    fn pool_alloc_release_round_trips_and_tracks_peak() {
        let mut pool = KvPool::bounded(4);
        assert_eq!((pool.capacity(), pool.free_pages(), pool.used_pages()), (4, 4, 0));
        let mut a = Vec::new();
        assert!(pool.alloc_extents(3, &mut a));
        assert_eq!(a, vec![Extent { start: 0, len: 3 }], "lowest-address-first, one run");
        assert_eq!((pool.free_pages(), pool.used_pages()), (1, 3));
        let mut b = Vec::new();
        assert!(!pool.alloc_extents(2, &mut b), "over-allocation must fail");
        assert!(b.is_empty());
        assert_eq!(pool.free_pages(), 1, "failed alloc leaves the pool unchanged");
        for e in a {
            pool.release_run(e);
        }
        assert_eq!((pool.free_pages(), pool.used_pages()), (4, 0));
        assert_eq!(pool.peak_used_pages(), 3);
    }

    #[test]
    fn fragmented_pool_hands_out_multiple_extents_but_never_refuses() {
        let mut pool = KvPool::bounded(8);
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        assert!(pool.alloc_extents(3, &mut a)); // pages 0..3
        assert!(pool.alloc_extents(2, &mut b)); // pages 3..5
        assert!(pool.alloc_extents(3, &mut c)); // pages 5..8
                                                // Free the two outer allocations: holes at 0..3 and 5..8.
        for e in a.drain(..).chain(c.drain(..)) {
            pool.release_run(e);
        }
        assert_eq!(pool.free_pages(), 6);
        // Six pages are free but no contiguous run of six exists: the
        // allocation must still succeed, as two extents.
        let mut d = Vec::new();
        assert!(pool.alloc_extents(6, &mut d), "free >= n must always succeed");
        assert_eq!(d, vec![Extent { start: 0, len: 3 }, Extent { start: 5, len: 3 }]);
        assert_eq!(pool.free_pages(), 0);
    }

    #[test]
    fn extent_runs_cross_bitmap_word_boundaries() {
        // 130 pages spans three bitmap words; one allocation must come back
        // as a single extent crossing both boundaries.
        let mut pool = KvPool::bounded(130);
        let mut a = Vec::new();
        assert!(pool.alloc_extents(130, &mut a));
        assert_eq!(a, vec![Extent { start: 0, len: 130 }]);
        assert_eq!((pool.free_pages(), pool.used_pages()), (0, 130));
        for e in a {
            pool.release_run(e);
        }
        assert_eq!(pool.free_pages(), 130);
        // After a release the summary level must see the words again.
        let mut b = Vec::new();
        assert!(pool.alloc_extents(65, &mut b));
        assert_eq!(b, vec![Extent { start: 0, len: 65 }]);
    }

    #[test]
    fn decode_growth_extends_the_last_extent_in_place() {
        let mut pool = KvPool::bounded(8);
        let mut table = PageTable::new();
        assert!(table.grow(0, &mut pool, 1));
        assert_eq!(table.extents(), &[Extent { start: 0, len: 1 }]);
        // The adjacent page is free: growth lengthens the extent, O(1).
        assert!(table.grow(0, &mut pool, 2));
        assert_eq!(table.extents(), &[Extent { start: 0, len: 2 }]);
        // A neighbour claims the next page; further growth needs a second
        // extent past the hole.
        let mut other = PageTable::new();
        assert!(other.grow(0, &mut pool, 1));
        assert_eq!(other.extents(), &[Extent { start: 2, len: 1 }]);
        assert!(table.grow(0, &mut pool, 4));
        assert_eq!(table.extents(), &[Extent { start: 0, len: 2 }, Extent { start: 3, len: 2 }]);
        assert_eq!(table.mapped_pages(), 4);
        assert_eq!(
            table.page_ids().collect::<Vec<_>>(),
            vec![PageId(0), PageId(1), PageId(3), PageId(4)]
        );
    }

    #[test]
    fn page_table_grows_homes_and_releases() {
        let mut pool = KvPool::bounded(8);
        let mut table = PageTable::new();
        assert_eq!(table.home(), None);
        assert!(table.admissible_on(0) && table.admissible_on(5));
        assert!(table.grow(2, &mut pool, 3));
        assert_eq!(table.mapped_pages(), 3);
        assert_eq!(table.home(), Some(2));
        assert!(table.admissible_on(2) && !table.admissible_on(0));
        // Growing to a smaller or equal target is a no-op.
        assert!(table.grow(2, &mut pool, 2));
        assert_eq!(table.mapped_pages(), 3);
        // Insufficient pool: table unchanged.
        assert!(!table.grow(2, &mut pool, 9));
        assert_eq!(table.mapped_pages(), 3);
        assert_eq!(pool.used_pages(), 3);
        assert_eq!(table.release_all(&mut pool), 3);
        assert_eq!(table.home(), None);
        assert_eq!(pool.free_pages(), 8);
    }

    #[test]
    fn migration_moves_pages_between_pools() {
        let mut src = KvPool::bounded(4);
        let mut dst = KvPool::bounded(3);
        let mut table = PageTable::new();
        assert!(table.grow(0, &mut src, 3));
        assert_eq!(table.migrate(&mut src, 1, &mut dst), Some(3));
        assert_eq!(table.home(), Some(1));
        assert_eq!((src.free_pages(), dst.free_pages()), (4, 0));
        assert_eq!(table.mapped_pages(), 3);
        // A destination without room leaves everything untouched.
        let mut tiny = KvPool::bounded(2);
        assert_eq!(table.migrate(&mut dst, 2, &mut tiny), None);
        assert_eq!(table.home(), Some(1));
        assert_eq!((dst.free_pages(), tiny.free_pages()), (0, 2));
        // Migrated pages release cleanly into the new home.
        assert_eq!(table.release_all(&mut dst), 3);
        assert_eq!(dst.free_pages(), 3);
    }

    #[test]
    #[should_panic(expected = "nothing to migrate")]
    fn empty_table_migration_rejected() {
        let mut a = KvPool::bounded(2);
        let mut b = KvPool::bounded(2);
        PageTable::new().migrate(&mut a, 1, &mut b);
    }

    #[test]
    #[should_panic(expected = "already the home pool")]
    fn self_migration_rejected() {
        let mut a = KvPool::bounded(2);
        let mut b = KvPool::bounded(2);
        let mut table = PageTable::new();
        table.grow(1, &mut a, 1);
        table.migrate(&mut a, 1, &mut b);
    }

    #[test]
    fn preemption_mode_and_slo_builders() {
        let kv = KvConfig::bounded(64, 32);
        assert_eq!(kv.preemption, PreemptionMode::Recompute, "recompute is the default");
        assert!(kv.slo.is_none(), "the SLO bound is off by default");
        let swap = kv.with_swap_preemption();
        assert_eq!(swap.preemption, PreemptionMode::Swap);
        let slo = SloConfig { target_ttft_cycles: 1_000, cycles_per_prefill_token: 10 };
        assert_eq!(kv.with_slo(slo).slo, Some(slo));
        let e = AdmissionError::SloViolation { projected_cycles: 1_200, target_cycles: 1_000 };
        assert!(e.to_string().contains("1200 cycles"), "{e}");
    }

    #[test]
    #[should_panic(expected = "target_ttft_cycles must be non-zero")]
    fn zero_slo_target_rejected() {
        KvConfig::unbounded()
            .with_slo(SloConfig { target_ttft_cycles: 0, cycles_per_prefill_token: 1 });
    }

    #[test]
    #[should_panic(expected = "homed to a different pool")]
    fn cross_pool_growth_rejected() {
        let mut pool = KvPool::bounded(2);
        let mut table = PageTable::new();
        table.grow(0, &mut pool, 1);
        table.grow(1, &mut pool, 2);
    }

    #[test]
    fn config_constructors_and_budget_sizing() {
        let unbounded = KvConfig::default();
        assert!(!unbounded.is_bounded());
        assert_eq!(unbounded.page_tokens, 128);
        let bounded = KvConfig::bounded(64, 512).with_max_live_sessions(32);
        assert!(bounded.is_bounded());
        assert_eq!(bounded.node_pages, Some(512));
        assert_eq!(bounded.max_live_sessions, Some(32));
        // Llama 2 7B: one 128-token page is 128 × 2 × 32 × 128 × 32 layers
        // × 2 B (BF16) = 64 MiB of KV; a 1 GiB budget holds 16 pages.
        let page_bytes = ModelId::Llama2_7b.config().kv_cache_bytes(128, 16);
        let budget = KvConfig::for_budget(ModelId::Llama2_7b, 16 * page_bytes, 128);
        assert_eq!(budget.node_pages, Some(16));
    }

    #[test]
    #[should_panic(expected = "less than one page")]
    fn budget_below_one_page_rejected() {
        KvConfig::for_budget(ModelId::Llama2_7b, 1024, 128);
    }

    #[test]
    fn admission_errors_render() {
        let q = AdmissionError::QueueFull { live: 8, bound: 8 };
        assert!(q.to_string().contains("8 live sessions"));
        let f = AdmissionError::NeverFits { needed_pages: 40, capacity_pages: 16 };
        assert!(f.to_string().contains("40 KV pages"));
    }

    #[test]
    fn free_page_headroom_keeps_unbounded_distinct_from_bounded() {
        // Regression for the `unwrap_or(usize::MAX)` placement bug: the
        // unbounded state is a real variant, not an absent count, so a
        // bounded answer can never be confused with it.
        let unbounded = KvFreePages::Unbounded;
        assert_eq!(unbounded.ranking(), usize::MAX);
        assert!(unbounded.fits(usize::MAX));
        assert_eq!(unbounded.pages(), None);
        let bounded = KvFreePages::Pages(3);
        assert_eq!(bounded.ranking(), 3);
        assert!(bounded.fits(3));
        assert!(!bounded.fits(4));
        assert_eq!(bounded.pages(), Some(3));
        assert_ne!(unbounded, KvFreePages::Pages(usize::MAX), "MAX free is still bounded");
    }
}
