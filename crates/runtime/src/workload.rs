//! Deterministic synthetic serving workloads for examples, benchmarks and
//! tests: a seeded stream of requests with varied prompt/output lengths,
//! optionally staggered arrivals, spread round-robin across models.
//!
//! Two front-ends share one generator: [`synthetic_requests`] materializes a
//! trace up front (the classic path every golden test pins), while
//! [`WorkloadStream`] yields the *same* seeded sequence lazily, so an
//! event-driven engine can serve millions of requests without ever holding
//! the full trace in memory. Both draw from the RNG in the same per-request
//! order, so a fixed seed produces bit-identical requests either way.

use crate::request::Request;
use mugi_numerics::cast::{u64_from_f64, u64_from_usize};
use mugi_workloads::models::ModelId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How request arrival times are generated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ArrivalModel {
    /// Arrivals are drawn uniformly over `[0, arrival_spread_cycles]` (zero
    /// means a single burst at cycle zero). Closed-horizon and *unsorted*:
    /// request `i+1` may arrive before request `i`, so this model suits
    /// materialized traces, not lazy streaming.
    #[default]
    Spread,
    /// Open-loop Poisson arrivals: inter-arrival gaps are exponentially
    /// distributed with the given mean, so arrivals are nondecreasing and
    /// the stream has no horizon — the load level is `1 / mean_gap_cycles`
    /// requests per cycle regardless of how fast the server drains. This is
    /// the long-horizon model the streaming engine serves;
    /// `arrival_spread_cycles` is ignored under it.
    Poisson {
        /// Mean inter-arrival gap in cycles (the inverse arrival rate).
        mean_gap_cycles: u64,
    },
}

/// Prompt/output length and arrival ranges of a synthetic workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Inclusive prompt-length range in tokens.
    pub prompt_tokens: (usize, usize),
    /// Inclusive output-length range in tokens.
    pub output_tokens: (usize, usize),
    /// Horizon of the [`ArrivalModel::Spread`] uniform arrival draw (zero
    /// means a single burst at cycle zero). Ignored under
    /// [`ArrivalModel::Poisson`].
    pub arrival_spread_cycles: u64,
    /// Arrival-time model.
    pub arrival: ArrivalModel,
}

impl Default for WorkloadSpec {
    /// Prompts of 32–512 tokens, outputs of 4–48 tokens, one burst.
    fn default() -> Self {
        WorkloadSpec {
            prompt_tokens: (32, 512),
            output_tokens: (4, 48),
            arrival_spread_cycles: 0,
            arrival: ArrivalModel::Spread,
        }
    }
}

impl WorkloadSpec {
    /// A KV-pressure workload: moderate prompts but long generations
    /// (64–256 prompt, 48–96 output tokens) in a single burst, so the
    /// decode population's cache footprint keeps growing long after the
    /// prefills are done — the regime where a bounded
    /// [`KvPool`](crate::kv::KvPool) preempts. Used by the `kv_pressure`
    /// integration test and the `kv_sweep` bench.
    pub fn kv_pressure() -> Self {
        WorkloadSpec {
            prompt_tokens: (64, 256),
            output_tokens: (48, 96),
            ..WorkloadSpec::default()
        }
    }

    /// A mixed long-prefill workload: long prompts (768–2048 tokens) with
    /// moderate generations (32–64 tokens), arrivals spread over `spread`
    /// cycles so prefill chunks and decode slots keep contending for the
    /// whole run — the regime where colocated placement inflates decode
    /// TPOT and prefill/decode disaggregation pays off. Used by the
    /// `disagg` integration tests and the `disagg_sweep` bench.
    pub fn mixed_long_prefill(spread: u64) -> Self {
        WorkloadSpec {
            prompt_tokens: (768, 2048),
            output_tokens: (32, 64),
            arrival_spread_cycles: spread,
            ..WorkloadSpec::default()
        }
    }

    /// Switches the spec to open-loop Poisson arrivals with the given mean
    /// inter-arrival gap.
    ///
    /// # Panics
    /// Panics if `mean_gap_cycles` is zero (an infinite arrival rate).
    pub fn with_poisson_arrivals(mut self, mean_gap_cycles: u64) -> Self {
        assert!(mean_gap_cycles > 0, "mean_gap_cycles must be non-zero");
        self.arrival = ArrivalModel::Poisson { mean_gap_cycles };
        self
    }
}

/// A lazy, seeded request generator: yields the exact sequence
/// [`synthetic_requests`] would materialize for the same arguments, one
/// request at a time, in O(1) memory. Unbounded — callers `take(n)` or stop
/// consuming; the event engine feeds it straight into its arrival events.
#[derive(Clone, Debug)]
pub struct WorkloadStream {
    rng: SmallRng,
    models: Vec<ModelId>,
    spec: WorkloadSpec,
    /// Requests generated so far (drives the model round-robin).
    index: usize,
    /// Accumulated arrival clock under [`ArrivalModel::Poisson`].
    clock_cycles: u64,
}

impl WorkloadStream {
    /// Creates the stream. Same seed, models and spec as a
    /// [`synthetic_requests`] call — same requests.
    ///
    /// # Panics
    /// Panics if `models` is empty or a range is inverted.
    pub fn new(seed: u64, models: &[ModelId], spec: WorkloadSpec) -> Self {
        assert!(!models.is_empty(), "models must be non-empty");
        let (pmin, pmax) = spec.prompt_tokens;
        let (omin, omax) = spec.output_tokens;
        assert!(pmin >= 1 && pmin <= pmax, "invalid prompt range");
        assert!(omin >= 1 && omin <= omax, "invalid output range");
        WorkloadStream {
            rng: SmallRng::seed_from_u64(seed),
            models: models.to_vec(),
            spec,
            index: 0,
            clock_cycles: 0,
        }
    }

    /// Whether this stream's arrival sequence is nondecreasing (what lazy,
    /// event-driven consumption requires). True for Poisson arrivals and
    /// for a zero-horizon burst; false for a nonzero uniform spread.
    pub fn arrivals_sorted(&self) -> bool {
        match self.spec.arrival {
            ArrivalModel::Poisson { .. } => true,
            ArrivalModel::Spread => self.spec.arrival_spread_cycles == 0,
        }
    }
}

impl Iterator for WorkloadStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let (pmin, pmax) = self.spec.prompt_tokens;
        let (omin, omax) = self.spec.output_tokens;
        let model = self.models[self.index % self.models.len()];
        self.index += 1;
        // Draw order is part of the golden contract: prompt, output, then
        // (only when the model calls for one) a single arrival draw.
        let prompt = self.rng.gen_range(pmin..=pmax);
        let output = self.rng.gen_range(omin..=omax);
        let arrival = match self.spec.arrival {
            ArrivalModel::Spread => {
                if self.spec.arrival_spread_cycles == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=self.spec.arrival_spread_cycles)
                }
            }
            ArrivalModel::Poisson { mean_gap_cycles } => {
                self.clock_cycles += exponential_gap(&mut self.rng, mean_gap_cycles);
                self.clock_cycles
            }
        };
        Some(Request::new(model, prompt, output).arriving_at(arrival))
    }
}

/// One exponentially distributed inter-arrival gap with the given mean, by
/// inversion sampling: `-ln(1 - u) * mean` for uniform `u ∈ [0, 1)`,
/// rounded to whole cycles. `1 - u` never hits zero, so the gap is finite.
fn exponential_gap(rng: &mut SmallRng, mean_gap_cycles: u64) -> u64 {
    let u: f64 = rng.gen();
    u64_from_f64((-(1.0 - u).ln() * mean_gap_cycles as f64).round())
}

/// Generates `count` deterministic requests round-robined across `models`
/// with lengths drawn from `spec` (seeded `SmallRng`, like the experiment
/// drivers). Materializes the same sequence a [`WorkloadStream`] with the
/// same arguments yields lazily.
///
/// # Panics
/// Panics if `models` is empty or a range is inverted.
pub fn synthetic_requests(
    seed: u64,
    count: usize,
    models: &[ModelId],
    spec: WorkloadSpec,
) -> Vec<Request> {
    WorkloadStream::new(seed, models, spec).take(count).collect()
}

/// Generates a workload whose mix *shifts* over the run: one
/// [`synthetic_requests`] draw per `(spec, start_cycle, count)` phase, with
/// the phase's arrivals offset by its start cycle, concatenated in phase
/// order. Each phase derives its seed as `seed + phase index`, so phases are
/// independent draws but the whole trace is deterministic. This is the
/// regime the adaptive control plane exists for — a prefill:decode demand
/// ratio that no single static node split serves well — and what the
/// `adaptive_sweep` bench drives.
///
/// # Panics
/// Panics if `models` is empty or any phase's range is inverted.
pub fn phased_requests(
    seed: u64,
    models: &[ModelId],
    phases: &[(WorkloadSpec, u64, usize)],
) -> Vec<Request> {
    phases
        .iter()
        .enumerate()
        .flat_map(|(i, &(spec, start_cycle, count))| {
            synthetic_requests(seed + u64_from_usize(i), count, models, spec)
                .into_iter()
                .map(move |r| r.arriving_at(start_cycle + r.arrival_cycle))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_in_range() {
        let spec = WorkloadSpec::default();
        let models = [ModelId::Llama2_7b, ModelId::Llama2_70b];
        let a = synthetic_requests(42, 64, &models, spec);
        let b = synthetic_requests(42, 64, &models, spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.model, models[i % 2]);
            assert!((32..=512).contains(&r.prompt_tokens));
            assert!((4..=48).contains(&r.output_tokens));
            assert_eq!(r.arrival_cycle, 0);
        }
        let c = synthetic_requests(43, 64, &models, spec);
        assert_ne!(a, c);
    }

    #[test]
    fn phased_workloads_concatenate_offset_phases() {
        let prefill_heavy = WorkloadSpec::mixed_long_prefill(1_000);
        let decode_heavy = WorkloadSpec::kv_pressure();
        let reqs = phased_requests(
            9,
            &[ModelId::Llama2_7b],
            &[(prefill_heavy, 0, 8), (decode_heavy, 50_000, 8)],
        );
        assert_eq!(reqs.len(), 16);
        assert!(reqs[..8].iter().all(|r| r.arrival_cycle <= 1_000 && r.prompt_tokens >= 768));
        assert!(reqs[8..].iter().all(|r| r.arrival_cycle >= 50_000 && r.prompt_tokens <= 256));
        // Phase draws are independent (distinct derived seeds) but the
        // whole trace is deterministic.
        let again = phased_requests(
            9,
            &[ModelId::Llama2_7b],
            &[(prefill_heavy, 0, 8), (decode_heavy, 50_000, 8)],
        );
        assert_eq!(reqs, again);
    }

    #[test]
    fn arrivals_spread_when_requested() {
        let spec = WorkloadSpec { arrival_spread_cycles: 1_000_000, ..WorkloadSpec::default() };
        let reqs = synthetic_requests(7, 32, &[ModelId::Llama2_7b], spec);
        assert!(reqs.iter().any(|r| r.arrival_cycle > 0));
        assert!(reqs.iter().all(|r| r.arrival_cycle <= 1_000_000));
    }

    #[test]
    #[should_panic(expected = "models must be non-empty")]
    fn empty_models_rejected() {
        synthetic_requests(1, 4, &[], WorkloadSpec::default());
    }

    #[test]
    fn kv_pressure_preset_is_decode_heavy() {
        let spec = WorkloadSpec::kv_pressure();
        let reqs = synthetic_requests(3, 16, &[ModelId::Llama2_7b], spec);
        for r in &reqs {
            assert!((64..=256).contains(&r.prompt_tokens));
            assert!((48..=96).contains(&r.output_tokens));
            assert_eq!(r.arrival_cycle, 0, "pressure comes as one burst");
        }
    }

    #[test]
    fn stream_yields_the_materialized_sequence() {
        // The lazy generator and the materialized path must agree request
        // for request, under every arrival model, so goldens captured
        // against one front-end stay valid for the other.
        let models = [ModelId::Llama2_7b, ModelId::Llama2_13b];
        for spec in [
            WorkloadSpec::default(),
            WorkloadSpec { arrival_spread_cycles: 5_000_000, ..WorkloadSpec::default() },
            WorkloadSpec::kv_pressure().with_poisson_arrivals(250_000),
        ] {
            let materialized = synthetic_requests(99, 256, &models, spec);
            let streamed: Vec<Request> = WorkloadStream::new(99, &models, spec).take(256).collect();
            assert_eq!(materialized, streamed, "front-ends diverged for {spec:?}");
        }
    }

    #[test]
    fn poisson_arrivals_are_sorted_open_loop_and_rate_controlled() {
        let mean = 1_000_000u64;
        let spec = WorkloadSpec::default().with_poisson_arrivals(mean);
        let stream = WorkloadStream::new(5, &[ModelId::Llama2_7b], spec);
        assert!(stream.arrivals_sorted());
        let reqs: Vec<Request> = stream.take(4096).collect();
        assert!(reqs.windows(2).all(|w| w[0].arrival_cycle <= w[1].arrival_cycle));
        // The empirical mean gap converges on the configured mean (±10%).
        let span = reqs.last().unwrap().arrival_cycle as f64;
        let empirical = span / reqs.len() as f64;
        let ratio = empirical / mean as f64;
        assert!((0.9..=1.1).contains(&ratio), "empirical/mean gap ratio {ratio}");
        // Unsorted spread streams say so.
        let spread = WorkloadSpec { arrival_spread_cycles: 100, ..WorkloadSpec::default() };
        assert!(!WorkloadStream::new(5, &[ModelId::Llama2_7b], spread).arrivals_sorted());
        assert!(WorkloadStream::new(5, &[ModelId::Llama2_7b], WorkloadSpec::default())
            .arrivals_sorted());
    }

    #[test]
    fn poisson_inter_arrival_sequence_is_pinned() {
        // The seeded gap sequence is part of the deterministic contract:
        // these values were captured from this generator and must never
        // drift (they anchor the streaming goldens).
        let spec = WorkloadSpec::default().with_poisson_arrivals(10_000);
        let reqs: Vec<Request> =
            WorkloadStream::new(1234, &[ModelId::Llama2_7b], spec).take(8).collect();
        let arrivals: Vec<u64> = reqs.iter().map(|r| r.arrival_cycle).collect();
        let gaps: Vec<u64> =
            std::iter::once(arrivals[0]).chain(arrivals.windows(2).map(|w| w[1] - w[0])).collect();
        assert_eq!(arrivals, PINNED_ARRIVALS, "gaps drifted: {gaps:?}");
    }

    /// Captured from `WorkloadStream::new(1234, &[Llama2_7b],
    /// default().with_poisson_arrivals(10_000))` — see
    /// `poisson_inter_arrival_sequence_is_pinned`.
    const PINNED_ARRIVALS: [u64; 8] =
        [11_741, 34_137, 42_788, 45_374, 50_108, 82_450, 97_993, 98_419];
}
