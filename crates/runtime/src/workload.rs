//! Deterministic synthetic serving workloads for examples, benchmarks and
//! tests: a seeded stream of requests with varied prompt/output lengths,
//! optionally staggered arrivals, spread round-robin across models.

use crate::request::Request;
use mugi_workloads::models::ModelId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Prompt/output length and arrival ranges of a synthetic workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Inclusive prompt-length range in tokens.
    pub prompt_tokens: (usize, usize),
    /// Inclusive output-length range in tokens.
    pub output_tokens: (usize, usize),
    /// Arrivals are spread uniformly over `[0, arrival_spread_cycles]`
    /// (zero means a single burst at cycle zero).
    pub arrival_spread_cycles: u64,
}

impl Default for WorkloadSpec {
    /// Prompts of 32–512 tokens, outputs of 4–48 tokens, one burst.
    fn default() -> Self {
        WorkloadSpec { prompt_tokens: (32, 512), output_tokens: (4, 48), arrival_spread_cycles: 0 }
    }
}

impl WorkloadSpec {
    /// A KV-pressure workload: moderate prompts but long generations
    /// (64–256 prompt, 48–96 output tokens) in a single burst, so the
    /// decode population's cache footprint keeps growing long after the
    /// prefills are done — the regime where a bounded
    /// [`KvPool`](crate::kv::KvPool) preempts. Used by the `kv_pressure`
    /// integration test and the `kv_sweep` bench.
    pub fn kv_pressure() -> Self {
        WorkloadSpec { prompt_tokens: (64, 256), output_tokens: (48, 96), arrival_spread_cycles: 0 }
    }

    /// A mixed long-prefill workload: long prompts (768–2048 tokens) with
    /// moderate generations (32–64 tokens), arrivals spread over `spread`
    /// cycles so prefill chunks and decode slots keep contending for the
    /// whole run — the regime where colocated placement inflates decode
    /// TPOT and prefill/decode disaggregation pays off. Used by the
    /// `disagg` integration tests and the `disagg_sweep` bench.
    pub fn mixed_long_prefill(spread: u64) -> Self {
        WorkloadSpec {
            prompt_tokens: (768, 2048),
            output_tokens: (32, 64),
            arrival_spread_cycles: spread,
        }
    }
}

/// Generates `count` deterministic requests round-robined across `models`
/// with lengths drawn from `spec` (seeded `SmallRng`, like the experiment
/// drivers).
///
/// # Panics
/// Panics if `models` is empty or a range is inverted.
pub fn synthetic_requests(
    seed: u64,
    count: usize,
    models: &[ModelId],
    spec: WorkloadSpec,
) -> Vec<Request> {
    assert!(!models.is_empty(), "models must be non-empty");
    let (pmin, pmax) = spec.prompt_tokens;
    let (omin, omax) = spec.output_tokens;
    assert!(pmin >= 1 && pmin <= pmax, "invalid prompt range");
    assert!(omin >= 1 && omin <= omax, "invalid output range");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let model = models[i % models.len()];
            let prompt = rng.gen_range(pmin..=pmax);
            let output = rng.gen_range(omin..=omax);
            let arrival = if spec.arrival_spread_cycles == 0 {
                0
            } else {
                rng.gen_range(0..=spec.arrival_spread_cycles)
            };
            Request::new(model, prompt, output).arriving_at(arrival)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_in_range() {
        let spec = WorkloadSpec::default();
        let models = [ModelId::Llama2_7b, ModelId::Llama2_70b];
        let a = synthetic_requests(42, 64, &models, spec);
        let b = synthetic_requests(42, 64, &models, spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.model, models[i % 2]);
            assert!((32..=512).contains(&r.prompt_tokens));
            assert!((4..=48).contains(&r.output_tokens));
            assert_eq!(r.arrival_cycle, 0);
        }
        let c = synthetic_requests(43, 64, &models, spec);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_spread_when_requested() {
        let spec = WorkloadSpec { arrival_spread_cycles: 1_000_000, ..WorkloadSpec::default() };
        let reqs = synthetic_requests(7, 32, &[ModelId::Llama2_7b], spec);
        assert!(reqs.iter().any(|r| r.arrival_cycle > 0));
        assert!(reqs.iter().all(|r| r.arrival_cycle <= 1_000_000));
    }

    #[test]
    #[should_panic(expected = "models must be non-empty")]
    fn empty_models_rejected() {
        synthetic_requests(1, 4, &[], WorkloadSpec::default());
    }

    #[test]
    fn kv_pressure_preset_is_decode_heavy() {
        let spec = WorkloadSpec::kv_pressure();
        let reqs = synthetic_requests(3, 16, &[ModelId::Llama2_7b], spec);
        for r in &reqs {
            assert!((64..=256).contains(&r.prompt_tokens));
            assert!((48..=96).contains(&r.output_tokens));
            assert_eq!(r.arrival_cycle, 0, "pressure comes as one burst");
        }
    }
}
