//! # mugi-runtime
//!
//! A simulated continuous-batching inference server on top of the Mugi
//! accelerator model: the serving layer that turns the paper's
//! accelerator-level wins into end-to-end request throughput.
//!
//! The pipeline, bottom to top:
//!
//! * [`request`] — [`Request`]s submitted by clients and the [`Session`]s
//!   that track per-session KV-cache state and latency milestones;
//! * [`kv`] — the paged KV cache: bounded per-node [`KvPool`]s of physical
//!   pages, per-session [`PageTable`]s, recompute-style preemption when a
//!   pool runs dry, and admission control (an unbounded pool, the default,
//!   disables all of it);
//! * [`scheduler`] — the continuous-batching [`Scheduler`]: decode-first
//!   micro-batches under `max_batch`/`token_budget` caps, chunked prefill,
//!   FCFS or shortest-prefill-first admission, round-robin across models,
//!   paging every batch against the target node's KV pool;
//! * [`placement`] — how micro-batches map onto a NoC mesh of nodes:
//!   [`Placement`] (data-parallel, sharded or prefill/decode-disaggregated
//!   over a [`NocConfig`](mugi::arch::noc::NocConfig)) plus the
//!   [`NodePool`] of per-node clocks; under disaggregation a completed
//!   prefill's KV pages migrate to a decode node over the NoC instead of
//!   being recomputed;
//! * [`executor`] — the [`Executor`] drives one or many
//!   [`MugiAccelerator`](mugi::MugiAccelerator) nodes over the scheduled
//!   micro-batches (composed into mixed prefill/decode operator traces,
//!   cached per shape), charges NoC transfer energy for inter-node movement
//!   and keeps per-request cycle/energy accounting;
//! * [`event`] — the discrete-event [`EventEngine`]: the same machinery
//!   driven by a binary-heap [`EventQueue`] of arrival/completion events
//!   instead of the per-step outer loop, bit-identical to the [`Executor`]
//!   (the golden/property suites pin this) while serving lazily-streamed
//!   workloads of millions of requests in O(live sessions) memory;
//! * [`control`] — the adaptive control plane: a feedback controller
//!   sampled at batch-completion boundaries that re-rolls node roles toward
//!   the live prefill:decode demand split (quiescent handoffs), calibrates
//!   the projected-TTFT admission rate online, and places KV migrations by
//!   projected decode load — all off by default and bit-inert when off;
//! * [`stats`] — TTFT/TPOT/throughput per request plus p50/p95/p99
//!   aggregates in a [`RuntimeReport`], and the O(1) [`StatsFold`] /
//!   [`ScaleReport`] the event engine folds retired sessions into;
//! * [`workload`] — deterministic synthetic request streams — materialized
//!   via [`synthetic_requests`] or lazily via a [`WorkloadStream`] — with
//!   uniform-spread or open-loop Poisson [`ArrivalModel`]s.
//!
//! # Example
//!
//! ```
//! use mugi::MugiAccelerator;
//! use mugi_runtime::{Executor, Request, Scheduler, SchedulerConfig};
//! use mugi_workloads::models::ModelId;
//!
//! let mut engine = Executor::new(
//!     MugiAccelerator::new(256),
//!     Scheduler::new(SchedulerConfig::default()),
//! );
//! engine.submit(Request::new(ModelId::Llama2_7b, 128, 8));
//! engine.submit(Request::new(ModelId::Llama2_70b, 256, 4));
//! let report = engine.run();
//! assert_eq!(report.requests.len(), 2);
//! assert!(report.throughput_tokens_per_s > 0.0);
//! assert!(report.requests.iter().all(|r| r.ttft_s > 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
pub mod event;
pub mod executor;
pub mod kv;
pub mod placement;
pub mod request;
pub mod scheduler;
pub mod stats;
pub mod workload;

pub use control::{ControlConfig, SloCalibrator};
pub use event::{Event, EventEngine, EventKind, EventQueue};
pub use executor::{Executor, ExecutorConfig};
pub use kv::{
    pages_for, AdmissionError, Extent, KvConfig, KvFreePages, KvPool, PageId, PageTable,
    PreemptionMode, SloConfig, KV_BITS,
};
pub use placement::{NodePool, Placement, PlacementPolicy, PoolRole};
pub use request::{Request, RequestId, Session, SessionArena, SessionState};
pub use scheduler::{
    BatchItem, DecodeOrder, MicroBatch, Migration, PhaseFilter, Scheduler, SchedulerConfig,
    SchedulingPolicy, SwapOut,
};
pub use stats::{KvStats, Percentiles, RequestStats, RuntimeReport, ScaleReport, StatsFold};
pub use workload::{
    phased_requests, synthetic_requests, ArrivalModel, WorkloadSpec, WorkloadStream,
};
