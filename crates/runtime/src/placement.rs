//! Multi-node placement: how scheduler micro-batches map onto a NoC mesh.
//!
//! The paper's multi-node story (Section 4.2 / 6.3.3) connects Mugi nodes by
//! a 2-D mesh with three physical channels and tiles GEMMs across them with
//! an output-stationary dataflow. The serving runtime exposes that as two
//! placement policies:
//!
//! * [`PlacementPolicy::DataParallel`] — every micro-batch runs whole on the
//!   least-loaded node. Nodes execute independent micro-batches
//!   concurrently (per-node clocks), so throughput scales with the number of
//!   *independent* batches the scheduler can form; the NoC charges transfer
//!   energy for shipping each batch's token activations to its node and the
//!   results back.
//! * [`PlacementPolicy::Sharded`] — every micro-batch's GEMM trace is tiled
//!   evenly across *all* nodes (the paper's inter-node accumulation mode):
//!   step latency shrinks by the mesh's near-linear throughput multiplier
//!   while [`NocConfig::transfer_energy_pj`] charges the activation /
//!   partial-sum movement between nodes.
//! * [`PlacementPolicy::Disaggregated`] — the mesh is split into a prefill
//!   pool and a decode pool ([`PoolRole`]); micro-batches are pure (prefill
//!   chunks on prefill nodes, decode slots on decode nodes) and a completed
//!   prefill's KV pages *migrate* to a decode node over the NoC — charged as
//!   transfer energy plus a receive stall — instead of being recomputed.
//!
//! Placement also decides where a session's KV cache physically lives when
//! the pool is bounded ([`KvConfig`](crate::kv::KvConfig)): each
//! data-parallel node owns a private [`KvPool`](crate::kv::KvPool) — so the
//! executor must pick a node with clock headroom *and* free pages, and a
//! session is pinned to the node holding its pages — while a sharded mesh
//! tiles every session's KV across all nodes and therefore forms one
//! aggregate pool.
//!
//! A 1×1 mesh degenerates to the single-node executor under either policy —
//! bit-identical reports, zero NoC energy.

use mugi::arch::noc::NocConfig;
use serde::{Deserialize, Serialize};

/// The scheduling role of one node (and its KV pool, when the pool is
/// bounded) under a given placement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolRole {
    /// Prefill chunks and decode slots both run here (every colocated
    /// policy).
    #[default]
    Colocated,
    /// Only prefill chunks run here; completed prefills migrate their KV
    /// pages to a decode pool over the NoC.
    Prefill,
    /// Only decode slots run here; sessions arrive by page migration and may
    /// be swapped back out under swap-style preemption
    /// ([`PreemptionMode::Swap`](crate::kv::PreemptionMode)).
    Decode,
}

/// How micro-batches are placed onto the nodes of the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Whole micro-batches on the least-loaded node (inter-batch
    /// parallelism).
    DataParallel,
    /// Every micro-batch tiled across all nodes with inter-node accumulation
    /// (intra-batch parallelism).
    Sharded,
    /// MegaScale-Infer-style prefill/decode disaggregation: the mesh is
    /// partitioned into a prefill pool (the first `prefill_nodes` nodes) and
    /// a decode pool (the remaining `decode_nodes`). Prefill chunks and
    /// decode slots never share a node, so chunked prefills stop inflating
    /// decode TPOT; on prefill completion a session's KV pages migrate to a
    /// decode node over the NoC instead of being recomputed.
    Disaggregated {
        /// Nodes dedicated to prefill (mesh indices `0..prefill_nodes`).
        prefill_nodes: usize,
        /// Nodes dedicated to decode (the remaining mesh indices).
        decode_nodes: usize,
    },
}

impl PlacementPolicy {
    /// Short label used in sweep tables (e.g. `disagg-4p12d`).
    pub fn label(&self) -> String {
        match self {
            PlacementPolicy::DataParallel => "data-parallel".to_string(),
            PlacementPolicy::Sharded => "sharded".to_string(),
            PlacementPolicy::Disaggregated { prefill_nodes, decode_nodes } => {
                format!("disagg-{prefill_nodes}p{decode_nodes}d")
            }
        }
    }
}

/// A mesh plus the policy placing micro-batches onto it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// The 2-D mesh the nodes form.
    pub noc: NocConfig,
    /// The placement policy.
    pub policy: PlacementPolicy,
}

impl Placement {
    /// A single node (the degenerate 1×1 mesh); policy is irrelevant.
    pub fn single_node() -> Self {
        Placement { noc: NocConfig::single(), policy: PlacementPolicy::DataParallel }
    }

    /// Data-parallel placement over `noc`.
    pub fn data_parallel(noc: NocConfig) -> Self {
        Placement { noc, policy: PlacementPolicy::DataParallel }
    }

    /// Sharded (intra-batch tiled) placement over `noc`.
    pub fn sharded(noc: NocConfig) -> Self {
        Placement { noc, policy: PlacementPolicy::Sharded }
    }

    /// Disaggregated placement over `noc`: the first `prefill_nodes` nodes
    /// prefill, the rest decode.
    ///
    /// # Panics
    /// Panics unless `0 < prefill_nodes < noc.nodes()` (both pools need at
    /// least one node).
    pub fn disaggregated(noc: NocConfig, prefill_nodes: usize) -> Self {
        assert!(
            prefill_nodes > 0 && prefill_nodes < noc.nodes(),
            "disaggregation needs at least one prefill node and one decode node"
        );
        let decode_nodes = noc.nodes() - prefill_nodes;
        Placement { noc, policy: PlacementPolicy::Disaggregated { prefill_nodes, decode_nodes } }
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.noc.nodes()
    }

    /// The scheduling role of node `i` under this placement: `Colocated`
    /// for every non-disaggregated policy, `Prefill`/`Decode` by mesh index
    /// under [`PlacementPolicy::Disaggregated`].
    pub fn node_role(&self, i: usize) -> PoolRole {
        match self.policy {
            PlacementPolicy::DataParallel | PlacementPolicy::Sharded => PoolRole::Colocated,
            PlacementPolicy::Disaggregated { prefill_nodes, .. } => {
                if i < prefill_nodes {
                    PoolRole::Prefill
                } else {
                    PoolRole::Decode
                }
            }
        }
    }

    /// Label such as `4x4 sharded`.
    pub fn label(&self) -> String {
        format!("{} {}", self.noc.label(), self.policy.label())
    }
}

impl Default for Placement {
    fn default() -> Self {
        Placement::single_node()
    }
}

/// The pool of per-node clocks the executor dispatches onto.
///
/// Each node tracks when it becomes free, how many cycles it spent busy and
/// how many micro-batches it participated in. Under [`PlacementPolicy::
/// Sharded`] every dispatch occupies the whole pool (the batch is tiled
/// across all nodes); under [`PlacementPolicy::DataParallel`] each dispatch
/// occupies one node.
#[derive(Clone, Debug)]
pub struct NodePool {
    free_at: Vec<u64>,
    busy_cycles: Vec<u64>,
    steps: Vec<u64>,
}

impl NodePool {
    /// Creates a pool of `nodes` idle nodes at cycle zero.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a node pool needs at least one node");
        NodePool { free_at: vec![0; nodes], busy_cycles: vec![0; nodes], steps: vec![0; nodes] }
    }

    /// Number of nodes in the pool.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// A pool is never empty (construction requires at least one node).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node among `idle` with the earliest free time (ties to the lowest
    /// index), or `None` if `idle` yields nothing.
    pub fn earliest(&self, idle: impl Iterator<Item = usize>) -> Option<usize> {
        idle.min_by_key(|&i| (self.free_at[i], i))
    }

    /// When node `i` becomes free.
    pub fn free_at(&self, i: usize) -> u64 {
        self.free_at[i]
    }

    /// Cycles node `i` spent executing micro-batches.
    pub fn busy_cycles(&self, i: usize) -> u64 {
        self.busy_cycles[i]
    }

    /// Per-node busy cycles.
    pub fn busy(&self) -> &[u64] {
        &self.busy_cycles
    }

    /// Micro-batches node `i` participated in.
    pub fn steps(&self, i: usize) -> u64 {
        self.steps[i]
    }

    /// Per-node clocks (free times).
    pub fn clocks(&self) -> &[u64] {
        &self.free_at
    }

    /// Occupies node `i` with a batch running `[start, start + cycles)`.
    pub fn dispatch_one(&mut self, i: usize, start: u64, cycles: u64) {
        debug_assert!(self.free_at[i] <= start, "node dispatched before it is free");
        self.free_at[i] = start + cycles;
        self.busy_cycles[i] += cycles;
        self.steps[i] += 1;
    }

    /// Occupies every node with a gang-scheduled (sharded) batch running
    /// `[start, start + cycles)`.
    pub fn dispatch_all(&mut self, start: u64, cycles: u64) {
        for i in 0..self.len() {
            self.dispatch_one(i, start, cycles);
        }
    }

    /// Advances an idle node's clock to `cycle` (waiting costs no busy
    /// time). No-op if the node is already past it.
    pub fn wait_until(&mut self, i: usize, cycle: u64) {
        if self.free_at[i] < cycle {
            self.free_at[i] = cycle;
        }
    }

    /// Idles every node whose clock lags `cycle` forward to it — the
    /// executors' idle jump when the only remaining work is a future
    /// arrival. One pass over the pool; waiting never accrues busy cycles.
    pub fn wait_all_until(&mut self, cycle: u64) {
        for free in &mut self.free_at {
            if *free < cycle {
                *free = cycle;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_labels_and_nodes() {
        assert_eq!(Placement::single_node().nodes(), 1);
        assert_eq!(Placement::sharded(NocConfig::mesh_4x4()).nodes(), 16);
        assert_eq!(Placement::sharded(NocConfig::mesh_4x4()).label(), "4x4 sharded");
        assert_eq!(Placement::data_parallel(NocConfig::mesh_8x8()).label(), "8x8 data-parallel");
        assert_eq!(Placement::default(), Placement::single_node());
        assert_eq!(Placement::disaggregated(NocConfig::mesh_4x4(), 4).label(), "4x4 disagg-4p12d");
    }

    #[test]
    fn disaggregated_roles_split_the_mesh_by_index() {
        let p = Placement::disaggregated(NocConfig::mesh_4x4(), 6);
        assert_eq!(p.policy, PlacementPolicy::Disaggregated { prefill_nodes: 6, decode_nodes: 10 });
        for i in 0..16 {
            let expected = if i < 6 { PoolRole::Prefill } else { PoolRole::Decode };
            assert_eq!(p.node_role(i), expected, "node {i}");
        }
        // Colocated policies have no phase split.
        assert_eq!(Placement::single_node().node_role(0), PoolRole::Colocated);
        assert_eq!(Placement::sharded(NocConfig::mesh_4x4()).node_role(3), PoolRole::Colocated);
        assert_eq!(PoolRole::default(), PoolRole::Colocated);
    }

    #[test]
    #[should_panic(expected = "at least one prefill node and one decode node")]
    fn disaggregation_needs_both_pools() {
        Placement::disaggregated(NocConfig::mesh_4x4(), 16);
    }

    #[test]
    fn pool_tracks_clocks_busy_and_steps() {
        let mut pool = NodePool::new(3);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.earliest(0..3), Some(0));
        pool.dispatch_one(0, 0, 100);
        assert_eq!(pool.free_at(0), 100);
        assert_eq!(pool.earliest([1, 2].into_iter()), Some(1));
        pool.dispatch_one(1, 50, 25);
        assert_eq!(pool.earliest(0..3).unwrap(), 2);
        pool.wait_until(2, 80);
        assert_eq!(pool.free_at(2), 80);
        assert_eq!(pool.busy_cycles(2), 0, "waiting is not busy time");
        pool.dispatch_all(100, 10);
        assert!(pool.clocks().iter().all(|&c| c == 110));
        assert_eq!(pool.steps(0), 2);
        assert_eq!(pool.steps(2), 1);
        assert_eq!(pool.busy(), &[110, 35, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_pool_rejected() {
        NodePool::new(0);
    }
}
