//! The discrete-event serving engine: the same scheduler, placement,
//! paging, migration and accounting machinery as [`Executor`], driven by a
//! binary-heap event queue instead of the per-step outer loop.
//!
//! Two things change, and neither is the simulation's arithmetic:
//!
//! * **Completions live in a heap.** The per-step executor re-scans its
//!   in-flight vector for the earliest completion on every decision; the
//!   event engine pops it from an [`EventQueue`] keyed `(end_cycle, seq)`.
//!   `Vec::remove` preserves insertion order and batches are inserted in
//!   dispatch order, so the per-step tie-break `(end, index)` and the heap
//!   tie-break `(end, seq)` select the *same* batch — the decision sequence
//!   is provably identical, which the golden and property suites then pin
//!   bit for bit.
//! * **Arrivals stream in lazily.** Instead of materializing a whole trace
//!   into the scheduler up front, the engine stages one arrival event at a
//!   time from a [`WorkloadStream`](crate::workload::WorkloadStream) (or
//!   any request iterator) and submits it when simulated time reaches it.
//!   Combined with always-on incremental retirement and the
//!   [`StatsFold`]-based report, memory stays O(live sessions) however
//!   long the stream runs.
//!
//! Migration retries and swap-in barriers deliberately ride *inside*
//! completion events rather than as separate heap entries: KV pages are
//! freed exclusively by completion effects, and servicing a migration at
//! any other instant could pick a different target pool than the per-step
//! oracle — breaking bit-identity for no modeling gain.
//!
//! Event submission is passive (admission control aside, submitting a
//! request affects nothing until a batch forms at or after its arrival), so
//! lazy submission is equivalent to the oracle's pre-submitted traces for
//! every state-independent admission configuration. The stateful admission
//! checks (`max_live_sessions` backpressure, SLO projection) evaluate
//! against the population *at submission time*, which under lazy submission
//! is the arrival instant — the more realistic reading, but a divergence
//! from pre-submitted runs; equivalence tests therefore exercise them with
//! those bounds unset.

use crate::executor::Executor;
use crate::kv::AdmissionError;
use crate::request::{Request, RequestId};
use crate::stats::{RuntimeReport, ScaleReport, StatsFold};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::iter::Peekable;

/// What a popped event asks the engine to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A request's arrival instant: submit it to the scheduler and stage
    /// the next one from the stream.
    Arrival(Request),
    /// A dispatched micro-batch (identified by its dispatch sequence
    /// number) reached its end cycle: apply its completion effects,
    /// service KV migrations and retire finished sessions.
    Completion {
        /// Dispatch sequence number of the finishing batch.
        flight: u64,
    },
}

/// One scheduled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle the event fires at.
    pub time: u64,
    /// Global push order, the tie-break within a cycle.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

/// The event engine's priority queue: node-completion events in a binary
/// min-heap keyed `(end_cycle, seq)`, plus at most one *staged* arrival —
/// the stream's next request, so unbounded request streams occupy O(1)
/// queue memory. Popping merges the two sources in `(time, seq)` order.
///
/// The queue tracks its own observability counters: pops, the queue-length
/// high-water mark, and per-kind time regressions (a pop earlier than the
/// previous pop of the same kind). Arrival pops are monotone whenever the
/// stream's arrivals are sorted; completion pops are monotone except in one
/// documented per-step-oracle artifact — a node with a lagging clock may
/// form a batch *in the past* using KV pages freed by a completion that
/// popped at a later cycle (bounded multi-pool placement only), and the
/// engine reproduces that batch exactly rather than breaking bit-identity.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    completions: BinaryHeap<Reverse<(u64, u64, u64)>>,
    staged_arrival: Option<(u64, u64, Request)>,
    next_seq: u64,
    pops: u64,
    peak_len: usize,
    last_completion_pop: u64,
    last_arrival_pop: u64,
    completion_regressions: u64,
    arrival_regressions: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    fn bump_peak(&mut self) {
        let len = self.len();
        self.peak_len = self.peak_len.max(len);
    }

    /// Queued events (completions plus the staged arrival).
    pub fn len(&self) -> usize {
        self.completions.len() + usize::from(self.staged_arrival.is_some())
    }

    /// Whether no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules a completion event for the batch dispatched as `flight`.
    pub fn push_completion(&mut self, time: u64, flight: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.completions.push(Reverse((time, seq, flight)));
        self.bump_peak();
    }

    /// Stages the stream's next arrival (at most one at a time).
    ///
    /// # Panics
    /// Debug-asserts no arrival is already staged.
    pub fn stage_arrival(&mut self, request: Request) {
        debug_assert!(self.staged_arrival.is_none(), "one staged arrival at a time");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.staged_arrival = Some((request.arrival_cycle, seq, request));
        self.bump_peak();
    }

    /// `(time, seq)` of the next event without popping it.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        let completion = self.completions.peek().map(|&Reverse((t, s, _))| (t, s));
        let arrival = self.staged_arrival.as_ref().map(|&(t, s, _)| (t, s));
        match (completion, arrival) {
            (Some(c), Some(a)) => Some(c.min(a)),
            (c, a) => c.or(a),
        }
    }

    /// End cycle of the earliest queued completion, ignoring any staged
    /// arrival (the oracle prefers finishing a pending batch over jumping
    /// to an earlier arrival, so the engine must be able to ask).
    pub fn earliest_completion_time(&self) -> Option<u64> {
        self.completions.peek().map(|&Reverse((t, _, _))| t)
    }

    /// Arrival cycle of the staged arrival, if any.
    pub fn staged_arrival_time(&self) -> Option<u64> {
        self.staged_arrival.as_ref().map(|&(t, _, _)| t)
    }

    /// Pops the next event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<Event> {
        let take_arrival = match (self.completions.peek(), &self.staged_arrival) {
            (Some(&Reverse((ct, cs, _))), Some((at, asq, _))) => (*at, *asq) < (ct, cs),
            (None, Some(_)) => true,
            _ => false,
        };
        let event = if take_arrival {
            let (time, seq, request) = self.staged_arrival.take()?;
            if time < self.last_arrival_pop {
                self.arrival_regressions += 1;
            }
            self.last_arrival_pop = time;
            Event { time, seq, kind: EventKind::Arrival(request) }
        } else {
            let Reverse((time, seq, flight)) = self.completions.pop()?;
            if time < self.last_completion_pop {
                self.completion_regressions += 1;
            }
            self.last_completion_pop = time;
            Event { time, seq, kind: EventKind::Completion { flight } }
        };
        self.pops += 1;
        Some(event)
    }

    /// Pops the earliest completion event, skipping a staged arrival.
    fn pop_completion(&mut self) -> Option<(u64, u64)> {
        let Reverse((time, seq, flight)) = self.completions.pop()?;
        if time < self.last_completion_pop {
            self.completion_regressions += 1;
        }
        self.last_completion_pop = time;
        self.pops += 1;
        let _ = seq;
        Some((time, flight))
    }

    /// Events popped so far.
    pub fn pop_count(&self) -> u64 {
        self.pops
    }

    /// Queue-length high-water mark.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Completion pops that went back in time (see the type docs; zero on
    /// every single-pool or unbounded configuration).
    pub fn completion_time_regressions(&self) -> u64 {
        self.completion_regressions
    }

    /// Arrival pops that went back in time (zero whenever the stream's
    /// arrivals are nondecreasing).
    pub fn arrival_time_regressions(&self) -> u64 {
        self.arrival_regressions
    }
}

/// The discrete-event serving engine. Construction mirrors [`Executor`];
/// the run paths add lazy request streaming ([`EventEngine::run_stream`])
/// and an O(live-sessions)-memory folded mode
/// ([`EventEngine::run_stream_folded`]).
#[derive(Clone, Debug)]
pub struct EventEngine {
    ex: Executor,
    queue: EventQueue,
}

impl EventEngine {
    /// Creates a single-node event engine (cf. [`Executor::new`]).
    pub fn new(accel: mugi::MugiAccelerator, scheduler: crate::scheduler::Scheduler) -> Self {
        EventEngine::with_placement(
            accel,
            scheduler,
            crate::executor::ExecutorConfig::default(),
            crate::placement::Placement::single_node(),
        )
    }

    /// Creates an event engine dispatching onto a NoC mesh under
    /// `placement` (cf. [`Executor::with_placement`]).
    ///
    /// # Panics
    /// Panics under the same configuration errors as
    /// [`Executor::with_placement`].
    pub fn with_placement(
        accel: mugi::MugiAccelerator,
        scheduler: crate::scheduler::Scheduler,
        config: crate::executor::ExecutorConfig,
        placement: crate::placement::Placement,
    ) -> Self {
        EventEngine {
            ex: Executor::with_placement(accel, scheduler, config, placement),
            queue: EventQueue::new(),
        }
    }

    /// Submits a request up front (the materialized-trace path shared with
    /// the per-step executor).
    ///
    /// # Panics
    /// Panics if admission control rejects the request.
    pub fn submit(&mut self, request: Request) -> RequestId {
        self.ex.submit(request)
    }

    /// Submits a request unless admission control rejects it.
    pub fn try_submit(&mut self, request: Request) -> Result<RequestId, AdmissionError> {
        self.ex.try_submit(request)
    }

    /// The underlying executor state (scheduler, clocks, placement).
    pub fn executor(&self) -> &Executor {
        &self.ex
    }

    /// The event queue's observability counters.
    pub fn queue(&self) -> &EventQueue {
        &self.queue
    }

    /// Runs every pre-submitted request to completion and reports —
    /// bit-identical to [`Executor::run`] on the same inputs.
    pub fn run(&mut self) -> RuntimeReport {
        self.run_stream(std::iter::empty())
    }

    /// Serves `stream` lazily to completion: each request is submitted at
    /// its arrival event, not up front. Requests the admission control
    /// rejects are counted in the report's KV statistics and dropped, as
    /// with [`Executor::try_submit`]. The stream's arrivals must be
    /// nondecreasing (true for Poisson and single-burst
    /// [`WorkloadStream`](crate::workload::WorkloadStream)s) and no later
    /// than any pre-[`submit`](EventEngine::submit)ted request still
    /// outstanding.
    pub fn run_stream<I>(&mut self, stream: I) -> RuntimeReport
    where
        I: IntoIterator<Item = Request>,
    {
        let mut stream = stream.into_iter().peekable();
        self.pull_arrival(&mut stream);
        let mut fold = None;
        while self.advance(&mut stream, &mut fold) {}
        self.ex.report()
    }

    /// Serves `stream` lazily like [`EventEngine::run_stream`], but retires
    /// every finished session into a [`StatsFold`] instead of keeping its
    /// statistics, so memory stays O(live sessions) for arbitrarily long
    /// streams and the report is the O(1) [`ScaleReport`].
    pub fn run_stream_folded<I>(&mut self, stream: I) -> ScaleReport
    where
        I: IntoIterator<Item = Request>,
    {
        // Folded retirement replaces the executor-side retirement: stats
        // must reach the fold, not the executor's retired vector.
        self.ex.config.retire_finished = false;
        let mut stream = stream.into_iter().peekable();
        self.pull_arrival(&mut stream);
        let mut fold = Some(StatsFold::default());
        while self.advance(&mut stream, &mut fold) {}
        let mut fold = fold.expect("fold survives the run");
        self.ex.retire_finished_with(|stats| fold.add(&stats));
        self.scale_report(fold)
    }

    /// Stages the stream's next request as an arrival event.
    fn pull_arrival<I>(&mut self, stream: &mut Peekable<I>)
    where
        I: Iterator<Item = Request>,
    {
        if let Some(request) = stream.next() {
            debug_assert!(
                self.queue.last_arrival_pop <= request.arrival_cycle,
                "streamed arrivals must be nondecreasing"
            );
            self.queue.stage_arrival(request);
        }
    }

    /// Handles a popped event. Returns `true` for completions (the caller
    /// restarts its decision loop, as the oracle does after a `finish`).
    fn handle(
        &mut self,
        event: Event,
        stream: &mut Peekable<impl Iterator<Item = Request>>,
        fold: &mut Option<StatsFold>,
    ) -> bool {
        match event.kind {
            EventKind::Arrival(request) => {
                // Rejections are the scheduler's to count, as in the
                // per-step harnesses.
                let _ = self.ex.try_submit(request);
                self.pull_arrival(stream);
                false
            }
            EventKind::Completion { flight } => {
                self.finish_flight(flight, fold);
                true
            }
        }
    }

    /// Applies the completion effects of the batch dispatched as `flight`,
    /// then retires what finished (into the fold, when folding).
    ///
    /// # Panics
    /// Panics if the event targets a batch that is no longer in flight —
    /// the queue invariant every completion event is consumed exactly once.
    fn finish_flight(&mut self, flight: u64, fold: &mut Option<StatsFold>) {
        let idx = self
            .ex
            .in_flight
            .iter()
            .position(|f| f.seq == flight)
            .expect("completion event targets a batch no longer in flight");
        self.ex.finish(idx);
        if let Some(fold) = fold {
            self.ex.retire_finished_with(|stats| fold.add(&stats));
        }
    }

    /// Pops and handles every event due at or before `t`. Returns `true`
    /// as soon as a completion was applied (the caller must re-derive its
    /// idle set, exactly like the per-step loop after a `finish`).
    fn drain_due(
        &mut self,
        t: u64,
        stream: &mut Peekable<impl Iterator<Item = Request>>,
        fold: &mut Option<StatsFold>,
    ) -> bool {
        while let Some((time, _)) = self.queue.peek_key() {
            if time > t {
                break;
            }
            let event = self.queue.pop().expect("peeked event pops");
            if self.handle(event, stream, fold) {
                return true;
            }
        }
        false
    }

    /// One decision round: mirrors [`Executor::step`] exactly, with the
    /// heap standing in for the in-flight scan and arrival events standing
    /// in for the pre-submitted trace. Returns `false` when everything —
    /// submitted, queued and streamed — has finished.
    fn advance(
        &mut self,
        stream: &mut Peekable<impl Iterator<Item = Request>>,
        fold: &mut Option<StatsFold>,
    ) -> bool {
        let mut idle = std::mem::take(&mut self.ex.idle_scratch);
        let advanced = 'outer: loop {
            if self.ex.in_flight.is_empty()
                && self.ex.scheduler.all_finished()
                && self.queue.is_empty()
                && stream.peek().is_none()
            {
                break false;
            }
            idle.clear();
            idle.extend((0..self.ex.pool.len()).filter(|&i| !self.ex.occupied(i)));
            if idle.is_empty() {
                // Every node is busy: the next event must land first (the
                // oracle finishes its earliest completion; an earlier staged
                // arrival is passive, so popping it first changes nothing).
                let event = self.queue.pop().expect("busy nodes imply queued completions");
                self.handle(event, stream, fold);
                continue;
            }
            idle.sort_by_key(|&i| {
                let free = self.ex.kv_free_pages(i).ranking();
                (self.ex.pool.free_at(i), Reverse(free), i)
            });
            let primary = idle[0];
            let now = self.ex.pool.free_at(primary);
            // Events at or before this node's clock must apply first so the
            // batch formed at `now` sees their effects.
            if self.drain_due(now, stream, fold) {
                continue;
            }
            let tries = if self.ex.multi_pool || self.ex.disagg { idle.len() } else { 1 };
            for &node in &idle[..tries] {
                let node_now = self.ex.pool.free_at(node);
                // Later idle nodes have later clocks; events in between must
                // land before a batch forms at that clock.
                if self.drain_due(node_now, stream, fold) {
                    continue 'outer;
                }
                // A draining node has no phase: it forms no new batches
                // until its role flip completes (mirrors the oracle).
                let Some(phase) = self.ex.phase_for(node) else { continue };
                if let Some(batch) = self.ex.scheduler.next_micro_batch_phased(
                    node_now,
                    self.ex.pool_for(node),
                    phase,
                ) {
                    self.ex.dispatch(node, batch, node_now);
                    let flight = self.ex.in_flight.last().expect("dispatch queued a batch");
                    self.queue.push_completion(flight.end, flight.seq);
                    break 'outer true;
                }
            }
            // Nothing runnable on any idle node's clock: wait for the next
            // completion — even one later than a staged arrival, matching
            // the oracle — or jump to the next arrival.
            if let Some((end, flight)) = self.queue.pop_completion() {
                self.finish_flight(flight, fold);
                self.ex.pool.wait_until(primary, end);
                continue;
            }
            let scheduled = self.ex.scheduler.next_arrival_after(now);
            let staged = self.queue.staged_arrival_time().filter(|&t| t > now);
            let next = match (scheduled, staged) {
                (Some(a), Some(b)) => a.min(b),
                (a, b) => {
                    a.or(b).expect("unfinished sessions but no runnable work and no future arrival")
                }
            };
            self.ex.pool.wait_all_until(next);
        };
        self.ex.idle_scratch = idle;
        advanced
    }

    /// Builds the folded report for the completed run.
    fn scale_report(&self, fold: StatsFold) -> ScaleReport {
        let freq = self.ex.cost.frequency_hz;
        let makespan_s = self.ex.clock_cycles() as f64 / freq;
        let throughput_tokens_per_s =
            if makespan_s > 0.0 { fold.output_tokens as f64 / makespan_s } else { 0.0 };
        ScaleReport {
            fold,
            makespan_s,
            throughput_tokens_per_s,
            micro_batches: self.ex.steps(),
            nodes: self.ex.node_clocks().len(),
            peak_live_sessions: self.ex.scheduler().peak_live_sessions(),
            peak_event_queue: self.queue.peak_len(),
            kv: self.ex.kv_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Scheduler, SchedulerConfig};
    use mugi::MugiAccelerator;
    use mugi_workloads::models::ModelId;

    #[test]
    fn event_queue_merges_completions_and_arrival_in_time_order() {
        let mut q = EventQueue::new();
        q.push_completion(400, 0);
        q.push_completion(400, 1);
        q.push_completion(200, 2);
        q.stage_arrival(Request::new(ModelId::Llama2_7b, 8, 1).arriving_at(300));
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_key(), Some((200, 2)));
        assert_eq!(q.earliest_completion_time(), Some(200));
        assert_eq!(q.staged_arrival_time(), Some(300));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        // Same-time completions pop in push (seq) order.
        assert_eq!(order, [200, 300, 400, 400]);
        assert!(q.is_empty());
        assert_eq!(q.pop_count(), 4);
        assert_eq!(q.peak_len(), 4);
        assert_eq!(q.completion_time_regressions(), 0);
        assert_eq!(q.arrival_time_regressions(), 0);
    }

    #[test]
    fn event_queue_counts_time_regressions() {
        let mut q = EventQueue::new();
        q.push_completion(500, 0);
        q.pop();
        q.push_completion(100, 1); // pushed below the last popped time
        q.pop();
        assert_eq!(q.completion_time_regressions(), 1);
    }

    #[test]
    fn single_request_event_run_matches_per_step() {
        let request = Request::new(ModelId::Llama2_7b, 200, 5);
        let mut ex = crate::executor::Executor::new(
            MugiAccelerator::new(128),
            Scheduler::new(SchedulerConfig::default()),
        );
        ex.submit(request);
        let mut ev =
            EventEngine::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        ev.submit(request);
        assert_eq!(ex.run(), ev.run());
    }

    #[test]
    fn streamed_and_presubmitted_runs_agree() {
        let requests: Vec<Request> = (0..8)
            .map(|i| {
                Request::new(ModelId::Llama2_7b, 64 + i * 16, 4).arriving_at(i as u64 * 500_000)
            })
            .collect();
        let mut pre =
            EventEngine::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        for r in &requests {
            pre.submit(*r);
        }
        let streamed =
            EventEngine::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()))
                .run_stream(requests.clone());
        assert_eq!(pre.run(), streamed);
    }

    #[test]
    fn folded_run_matches_the_full_report() {
        let requests: Vec<Request> =
            (0..12).map(|i| Request::new(ModelId::Llama2_7b, 100 + i * 8, 6)).collect();
        let full =
            EventEngine::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()))
                .run_stream(requests.clone());
        let folded =
            EventEngine::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()))
                .run_stream_folded(requests.clone());
        assert_eq!(folded.fold, StatsFold::of_report(&full), "folded stats must be bit-identical");
        assert_eq!(folded.micro_batches, full.micro_batches);
        assert_eq!(folded.makespan_s.to_bits(), full.makespan_s.to_bits());
        assert_eq!(folded.fold.identity_checksum, StatsFold::identity_checksum_of(0, &requests));
        assert!(folded.peak_event_queue >= 1);
        assert!(folded.peak_live_sessions <= requests.len());
    }
}
