//! Per-request and aggregate serving statistics: TTFT, TPOT, throughput and
//! their percentiles, plus a human-readable report table.

use crate::request::RequestId;
use mugi_workloads::models::ModelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency and efficiency statistics of one finished request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Request identifier.
    pub id: RequestId,
    /// Model the request ran on.
    pub model: ModelId,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Generated output length in tokens.
    pub output_tokens: usize,
    /// Time to first token in seconds (arrival → first token).
    pub ttft_s: f64,
    /// Time per output token in seconds (first → last token, averaged over
    /// the decode steps; zero for single-token outputs).
    pub tpot_s: f64,
    /// End-to-end latency in seconds (arrival → last token).
    pub e2e_s: f64,
    /// Output tokens per second of end-to-end latency.
    pub tokens_per_s: f64,
    /// Compute energy attributed to this request in µJ: its share of every
    /// micro-batch it participated in, split by token count — except the
    /// attention energy, which is weighted by attended KV as well.
    pub energy_uj: f64,
    /// NoC transfer energy attributed to this request in µJ (inter-node
    /// activation / accumulation movement; zero on a single node).
    pub noc_energy_uj: f64,
    /// KV-cache bytes this request's pages moved over the NoC (prefill→
    /// decode handoffs, swap-outs and swap-ins under disaggregated
    /// placement; zero under colocated placement).
    pub kv_transfer_bytes: u64,
    /// NoC energy of those KV transfers in µJ.
    pub kv_transfer_energy_uj: f64,
    /// Micro-batches the request participated in.
    pub micro_batches: u64,
}

/// p50/p95/p99 of a latency population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Computes percentiles over `values` (need not be sorted). Returns the
    /// default (all zero) for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Percentiles::default();
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Percentiles {
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
        }
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Paged-KV statistics of one serving run: how full the pool ran and what
/// the pressure cost. All zeros (and `capacity_pages == None`) under an
/// unbounded pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KvStats {
    /// KV entries per page.
    pub page_tokens: usize,
    /// Total page capacity across all node pools (`None` = unbounded).
    pub capacity_pages: Option<u64>,
    /// High-water mark of mapped pages across the run.
    pub peak_used_pages: u64,
    /// Sessions evicted from a full pool (each re-entered the waiting queue
    /// and re-prefilled its KV).
    pub preemptions: u64,
    /// KV entries dropped by evictions and prefilled a second time — the
    /// recompute cost of preemption, in tokens.
    pub reprefill_tokens: u64,
    /// Pages released by evictions.
    pub evicted_pages: u64,
    /// Submissions rejected by admission control (queue depth bound, a
    /// request that could never fit the pool, or a projected-TTFT SLO
    /// violation).
    pub rejected_requests: u64,
    /// Page-fault stall cycles charged by the executor for evictions.
    pub fault_stall_cycles: u64,
    /// KV-page migrations between pools (prefill→decode handoffs plus
    /// swap-ins); zero under colocated placement.
    pub migrations: u64,
    /// Pages moved by those migrations.
    pub migrated_pages: u64,
    /// Sessions paged out of a decode pool under swap-style preemption.
    pub swap_outs: u64,
    /// Pages moved by those swap-outs.
    pub swapped_pages: u64,
    /// KV bytes moved over the NoC by migrations and swaps.
    pub transfer_bytes: u64,
    /// NoC energy of those KV transfers in µJ.
    pub transfer_energy_uj: f64,
    /// Stall cycles spent streaming KV transfers (receiving-node stalls for
    /// migrations and swap-ins, batch stalls for swap-outs).
    pub transfer_stall_cycles: u64,
}

impl KvStats {
    /// Peak pool occupancy in `[0, 1]`, or `None` for an unbounded pool.
    pub fn peak_occupancy(&self) -> Option<f64> {
        self.capacity_pages.map(|cap| {
            if cap > 0 {
                self.peak_used_pages as f64 / cap as f64
            } else {
                0.0
            }
        })
    }
}

/// The aggregate outcome of one serving run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Per-request statistics in submission order.
    pub requests: Vec<RequestStats>,
    /// Simulated wall-clock of the whole run in seconds.
    pub makespan_s: f64,
    /// Total output tokens generated.
    pub total_output_tokens: u64,
    /// Output tokens per second of makespan (the serving throughput).
    pub throughput_tokens_per_s: f64,
    /// Micro-batches executed.
    pub micro_batches: u64,
    /// Time-to-first-token percentiles in seconds.
    pub ttft: Percentiles,
    /// Time-per-output-token percentiles in seconds (multi-token requests).
    pub tpot: Percentiles,
    /// Operator traces cached by the accelerator at the end of the run.
    pub trace_cache_entries: usize,
    /// Accelerator nodes the run executed on (1 for the single-node
    /// executor).
    pub nodes: usize,
    /// Mesh label such as `1x1` or `4x4`.
    pub noc: String,
    /// Total NoC transfer energy in µJ across the run (zero on one node).
    pub noc_energy_uj: f64,
    /// Cycles each node spent executing micro-batches (never exceeds the
    /// makespan).
    pub node_busy_cycles: Vec<u64>,
    /// Paged KV-cache statistics (occupancy, preemptions, rejections).
    pub kv: KvStats,
}

impl RuntimeReport {
    /// Statistics restricted to one model.
    pub fn for_model(&self, model: ModelId) -> Vec<&RequestStats> {
        self.requests.iter().filter(|r| r.model == model).collect()
    }
}

impl RuntimeReport {
    /// Per-node utilization: busy cycles over the makespan (all zero for an
    /// empty run).
    pub fn node_utilization(&self, frequency_hz: f64) -> Vec<f64> {
        let makespan_cycles = self.makespan_s * frequency_hz;
        self.node_busy_cycles
            .iter()
            .map(|&b| if makespan_cycles > 0.0 { b as f64 / makespan_cycles } else { 0.0 })
            .collect()
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests, {} tokens in {:.1} s simulated — {:.2} tokens/s over {} micro-batches \
             on {} node(s) ({} mesh, NoC energy {:.3} µJ)",
            self.requests.len(),
            self.total_output_tokens,
            self.makespan_s,
            self.throughput_tokens_per_s,
            self.micro_batches,
            self.nodes,
            self.noc,
            self.noc_energy_uj,
        )?;
        writeln!(
            f,
            "TTFT p50/p95/p99: {:.1}/{:.1}/{:.1} s   TPOT p50/p95/p99: {:.2}/{:.2}/{:.2} s",
            self.ttft.p50,
            self.ttft.p95,
            self.ttft.p99,
            self.tpot.p50,
            self.tpot.p95,
            self.tpot.p99,
        )?;
        writeln!(f, "trace cache: {} entries", self.trace_cache_entries)?;
        match self.kv.capacity_pages {
            None => write!(f, "KV pool: unbounded ({}-token pages)", self.kv.page_tokens),
            Some(capacity) => write!(
                f,
                "KV pool: peak {}/{} pages ({}-token), {} preemptions ({} re-prefill tokens, \
                 {} stall cycles), {} rejected",
                self.kv.peak_used_pages,
                capacity,
                self.kv.page_tokens,
                self.kv.preemptions,
                self.kv.reprefill_tokens,
                self.kv.fault_stall_cycles,
                self.kv.rejected_requests,
            ),
        }?;
        if self.kv.migrations > 0 || self.kv.swap_outs > 0 {
            write!(
                f,
                "\nKV transfers: {} migrations ({} pages), {} swap-outs ({} pages), {} B over \
                 the NoC ({:.3} µJ, {} stall cycles)",
                self.kv.migrations,
                self.kv.migrated_pages,
                self.kv.swap_outs,
                self.kv.swapped_pages,
                self.kv.transfer_bytes,
                self.kv.transfer_energy_uj,
                self.kv.transfer_stall_cycles,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_population() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::of(&values);
        assert_eq!(p.p50, 51.0); // nearest rank on 0-indexed 99-step range
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
    }

    #[test]
    fn percentiles_of_empty_and_singleton() {
        assert_eq!(Percentiles::of(&[]), Percentiles::default());
        let p = Percentiles::of(&[2.5]);
        assert_eq!((p.p50, p.p95, p.p99), (2.5, 2.5, 2.5));
    }

    #[test]
    fn report_display_mentions_throughput_and_percentiles() {
        let report = RuntimeReport {
            requests: vec![],
            makespan_s: 0.5,
            total_output_tokens: 1000,
            throughput_tokens_per_s: 2000.0,
            micro_batches: 42,
            ttft: Percentiles { p50: 0.001, p95: 0.002, p99: 0.003 },
            tpot: Percentiles { p50: 0.0001, p95: 0.0002, p99: 0.0003 },
            trace_cache_entries: 7,
            nodes: 16,
            noc: "4x4".to_string(),
            noc_energy_uj: 1.5,
            node_busy_cycles: vec![100_000_000; 16],
            kv: KvStats::default(),
        };
        let text = report.to_string();
        assert!(text.contains("2000.00 tokens/s"));
        assert!(text.contains("TTFT"));
        assert!(text.contains("42 micro-batches"));
        assert!(text.contains("7 entries"));
        assert!(text.contains("16 node(s)"));
        assert!(text.contains("4x4 mesh"));
        assert!(text.contains("KV pool: unbounded"));
        // Utilization: 1e8 busy cycles of a 0.5 s makespan at 400 MHz = 0.5.
        let util = report.node_utilization(400e6);
        assert_eq!(util.len(), 16);
        assert!(util.iter().all(|&u| (u - 0.5).abs() < 1e-9), "{util:?}");
        // A bounded pool renders its pressure counters.
        let mut pressured = report.clone();
        pressured.kv = KvStats {
            page_tokens: 128,
            capacity_pages: Some(256),
            peak_used_pages: 192,
            preemptions: 3,
            reprefill_tokens: 980,
            evicted_pages: 12,
            rejected_requests: 2,
            fault_stall_cycles: 3072,
            ..KvStats::default()
        };
        let text = pressured.to_string();
        assert!(text.contains("peak 192/256 pages"));
        assert!(text.contains("3 preemptions"));
        assert!(text.contains("980 re-prefill tokens"));
        assert!(text.contains("2 rejected"));
        assert_eq!(pressured.kv.peak_occupancy(), Some(0.75));
        assert_eq!(KvStats::default().peak_occupancy(), None);
    }
}
