//! Per-request and aggregate serving statistics: TTFT, TPOT, throughput and
//! their percentiles, plus a human-readable report table.

use crate::request::RequestId;
use mugi_numerics::cast::{u64_from_usize, usize_from_f64};
use mugi_workloads::models::ModelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency and efficiency statistics of one finished request.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestStats {
    /// Request identifier.
    pub id: RequestId,
    /// Model the request ran on.
    pub model: ModelId,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Generated output length in tokens.
    pub output_tokens: usize,
    /// Time to first token in seconds (arrival → first token).
    pub ttft_s: f64,
    /// Time per output token in seconds (first → last token, averaged over
    /// the decode steps; zero for single-token outputs).
    pub tpot_s: f64,
    /// End-to-end latency in seconds (arrival → last token).
    pub e2e_s: f64,
    /// Output tokens per second of end-to-end latency.
    pub tokens_per_s: f64,
    /// Compute energy attributed to this request in µJ: its share of every
    /// micro-batch it participated in, split by token count — except the
    /// attention energy, which is weighted by attended KV as well.
    pub energy_uj: f64,
    /// NoC transfer energy attributed to this request in µJ (inter-node
    /// activation / accumulation movement; zero on a single node).
    pub noc_energy_uj: f64,
    /// KV-cache bytes this request's pages moved over the NoC (prefill→
    /// decode handoffs, swap-outs and swap-ins under disaggregated
    /// placement; zero under colocated placement).
    pub kv_transfer_bytes: u64,
    /// NoC energy of those KV transfers in µJ.
    pub kv_transfer_energy_uj: f64,
    /// Micro-batches the request participated in.
    pub micro_batches: u64,
}

/// p50/p95/p99 of a latency population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Computes percentiles over `values` (need not be sorted). Returns the
    /// default (all zero) for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Percentiles::default();
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Percentiles {
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
        }
    }
}

/// Nearest-rank percentile over a sorted slice: the smallest value with at
/// least `p` percent of the population at or below it, i.e. element
/// `⌈p/100 · n⌉` (1-indexed) — the textbook nearest-rank definition. No
/// interpolation: the result is always a member of the population.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = usize_from_f64((p / 100.0 * sorted.len() as f64).ceil());
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Paged-KV statistics of one serving run: how full the pool ran and what
/// the pressure cost. All zeros (and `capacity_pages == None`) under an
/// unbounded pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KvStats {
    /// KV entries per page.
    pub page_tokens: usize,
    /// Total page capacity across all node pools (`None` = unbounded).
    pub capacity_pages: Option<u64>,
    /// High-water mark of mapped pages across the run.
    pub peak_used_pages: u64,
    /// Sessions evicted from a full pool (each re-entered the waiting queue
    /// and re-prefilled its KV).
    pub preemptions: u64,
    /// KV entries dropped by evictions and prefilled a second time — the
    /// recompute cost of preemption, in tokens.
    pub reprefill_tokens: u64,
    /// Pages released by evictions.
    pub evicted_pages: u64,
    /// Submissions rejected by admission control (queue depth bound, a
    /// request that could never fit the pool, or a projected-TTFT SLO
    /// violation).
    pub rejected_requests: u64,
    /// Page-fault stall cycles charged by the executor for evictions.
    pub fault_stall_cycles: u64,
    /// KV-page migrations between pools (prefill→decode handoffs plus
    /// swap-ins); zero under colocated placement.
    pub migrations: u64,
    /// Pages moved by those migrations.
    pub migrated_pages: u64,
    /// Sessions paged out of a decode pool under swap-style preemption.
    pub swap_outs: u64,
    /// Pages moved by those swap-outs.
    pub swapped_pages: u64,
    /// KV bytes moved over the NoC by migrations and swaps.
    pub transfer_bytes: u64,
    /// NoC energy of those KV transfers in µJ.
    pub transfer_energy_uj: f64,
    /// Stall cycles spent streaming KV transfers (receiving-node stalls for
    /// migrations and swap-ins, batch stalls for swap-outs).
    pub transfer_stall_cycles: u64,
    /// Node role re-rolls completed by the adaptive control plane (zero
    /// with the controller off — the default — or colocated placement).
    #[serde(default)]
    pub role_rerolls: u64,
    /// Prefill slices observed by the online SLO calibrator (zero with
    /// calibration off).
    #[serde(default)]
    pub calibration_samples: u64,
    /// The calibrated cycles-per-prefill-token admission rate, once warmed
    /// up (`None` with calibration off or still warming).
    #[serde(default)]
    pub calibrated_cycles_per_prefill_token: Option<u64>,
}

impl KvStats {
    /// Peak pool occupancy in `[0, 1]`, or `None` for an unbounded pool.
    pub fn peak_occupancy(&self) -> Option<f64> {
        self.capacity_pages.map(|cap| {
            if cap > 0 {
                self.peak_used_pages as f64 / cap as f64
            } else {
                0.0
            }
        })
    }
}

/// The aggregate outcome of one serving run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Per-request statistics in submission order.
    pub requests: Vec<RequestStats>,
    /// Simulated wall-clock of the whole run in seconds.
    pub makespan_s: f64,
    /// Total output tokens generated.
    pub total_output_tokens: u64,
    /// Output tokens per second of makespan (the serving throughput).
    pub throughput_tokens_per_s: f64,
    /// Micro-batches executed.
    pub micro_batches: u64,
    /// Time-to-first-token percentiles in seconds.
    pub ttft: Percentiles,
    /// Time-per-output-token percentiles in seconds (multi-token requests).
    pub tpot: Percentiles,
    /// Operator traces cached by the accelerator at the end of the run.
    pub trace_cache_entries: usize,
    /// Accelerator nodes the run executed on (1 for the single-node
    /// executor).
    pub nodes: usize,
    /// Mesh label such as `1x1` or `4x4`.
    pub noc: String,
    /// Total NoC transfer energy in µJ across the run (zero on one node).
    pub noc_energy_uj: f64,
    /// Cycles each node spent executing micro-batches (never exceeds the
    /// makespan).
    pub node_busy_cycles: Vec<u64>,
    /// Paged KV-cache statistics (occupancy, preemptions, rejections).
    pub kv: KvStats,
}

impl RuntimeReport {
    /// Statistics restricted to one model.
    pub fn for_model(&self, model: ModelId) -> Vec<&RequestStats> {
        self.requests.iter().filter(|r| r.model == model).collect()
    }
}

impl RuntimeReport {
    /// Per-node utilization: busy cycles over the makespan (all zero for an
    /// empty run).
    pub fn node_utilization(&self, frequency_hz: f64) -> Vec<f64> {
        let makespan_cycles = self.makespan_s * frequency_hz;
        self.node_busy_cycles
            .iter()
            .map(|&b| if makespan_cycles > 0.0 { b as f64 / makespan_cycles } else { 0.0 })
            .collect()
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests, {} tokens in {:.1} s simulated — {:.2} tokens/s over {} micro-batches \
             on {} node(s) ({} mesh, NoC energy {:.3} µJ)",
            self.requests.len(),
            self.total_output_tokens,
            self.makespan_s,
            self.throughput_tokens_per_s,
            self.micro_batches,
            self.nodes,
            self.noc,
            self.noc_energy_uj,
        )?;
        writeln!(
            f,
            "TTFT p50/p95/p99: {:.1}/{:.1}/{:.1} s   TPOT p50/p95/p99: {:.2}/{:.2}/{:.2} s",
            self.ttft.p50,
            self.ttft.p95,
            self.ttft.p99,
            self.tpot.p50,
            self.tpot.p95,
            self.tpot.p99,
        )?;
        writeln!(f, "trace cache: {} entries", self.trace_cache_entries)?;
        match self.kv.capacity_pages {
            None => write!(f, "KV pool: unbounded ({}-token pages)", self.kv.page_tokens),
            Some(capacity) => write!(
                f,
                "KV pool: peak {}/{} pages ({}-token), {} preemptions ({} re-prefill tokens, \
                 {} stall cycles), {} rejected",
                self.kv.peak_used_pages,
                capacity,
                self.kv.page_tokens,
                self.kv.preemptions,
                self.kv.reprefill_tokens,
                self.kv.fault_stall_cycles,
                self.kv.rejected_requests,
            ),
        }?;
        if self.kv.migrations > 0 || self.kv.swap_outs > 0 {
            write!(
                f,
                "\nKV transfers: {} migrations ({} pages), {} swap-outs ({} pages), {} B over \
                 the NoC ({:.3} µJ, {} stall cycles)",
                self.kv.migrations,
                self.kv.migrated_pages,
                self.kv.swap_outs,
                self.kv.swapped_pages,
                self.kv.transfer_bytes,
                self.kv.transfer_energy_uj,
                self.kv.transfer_stall_cycles,
            )?;
        }
        Ok(())
    }
}

/// Incrementally folded per-request statistics: the O(1)-memory counterpart
/// of [`RuntimeReport::requests`]. The event engine folds each session's
/// [`RequestStats`] in here the moment it retires, so serving a million
/// requests costs the memory of the fold, not of a million stat records.
///
/// Floating-point sums accumulate in retirement (= id) order — the same
/// order a full report would sum them in — so a folded total and a
/// report-derived total agree bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsFold {
    /// Requests folded so far.
    pub requests: u64,
    /// Total prompt tokens.
    pub prompt_tokens: u64,
    /// Total generated tokens.
    pub output_tokens: u64,
    /// Total micro-batch participations.
    pub micro_batches: u64,
    /// Summed compute energy in µJ.
    pub energy_uj: f64,
    /// Summed NoC transfer energy in µJ.
    pub noc_energy_uj: f64,
    /// Summed KV bytes moved over the NoC.
    pub kv_transfer_bytes: u64,
    /// Summed KV-transfer energy in µJ.
    pub kv_transfer_energy_uj: f64,
    /// Summed time-to-first-token in seconds (divide by `requests` for the
    /// mean; percentiles need the full population and are deliberately not
    /// offered here).
    pub ttft_sum_s: f64,
    /// Summed end-to-end latency in seconds.
    pub e2e_sum_s: f64,
    /// Worst time-to-first-token seen.
    pub max_ttft_s: f64,
    /// Order-sensitive FNV-1a checksum over each folded request's identity
    /// `(id, prompt_tokens, output_tokens)`. Independently computable from
    /// the request stream alone ([`StatsFold::identity_checksum_of`]), so a
    /// soak run can prove every generated request retired exactly once,
    /// intact and in order, without storing any of them.
    pub identity_checksum: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl StatsFold {
    /// Folds one retired request in. Must be called in id order for the
    /// floating-point sums and the checksum to be reproducible.
    pub fn add(&mut self, s: &RequestStats) {
        self.requests += 1;
        self.prompt_tokens += s.prompt_tokens as u64;
        self.output_tokens += s.output_tokens as u64;
        self.micro_batches += s.micro_batches;
        self.energy_uj += s.energy_uj;
        self.noc_energy_uj += s.noc_energy_uj;
        self.kv_transfer_bytes += s.kv_transfer_bytes;
        self.kv_transfer_energy_uj += s.kv_transfer_energy_uj;
        self.ttft_sum_s += s.ttft_s;
        self.e2e_sum_s += s.e2e_s;
        self.max_ttft_s = self.max_ttft_s.max(s.ttft_s);
        self.identity_checksum =
            Self::fold_identity(self.identity_checksum, s.id.0, s.prompt_tokens, s.output_tokens);
    }

    /// Folds one request identity into a running checksum (zero seeds a
    /// fresh chain with the FNV offset basis).
    pub fn fold_identity(
        checksum: u64,
        id: u64,
        prompt_tokens: usize,
        output_tokens: usize,
    ) -> u64 {
        let hash = if checksum == 0 { FNV_OFFSET } else { checksum };
        let hash = fnv_fold(hash, id);
        let hash = fnv_fold(hash, prompt_tokens as u64);
        fnv_fold(hash, output_tokens as u64)
    }

    /// The identity checksum a run over `requests` (in submission order,
    /// ids assigned densely from `first_id`) must end with.
    pub fn identity_checksum_of<'a, I>(first_id: u64, requests: I) -> u64
    where
        I: IntoIterator<Item = &'a crate::request::Request>,
    {
        let mut checksum = 0;
        for (i, r) in requests.into_iter().enumerate() {
            checksum = Self::fold_identity(
                checksum,
                first_id + u64_from_usize(i),
                r.prompt_tokens,
                r.output_tokens,
            );
        }
        checksum
    }

    /// Folds a full report's per-request statistics (in their stored order)
    /// — what an incremental run must reproduce exactly.
    pub fn of_report(report: &RuntimeReport) -> Self {
        let mut fold = StatsFold::default();
        for r in &report.requests {
            fold.add(r);
        }
        fold
    }
}

/// The aggregate outcome of a million-request-scale serving run: everything
/// [`RuntimeReport`] carries except the per-request population (and with it
/// the percentiles), so the report itself is O(1) however long the stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Folded per-request statistics.
    pub fold: StatsFold,
    /// Simulated wall-clock of the whole run in seconds.
    pub makespan_s: f64,
    /// Output tokens per second of makespan.
    pub throughput_tokens_per_s: f64,
    /// Micro-batches executed.
    pub micro_batches: u64,
    /// Accelerator nodes the run executed on.
    pub nodes: usize,
    /// High-water mark of the live (unretired) session population — what
    /// the engine's memory scales with.
    pub peak_live_sessions: usize,
    /// High-water mark of the event queue (in-flight completions plus the
    /// one staged arrival).
    pub peak_event_queue: usize,
    /// Paged KV-cache statistics.
    pub kv: KvStats,
}

impl fmt::Display for ScaleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests, {} tokens in {:.1} s simulated — {:.2} tokens/s over {} micro-batches \
             on {} node(s)",
            self.fold.requests,
            self.fold.output_tokens,
            self.makespan_s,
            self.throughput_tokens_per_s,
            self.micro_batches,
            self.nodes,
        )?;
        write!(
            f,
            "mean TTFT {:.4} s (max {:.4}), mean E2E {:.4} s, peak {} live sessions, peak {} \
             queued events",
            if self.fold.requests > 0 {
                self.fold.ttft_sum_s / self.fold.requests as f64
            } else {
                0.0
            },
            self.fold.max_ttft_s,
            if self.fold.requests > 0 {
                self.fold.e2e_sum_s / self.fold.requests as f64
            } else {
                0.0
            },
            self.peak_live_sessions,
            self.peak_event_queue,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_population() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::of(&values);
        assert_eq!(p.p50, 50.0); // nearest rank: ⌈0.50 · 100⌉ = 50th value
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
    }

    #[test]
    fn nearest_rank_is_pinned_at_small_populations() {
        // Regression for the interpolated-index bug: nearest-rank must pick
        // element ⌈p/100 · n⌉ (1-indexed), never an interpolated neighbour.
        // n = 1: every percentile is the only value.
        let p = Percentiles::of(&[7.0]);
        assert_eq!((p.p50, p.p95, p.p99), (7.0, 7.0, 7.0));
        // n = 2: p50 → ⌈1.0⌉ = 1st, p95/p99 → ⌈1.9⌉/⌈1.98⌉ = 2nd.
        let p = Percentiles::of(&[1.0, 2.0]);
        assert_eq!((p.p50, p.p95, p.p99), (1.0, 2.0, 2.0));
        // n = 3: p50 → ⌈1.5⌉ = 2nd, p95/p99 → ⌈2.85⌉/⌈2.97⌉ = 3rd. The
        // old rounded interpolation agreed here on p50 but reached the 3rd
        // value via round(0.95·2) = 2 only by accident of rounding.
        let p = Percentiles::of(&[1.0, 2.0, 3.0]);
        assert_eq!((p.p50, p.p95, p.p99), (2.0, 3.0, 3.0));
        // n = 100: p50 → 50th, p95 → 95th, p99 → 99th. The old
        // interpolation reported the 51st for p50.
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::of(&values);
        assert_eq!((p.p50, p.p95, p.p99), (50.0, 95.0, 99.0));
        // Order-independence: percentiles sort internally.
        let mut shuffled: Vec<f64> = values.clone();
        shuffled.reverse();
        assert_eq!(Percentiles::of(&shuffled), p);
    }

    #[test]
    fn percentiles_of_empty_and_singleton() {
        assert_eq!(Percentiles::of(&[]), Percentiles::default());
        let p = Percentiles::of(&[2.5]);
        assert_eq!((p.p50, p.p95, p.p99), (2.5, 2.5, 2.5));
    }

    #[test]
    fn report_display_mentions_throughput_and_percentiles() {
        let report = RuntimeReport {
            requests: vec![],
            makespan_s: 0.5,
            total_output_tokens: 1000,
            throughput_tokens_per_s: 2000.0,
            micro_batches: 42,
            ttft: Percentiles { p50: 0.001, p95: 0.002, p99: 0.003 },
            tpot: Percentiles { p50: 0.0001, p95: 0.0002, p99: 0.0003 },
            trace_cache_entries: 7,
            nodes: 16,
            noc: "4x4".to_string(),
            noc_energy_uj: 1.5,
            node_busy_cycles: vec![100_000_000; 16],
            kv: KvStats::default(),
        };
        let text = report.to_string();
        assert!(text.contains("2000.00 tokens/s"));
        assert!(text.contains("TTFT"));
        assert!(text.contains("42 micro-batches"));
        assert!(text.contains("7 entries"));
        assert!(text.contains("16 node(s)"));
        assert!(text.contains("4x4 mesh"));
        assert!(text.contains("KV pool: unbounded"));
        // Utilization: 1e8 busy cycles of a 0.5 s makespan at 400 MHz = 0.5.
        let util = report.node_utilization(400e6);
        assert_eq!(util.len(), 16);
        assert!(util.iter().all(|&u| (u - 0.5).abs() < 1e-9), "{util:?}");
        // A bounded pool renders its pressure counters.
        let mut pressured = report.clone();
        pressured.kv = KvStats {
            page_tokens: 128,
            capacity_pages: Some(256),
            peak_used_pages: 192,
            preemptions: 3,
            reprefill_tokens: 980,
            evicted_pages: 12,
            rejected_requests: 2,
            fault_stall_cycles: 3072,
            ..KvStats::default()
        };
        let text = pressured.to_string();
        assert!(text.contains("peak 192/256 pages"));
        assert!(text.contains("3 preemptions"));
        assert!(text.contains("980 re-prefill tokens"));
        assert!(text.contains("2 rejected"));
        assert_eq!(pressured.kv.peak_occupancy(), Some(0.75));
        assert_eq!(KvStats::default().peak_occupancy(), None);
    }

    fn stat(id: u64, prompt: usize, output: usize) -> RequestStats {
        RequestStats {
            id: RequestId(id),
            model: ModelId::Llama2_7b,
            prompt_tokens: prompt,
            output_tokens: output,
            ttft_s: 0.001 * (id + 1) as f64,
            tpot_s: 0.0001,
            e2e_s: 0.01 * (id + 1) as f64,
            tokens_per_s: 100.0,
            energy_uj: 1.5,
            noc_energy_uj: 0.25,
            kv_transfer_bytes: 64,
            kv_transfer_energy_uj: 0.125,
            micro_batches: 3,
        }
    }

    #[test]
    fn stats_fold_accumulates_and_checksums_in_order() {
        let stats: Vec<RequestStats> = (0..5).map(|i| stat(i, 100 + i as usize, 10)).collect();
        let mut fold = StatsFold::default();
        for s in &stats {
            fold.add(s);
        }
        assert_eq!(fold.requests, 5);
        assert_eq!(fold.prompt_tokens, 100 + 101 + 102 + 103 + 104);
        assert_eq!(fold.output_tokens, 50);
        assert_eq!(fold.micro_batches, 15);
        assert_eq!(fold.kv_transfer_bytes, 320);
        assert_eq!(fold.max_ttft_s, 0.005);
        // The identity checksum is order-sensitive and matches the
        // stream-side computation.
        let requests: Vec<crate::request::Request> = stats
            .iter()
            .map(|s| crate::request::Request::new(s.model, s.prompt_tokens, s.output_tokens))
            .collect();
        assert_eq!(fold.identity_checksum, StatsFold::identity_checksum_of(0, &requests));
        let mut reversed = StatsFold::default();
        for s in stats.iter().rev() {
            reversed.add(s);
        }
        assert_ne!(reversed.identity_checksum, fold.identity_checksum);
        // Folding a report's request population reproduces the same fold.
        let report = RuntimeReport {
            requests: stats,
            makespan_s: 1.0,
            total_output_tokens: 50,
            throughput_tokens_per_s: 50.0,
            micro_batches: 15,
            ttft: Percentiles::default(),
            tpot: Percentiles::default(),
            trace_cache_entries: 0,
            nodes: 1,
            noc: "1x1".to_string(),
            noc_energy_uj: 1.25,
            node_busy_cycles: vec![0],
            kv: KvStats::default(),
        };
        assert_eq!(StatsFold::of_report(&report), fold);
    }

    #[test]
    fn scale_report_displays_totals() {
        let mut fold = StatsFold::default();
        fold.add(&stat(0, 128, 16));
        let report = ScaleReport {
            fold,
            makespan_s: 2.0,
            throughput_tokens_per_s: 8.0,
            micro_batches: 3,
            nodes: 4,
            peak_live_sessions: 1,
            peak_event_queue: 2,
            kv: KvStats::default(),
        };
        let text = report.to_string();
        assert!(text.contains("1 requests"));
        assert!(text.contains("16 tokens"));
        assert!(text.contains("peak 1 live sessions"));
    }
}
