//! The adaptive control plane: a feedback controller sampled at
//! batch-completion boundaries.
//!
//! A static disaggregated split
//! ([`Disaggregated`](crate::placement::PlacementPolicy::Disaggregated))
//! fixes the prefill:decode node ratio
//! for the whole run, and a static [`SloConfig`](crate::kv::SloConfig) fixes
//! the service-rate estimate its admission check projects TTFT with. Both
//! are guesses about the workload, and both go stale the moment the
//! prompt:output mix shifts. This module closes the loop with three
//! features, each individually switchable and **all off by default** — a
//! disabled controller is bit-inert, which the golden suites pin:
//!
//! 1. **Dynamic role reassignment** ([`ControlConfig::reassign_roles`]).
//!    At every completion the executor compares the outstanding prefill
//!    demand (the scheduler's incremental backlog ledger) against the
//!    outstanding decode demand (tokens promised but not yet emitted) and
//!    re-rolls one node's [`PoolRole`] toward the demand split — via a
//!    *quiescent handoff*: the node first drains (it forms no new batches,
//!    receives no migrations or swap-ins, and its resident sessions are
//!    preempted or migrated out over the existing machinery), and flips
//!    role only once no in-flight batch runs on it and its pool holds no
//!    pages. Cooldown and a demand dead-band keep it from thrashing.
//! 2. **Online SLO calibration** ([`ControlConfig::calibrate_slo`]). The
//!    static `cycles_per_prefill_token` admission estimate is replaced by a
//!    live one measured from completed prefill slices: an integer
//!    fixed-point EWMA, floored by the cumulative mean so the estimate is
//!    *conservative* — it never admits a request the true measured rate
//!    would have rejected (a property test pins this).
//! 3. **Load-aware migration placement**
//!    ([`ControlConfig::load_aware_migration`]). Prefill→decode handoffs
//!    and swap-ins land on the decode node with the least *projected decode
//!    load* — the resident sessions' remaining output tokens, which is
//!    exactly their future KV growth — instead of the node with the most
//!    free pages, which systematically over-packs nodes hosting
//!    long-output sessions.
//!
//! Everything here is deterministic integer arithmetic on quantities both
//! engines observe in the same order, so the per-step executor and the
//! discrete-event engine stay bit-identical with the controller on.

use crate::placement::PoolRole;
use serde::{Deserialize, Serialize};

/// Configuration of the adaptive control plane. The default disables every
/// feature: a default-constructed controller is bit-inert (the pre-refactor
/// goldens and the 1M-request soak checksum pin this).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Re-roll node roles toward the live prefill:decode demand split
    /// (disaggregated placements only; a no-op elsewhere).
    pub reassign_roles: bool,
    /// Replace the static [`SloConfig`](crate::kv::SloConfig) service-rate
    /// estimate with the calibrated one (no-op without an SLO configured).
    pub calibrate_slo: bool,
    /// Place migrations and swap-ins by projected decode load instead of
    /// most-free-pages (bounded disaggregated placements only).
    pub load_aware_migration: bool,
    /// Minimum cycles between the *start* of one role re-roll and the next,
    /// so a demand spike cannot thrash the mesh through repeated drains.
    pub min_flip_interval_cycles: u64,
    /// Demand dead-band: no re-roll starts unless the combined outstanding
    /// prefill + decode demand is at least this many tokens (an idle or
    /// nearly drained system has nothing worth rebalancing).
    pub min_demand_tokens: u64,
    /// Prefill tokens the calibrator must observe before its estimate
    /// replaces the configured one (early slices are noisy).
    pub calibration_warmup_tokens: u64,
    /// EWMA weight as a right-shift: each new slice moves the estimate by
    /// `1 / 2^shift` of the gap. Smaller shifts track faster, larger ones
    /// smooth harder.
    pub calibration_ewma_shift: u32,
}

impl Default for ControlConfig {
    /// Everything off; the tuning knobs hold the values
    /// [`ControlConfig::adaptive`] enables them with.
    fn default() -> Self {
        ControlConfig {
            reassign_roles: false,
            calibrate_slo: false,
            load_aware_migration: false,
            min_flip_interval_cycles: 2_000_000,
            min_demand_tokens: 512,
            calibration_warmup_tokens: 1_024,
            calibration_ewma_shift: 3,
        }
    }
}

impl ControlConfig {
    /// Every feature on, with the default tuning knobs.
    pub fn adaptive() -> Self {
        ControlConfig {
            reassign_roles: true,
            calibrate_slo: true,
            load_aware_migration: true,
            ..ControlConfig::default()
        }
    }

    /// Whether any feature is enabled.
    pub fn any_enabled(&self) -> bool {
        self.reassign_roles || self.calibrate_slo || self.load_aware_migration
    }
}

/// Fixed-point scale of the calibrator's internal rate: Q48.16
/// cycles-per-token.
const RATE_FRAC_BITS: u32 = 16;

/// Online estimator of the prefill service rate (cycles per prefill token),
/// fed one completed prefill slice at a time by the executor.
///
/// Two integer statistics run side by side:
///
/// * a Q48.16 fixed-point EWMA, which tracks drift in the live rate
///   (quantization widens batches, preemption storms slow them);
/// * the cumulative mean over every observed slice.
///
/// The published [`SloCalibrator::rate`] is the *maximum* of the two,
/// rounded up — so it responds to recent slowdowns like an EWMA but can
/// never dip below the true measured average. That makes calibrated
/// admission conservative by construction: any request it admits, an oracle
/// using the exact measured mean rate would have admitted too.
#[derive(Clone, Debug, Default)]
pub struct SloCalibrator {
    /// EWMA of per-slice cycles-per-token, Q48.16; zero until seeded.
    ewma_rate_q16: u64,
    /// Total prefill tokens observed.
    tokens: u64,
    /// Total cycles those slices took.
    cycles: u64,
    /// Completed prefill slices observed.
    samples: u64,
    /// Tokens to observe before [`SloCalibrator::rate`] publishes.
    warmup_tokens: u64,
    /// EWMA weight as a right-shift (see
    /// [`ControlConfig::calibration_ewma_shift`]).
    ewma_shift: u32,
}

impl SloCalibrator {
    /// A calibrator that publishes nothing until `warmup_tokens` prefill
    /// tokens have been observed, then smooths with weight `1 / 2^shift`.
    pub fn new(warmup_tokens: u64, ewma_shift: u32) -> Self {
        SloCalibrator { warmup_tokens, ewma_shift, ..SloCalibrator::default() }
    }

    /// Folds in one completed prefill slice: `tokens` prefill tokens served
    /// in a micro-batch that ran `cycles` cycles. Slices with no prefill
    /// tokens must not be reported.
    pub fn observe(&mut self, tokens: u64, cycles: u64) {
        debug_assert!(tokens > 0, "a prefill slice carries at least one token");
        // u128 so `cycles << 16` cannot wrap even on absurd makespans.
        let rate_q16 = u64::try_from(((cycles as u128) << RATE_FRAC_BITS) / tokens as u128)
            .unwrap_or(u64::MAX);
        self.ewma_rate_q16 = if self.samples == 0 {
            rate_q16
        } else if rate_q16 >= self.ewma_rate_q16 {
            self.ewma_rate_q16 + ((rate_q16 - self.ewma_rate_q16) >> self.ewma_shift)
        } else {
            self.ewma_rate_q16 - ((self.ewma_rate_q16 - rate_q16) >> self.ewma_shift)
        };
        self.tokens = self.tokens.saturating_add(tokens);
        self.cycles = self.cycles.saturating_add(cycles);
        self.samples += 1;
    }

    /// The calibrated cycles-per-prefill-token estimate, or `None` while
    /// still warming up. Always at least 1, always at least the cumulative
    /// mean rounded up (the conservativeness floor), and tracks the EWMA
    /// above that floor.
    pub fn rate(&self) -> Option<u64> {
        if self.tokens < self.warmup_tokens.max(1) {
            return None;
        }
        let ewma = (self.ewma_rate_q16 >> RATE_FRAC_BITS)
            + u64::from(self.ewma_rate_q16 & ((1 << RATE_FRAC_BITS) - 1) != 0);
        let mean = self.cycles.div_ceil(self.tokens);
        Some(ewma.max(mean).max(1))
    }

    /// Completed prefill slices observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// A role re-roll in progress: `node` forms no new batches and accepts no
/// migrations while its residents drain, then flips to `target` once
/// quiescent (no in-flight batch, no resident pages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Drain {
    /// The mesh node being drained.
    pub node: usize,
    /// The role it assumes once quiescent.
    pub target: PoolRole,
}

/// The prefill node count the demand split asks for: `nodes` apportioned by
/// `prefill_demand : decode_demand` with round-half-up integer arithmetic,
/// clamped so both pools keep at least one node. With zero total demand the
/// current split is already right (returns `current`).
pub fn desired_prefill_nodes(
    nodes: usize,
    current: usize,
    prefill_demand: u64,
    decode_demand: u64,
) -> usize {
    debug_assert!(nodes >= 2, "a disaggregated mesh has at least two nodes");
    let total = prefill_demand + decode_demand;
    if total == 0 {
        return current;
    }
    let raw = (nodes as u64 * prefill_demand + total / 2) / total;
    usize::try_from(raw).unwrap_or(nodes).clamp(1, nodes - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_disabled() {
        let c = ControlConfig::default();
        assert!(!c.any_enabled());
        assert!(ControlConfig::adaptive().any_enabled());
        assert!(ControlConfig::adaptive().reassign_roles);
        assert!(ControlConfig::adaptive().calibrate_slo);
        assert!(ControlConfig::adaptive().load_aware_migration);
    }

    #[test]
    fn calibrator_warms_up_then_tracks_the_rate() {
        let mut c = SloCalibrator::new(100, 3);
        c.observe(50, 5_000); // 100 cycles/token
        assert_eq!(c.rate(), None, "below warmup");
        c.observe(50, 5_000);
        assert_eq!(c.samples(), 2);
        assert_eq!(c.rate(), Some(100), "steady rate calibrates exactly");
        // A slowdown pulls the estimate up immediately (EWMA above the
        // mean floor).
        c.observe(100, 40_000); // 400 cycles/token
        let rate = c.rate().unwrap();
        assert!(rate > 100, "slowdown must raise the estimate, got {rate}");
    }

    #[test]
    fn calibrator_never_dips_below_the_cumulative_mean() {
        // A fast recent slice drags the EWMA down, but the published rate
        // stays floored at the cumulative mean — the conservativeness
        // guarantee the admission property test relies on.
        let mut c = SloCalibrator::new(1, 0); // shift 0: EWMA = last slice
        c.observe(10, 10_000); // 1000 cycles/token
        c.observe(10, 10); // 1 cycle/token
        let mean = (10_000u64 + 10).div_ceil(20);
        assert_eq!(c.rate(), Some(mean), "EWMA collapsed but the mean floor holds");
    }

    #[test]
    fn desired_split_tracks_demand_and_respects_the_clamp() {
        // Balanced demand on 4 nodes: 2 prefill.
        assert_eq!(desired_prefill_nodes(4, 1, 500, 500), 2);
        // All-prefill demand clamps to nodes - 1, all-decode to 1.
        assert_eq!(desired_prefill_nodes(4, 2, 1_000, 0), 3);
        assert_eq!(desired_prefill_nodes(4, 2, 0, 1_000), 1);
        // No demand: keep the current split.
        assert_eq!(desired_prefill_nodes(4, 3, 0, 0), 3);
        // Round-half-up: 5 nodes, 30% prefill demand → 5*0.3 = 1.5 → 2.
        assert_eq!(desired_prefill_nodes(5, 1, 300, 700), 2);
    }
}
