//! Requests and sessions: the unit of work the serving engine schedules.
//!
//! A [`Request`] is what a client submits — a model, a prompt length and a
//! requested output length. The scheduler wraps each admitted request in a
//! [`Session`] that tracks its per-session KV-cache state (how much of the
//! prompt has been prefilled, how many tokens have been generated) and the
//! latency milestones (first token, completion) the report is built from.

use crate::kv::PageTable;
use mugi_numerics::cast::usize_from_u64;
use mugi_workloads::models::ModelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one request, assigned by the scheduler at submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One inference request: generate `output_tokens` tokens for a
/// `prompt_tokens`-token prompt on `model`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// The model the request targets.
    pub model: ModelId,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Requested completion length in tokens (the first one is produced by
    /// the prefill step, as in every continuous-batching server).
    pub output_tokens: usize,
    /// Simulated cycle at which the request arrives; the scheduler will not
    /// run it earlier.
    pub arrival_cycle: u64,
}

impl Request {
    /// A request arriving at cycle zero.
    ///
    /// # Panics
    /// Panics if `prompt_tokens` or `output_tokens` is zero.
    pub fn new(model: ModelId, prompt_tokens: usize, output_tokens: usize) -> Self {
        assert!(prompt_tokens > 0, "prompt_tokens must be non-zero");
        assert!(output_tokens > 0, "output_tokens must be non-zero");
        Request { model, prompt_tokens, output_tokens, arrival_cycle: 0 }
    }

    /// Sets the simulated arrival cycle.
    pub fn arriving_at(mut self, cycle: u64) -> Self {
        self.arrival_cycle = cycle;
        self
    }
}

/// Lifecycle phase of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionState {
    /// Admitted, prompt not yet (fully) prefilled.
    Prefilling,
    /// Prompt prefilled; generating output tokens one decode step at a time.
    Decoding,
    /// All requested output tokens generated.
    Finished,
}

/// A scheduled request plus its per-session KV-cache and progress state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Identifier assigned at submission (submission order defines FCFS).
    pub id: RequestId,
    /// The underlying request.
    pub request: Request,
    /// Lifecycle phase.
    pub state: SessionState,
    /// Prompt tokens whose KV entries are already cached (chunked prefill
    /// advances this by one chunk per micro-batch).
    pub prefilled_tokens: usize,
    /// Tokens the session must prefill before it can (re)enter decoding.
    /// Starts at `prompt_tokens`; a KV preemption raises it to the evicted
    /// KV length, because the dropped prompt *and* generated-token entries
    /// must all be recomputed (recompute-style preemption).
    pub prefill_target: usize,
    /// Generated tokens whose KV entries are folded into `prefill_target`
    /// after an eviction, so [`Session::kv_len`] does not double-count them
    /// during and after the recompute prefill.
    pub recomputed_tokens: usize,
    /// Times this session was preempted (evicted from a full KV pool). Under
    /// swap-style preemption the eviction is a page-out, not a recompute,
    /// and is counted in [`Session::swap_outs`] instead.
    pub preemptions: u32,
    /// Times this session's KV pages migrated into a decode pool over the
    /// NoC (prefill→decode handoffs plus swap-ins); zero under colocated
    /// placement.
    pub migrations: u32,
    /// Times this session was paged out of a decode pool into a prefill pool
    /// (swap-style preemption); zero under recompute preemption.
    pub swap_outs: u32,
    /// Map from this session's KV entries to physical pages of the KV pool
    /// its cache lives on. Stays empty under an unbounded
    /// [`KvConfig`](crate::kv::KvConfig), where no paging is modelled.
    pub page_table: PageTable,
    /// Output tokens generated so far (the prefill completion produces the
    /// first one).
    pub generated_tokens: usize,
    /// Cycle at which the first output token became available.
    pub first_token_cycle: Option<u64>,
    /// Cycle at which the last output token became available.
    pub finish_cycle: Option<u64>,
    /// Earliest cycle at which the session may next be scheduled: the arrival
    /// cycle until the session first runs, then the completion cycle of its
    /// latest micro-batch. Keeps multi-node executors causal — a decode step
    /// cannot start on one node before the step that produced its input
    /// token finished on another.
    pub ready_cycle: u64,
    /// Whether the session sits inside an emitted-but-not-yet-completed
    /// micro-batch. Set by the scheduler at batch formation, cleared at
    /// completion: a per-session flag in the arena replaces the old
    /// `BTreeSet` membership probe, so the scheduler's hottest check is one
    /// load from a session already in cache. Transient scheduling state, not
    /// part of the serialized session (always `false` between runs).
    #[serde(skip)]
    pub in_flight: bool,
}

impl Session {
    /// Wraps a request in a fresh session.
    pub fn new(id: RequestId, request: Request) -> Self {
        Session {
            id,
            request,
            state: SessionState::Prefilling,
            prefilled_tokens: 0,
            prefill_target: request.prompt_tokens,
            recomputed_tokens: 0,
            preemptions: 0,
            migrations: 0,
            swap_outs: 0,
            page_table: PageTable::new(),
            first_token_cycle: None,
            finish_cycle: None,
            generated_tokens: 0,
            ready_cycle: request.arrival_cycle,
            in_flight: false,
        }
    }

    /// KV-cache entries this session currently holds: the prefilled prefix
    /// plus the generated tokens not already folded into a recompute prefill
    /// target.
    pub fn kv_len(&self) -> usize {
        self.prefilled_tokens + self.generated_tokens - self.recomputed_tokens
    }

    /// Tokens still waiting to be prefilled (the prompt, plus — after a
    /// preemption — the evicted generated-token entries being recomputed).
    pub fn remaining_prefill(&self) -> usize {
        self.prefill_target - self.prefilled_tokens
    }

    /// Applies a KV preemption to the session's progress state: the cached
    /// KV is gone, so the session re-enters the prefilling phase with the
    /// full logical cache — prompt plus every token generated so far — as
    /// its target, *not* just whatever was cached at eviction time: a
    /// session evicted again mid-restore still owes the whole recompute.
    /// Generated tokens already emitted stay emitted — only their cache
    /// entries must be recomputed — so token accounting is unaffected. The
    /// caller is responsible for releasing the page table and requeueing
    /// the session.
    pub fn preempt(&mut self) {
        debug_assert!(!self.is_finished(), "finished sessions hold no KV to evict");
        self.prefill_target = self.request.prompt_tokens + self.generated_tokens;
        self.recomputed_tokens = self.generated_tokens;
        self.prefilled_tokens = 0;
        self.preemptions += 1;
        self.state = SessionState::Prefilling;
    }

    /// Whether the session has produced all requested tokens.
    pub fn is_finished(&self) -> bool {
        self.state == SessionState::Finished
    }

    /// Whether the session has schedulable work at `now` (arrived, not mid
    /// micro-batch on another node, and either still prefilling or still
    /// decoding).
    pub fn is_runnable(&self, now: u64) -> bool {
        !self.is_finished() && self.ready_cycle <= now
    }
}

/// Flat session storage keyed by dense [`RequestId`]s: every session ever
/// admitted occupies the slot `id - retired_count()` of the live window, in
/// submission order. Retirement advances a head index instead of shifting
/// the vector, and the retired prefix is compacted away only once it
/// outgrows the live tail — so `retire_prefix` is amortized O(1), the
/// backing vector never holds more than ~2× the live sessions, and
/// [`SessionArena::live`] stays a plain contiguous `&[Session]` for the
/// scheduler's index arithmetic.
#[derive(Clone, Debug, Default)]
pub struct SessionArena {
    /// Backing slots: `slots[head..]` is the live window in id order.
    slots: Vec<Session>,
    /// Retired slots below this index await compaction.
    head: usize,
    /// Total sessions ever retired (monotone; `head` resets at compaction,
    /// this never does).
    retired: usize,
    /// High-water mark of the live window.
    peak_live: usize,
}

/// Retired slots are compacted once the dead prefix exceeds both this floor
/// and the live tail, bounding both the compaction frequency and the memory
/// overhead.
const ARENA_COMPACT_FLOOR: usize = 64;

impl SessionArena {
    /// An empty arena.
    pub fn new() -> Self {
        SessionArena::default()
    }

    /// Appends a session to the live window. The caller assigns ids densely
    /// in submission order, so `session.id` must equal
    /// `retired_count() + live().len()`.
    pub fn push(&mut self, session: Session) {
        debug_assert_eq!(
            usize_from_u64(session.id.0),
            self.retired + self.live().len(),
            "arena ids must stay dense and in submission order"
        );
        self.slots.push(session);
        self.peak_live = self.peak_live.max(self.live().len());
    }

    /// The live (unretired) sessions in submission order.
    pub fn live(&self) -> &[Session] {
        &self.slots[self.head..]
    }

    /// Mutable view of the live window.
    pub fn live_mut(&mut self) -> &mut [Session] {
        &mut self.slots[self.head..]
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.slots.len() - self.head
    }

    /// Whether no live session exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions ever retired from the front of the window.
    pub fn retired_count(&self) -> usize {
        self.retired
    }

    /// High-water mark of the live-session population.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Iterates over the live sessions in submission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Session> {
        self.live().iter()
    }

    /// Retires the first `n` live sessions (they must all be finished) and
    /// compacts the backing vector if the dead prefix got large. Amortized
    /// O(1) per retired session.
    ///
    /// # Panics
    /// Debug-asserts that every retired session is finished.
    pub fn retire_prefix(&mut self, n: usize) {
        debug_assert!(self.live()[..n].iter().all(Session::is_finished));
        self.head += n;
        self.retired += n;
        if self.head > ARENA_COMPACT_FLOOR && self.head >= self.slots.len() - self.head {
            self.slots.drain(..self.head);
            self.head = 0;
        }
    }

    /// Checks the arena's structural invariants: live ids are dense,
    /// ascending and never alias a retired id. Test/debug helper.
    ///
    /// # Panics
    /// Panics on any violation.
    pub fn assert_invariants(&self) {
        assert!(self.head <= self.slots.len(), "head may not pass the end");
        for (i, s) in self.live().iter().enumerate() {
            assert_eq!(
                usize_from_u64(s.id.0),
                self.retired + i,
                "live slot {i} aliases the wrong id"
            );
        }
    }
}

impl std::ops::Index<usize> for SessionArena {
    type Output = Session;

    /// Indexes the live window (position `id - retired_count()`).
    fn index(&self, i: usize) -> &Session {
        &self.slots[self.head + i]
    }
}

impl std::ops::IndexMut<usize> for SessionArena {
    fn index_mut(&mut self, i: usize) -> &mut Session {
        &mut self.slots[self.head + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_construction_and_arrival() {
        let r = Request::new(ModelId::Llama2_7b, 128, 16).arriving_at(500);
        assert_eq!(r.prompt_tokens, 128);
        assert_eq!(r.output_tokens, 16);
        assert_eq!(r.arrival_cycle, 500);
        assert_eq!(format!("{}", RequestId(3)), "r3");
    }

    #[test]
    fn session_progress_accounting() {
        let mut s = Session::new(RequestId(0), Request::new(ModelId::Llama2_7b, 100, 4));
        assert_eq!(s.remaining_prefill(), 100);
        assert_eq!(s.kv_len(), 0);
        assert!(s.is_runnable(0));
        s.prefilled_tokens = 60;
        assert_eq!(s.remaining_prefill(), 40);
        s.prefilled_tokens = 100;
        s.generated_tokens = 2;
        assert_eq!(s.kv_len(), 102);
        s.state = SessionState::Finished;
        assert!(s.is_finished());
        assert!(!s.is_runnable(0));
    }

    #[test]
    fn preemption_resets_kv_but_not_emitted_tokens() {
        let mut s = Session::new(RequestId(2), Request::new(ModelId::Llama2_7b, 100, 8));
        s.prefilled_tokens = 100;
        s.generated_tokens = 3;
        s.state = SessionState::Decoding;
        s.first_token_cycle = Some(40);
        assert_eq!(s.kv_len(), 103);
        s.preempt();
        // The whole evicted KV (prompt + 3 generated entries) must be
        // recomputed, but the 3 emitted tokens stay emitted.
        assert_eq!(s.state, SessionState::Prefilling);
        assert_eq!(s.remaining_prefill(), 103);
        assert_eq!(s.generated_tokens, 3);
        assert_eq!(s.kv_len(), 0, "no KV survives an eviction");
        assert_eq!(s.preemptions, 1);
        // Recompute prefill restores the cache without re-emitting tokens.
        s.prefilled_tokens = 103;
        assert_eq!(s.remaining_prefill(), 0);
        assert_eq!(s.kv_len(), 103);
        // A second eviction mid-decode folds the newly generated tokens too.
        s.state = SessionState::Decoding;
        s.generated_tokens = 5;
        assert_eq!(s.kv_len(), 105);
        s.preempt();
        assert_eq!(s.remaining_prefill(), 105);
        assert_eq!(s.kv_len(), 0);
        assert_eq!(s.preemptions, 2);
    }

    #[test]
    fn mid_prefill_preemption_restarts_the_prompt() {
        let mut s = Session::new(RequestId(3), Request::new(ModelId::Llama2_7b, 64, 2));
        s.prefilled_tokens = 32;
        s.preempt();
        assert_eq!(s.remaining_prefill(), 64, "partial prefill restarts from zero");
        assert_eq!(s.kv_len(), 0);
    }

    #[test]
    fn mid_restore_preemption_keeps_the_full_recompute_target() {
        // Regression: a session evicted *again* halfway through its
        // recompute prefill still owes the whole prompt + generated cache,
        // not just the entries it had rebuilt so far.
        let mut s = Session::new(RequestId(4), Request::new(ModelId::Llama2_7b, 4, 8));
        s.prefilled_tokens = 4;
        s.generated_tokens = 4;
        s.state = SessionState::Decoding;
        s.first_token_cycle = Some(10);
        s.preempt();
        assert_eq!(s.remaining_prefill(), 8);
        s.prefilled_tokens = 2; // restore interrupted after one chunk…
        s.preempt(); // …by a second eviction
        assert_eq!(s.remaining_prefill(), 8, "the restore target must not shrink");
        assert_eq!(s.kv_len(), 0);
        s.prefilled_tokens = 8;
        assert_eq!(s.kv_len(), 8, "full restore rebuilds prompt + generated entries");
        assert_eq!(s.preemptions, 2);
    }

    #[test]
    fn future_arrivals_are_not_runnable() {
        let s = Session::new(RequestId(1), Request::new(ModelId::Llama2_7b, 8, 1).arriving_at(10));
        assert!(!s.is_runnable(9));
        assert!(s.is_runnable(10));
    }

    #[test]
    #[should_panic(expected = "prompt_tokens must be non-zero")]
    fn zero_prompt_rejected() {
        Request::new(ModelId::Llama2_7b, 0, 1);
    }

    #[test]
    #[should_panic(expected = "output_tokens must be non-zero")]
    fn zero_output_rejected() {
        Request::new(ModelId::Llama2_7b, 1, 0);
    }

    fn finished_session(id: u64) -> Session {
        let mut s = Session::new(RequestId(id), Request::new(ModelId::Llama2_7b, 8, 1));
        s.state = SessionState::Finished;
        s
    }

    #[test]
    fn arena_retires_in_amortized_constant_space() {
        let mut arena = SessionArena::new();
        // Push/retire far more sessions than the compaction floor: the
        // backing vector must stay bounded by the floor, not the total.
        for id in 0..10_000u64 {
            arena.push(finished_session(id));
            if id % 3 == 2 {
                arena.retire_prefix(3);
            }
            arena.assert_invariants();
        }
        arena.retire_prefix(arena.len());
        assert_eq!(arena.retired_count(), 10_000);
        assert_eq!(arena.len(), 0);
        assert!(arena.is_empty());
        // Peak live population: at most the 3-session retirement cadence.
        assert!(arena.peak_live() <= 3, "peak {}", arena.peak_live());
    }

    #[test]
    fn arena_indexes_the_live_window() {
        let mut arena = SessionArena::new();
        for id in 0..6u64 {
            arena.push(finished_session(id));
        }
        arena.retire_prefix(2);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena[0].id, RequestId(2), "index 0 is the oldest live session");
        assert_eq!(arena.live().len(), 4);
        assert_eq!(arena.iter().count(), 4);
        arena[1].generated_tokens = 7;
        assert_eq!(arena.live()[1].generated_tokens, 7);
        assert_eq!(arena.live_mut().len(), 4);
        arena.assert_invariants();
        assert_eq!(arena.peak_live(), 6);
    }

    #[test]
    #[should_panic(expected = "aliases the wrong id")]
    fn arena_invariant_check_catches_aliased_slots() {
        let mut arena = SessionArena::new();
        arena.push(finished_session(0));
        arena[0].id = RequestId(9); // corrupt the slot
        arena.assert_invariants();
    }
}
