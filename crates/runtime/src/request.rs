//! Requests and sessions: the unit of work the serving engine schedules.
//!
//! A [`Request`] is what a client submits — a model, a prompt length and a
//! requested output length. The scheduler wraps each admitted request in a
//! [`Session`] that tracks its per-session KV-cache state (how much of the
//! prompt has been prefilled, how many tokens have been generated) and the
//! latency milestones (first token, completion) the report is built from.

use mugi_workloads::models::ModelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one request, assigned by the scheduler at submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One inference request: generate `output_tokens` tokens for a
/// `prompt_tokens`-token prompt on `model`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// The model the request targets.
    pub model: ModelId,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Requested completion length in tokens (the first one is produced by
    /// the prefill step, as in every continuous-batching server).
    pub output_tokens: usize,
    /// Simulated cycle at which the request arrives; the scheduler will not
    /// run it earlier.
    pub arrival_cycle: u64,
}

impl Request {
    /// A request arriving at cycle zero.
    ///
    /// # Panics
    /// Panics if `prompt_tokens` or `output_tokens` is zero.
    pub fn new(model: ModelId, prompt_tokens: usize, output_tokens: usize) -> Self {
        assert!(prompt_tokens > 0, "prompt_tokens must be non-zero");
        assert!(output_tokens > 0, "output_tokens must be non-zero");
        Request { model, prompt_tokens, output_tokens, arrival_cycle: 0 }
    }

    /// Sets the simulated arrival cycle.
    pub fn arriving_at(mut self, cycle: u64) -> Self {
        self.arrival_cycle = cycle;
        self
    }
}

/// Lifecycle phase of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SessionState {
    /// Admitted, prompt not yet (fully) prefilled.
    Prefilling,
    /// Prompt prefilled; generating output tokens one decode step at a time.
    Decoding,
    /// All requested output tokens generated.
    Finished,
}

/// A scheduled request plus its per-session KV-cache and progress state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Identifier assigned at submission (submission order defines FCFS).
    pub id: RequestId,
    /// The underlying request.
    pub request: Request,
    /// Lifecycle phase.
    pub state: SessionState,
    /// Prompt tokens whose KV entries are already cached (chunked prefill
    /// advances this by one chunk per micro-batch).
    pub prefilled_tokens: usize,
    /// Output tokens generated so far (the prefill completion produces the
    /// first one).
    pub generated_tokens: usize,
    /// Cycle at which the first output token became available.
    pub first_token_cycle: Option<u64>,
    /// Cycle at which the last output token became available.
    pub finish_cycle: Option<u64>,
    /// Earliest cycle at which the session may next be scheduled: the arrival
    /// cycle until the session first runs, then the completion cycle of its
    /// latest micro-batch. Keeps multi-node executors causal — a decode step
    /// cannot start on one node before the step that produced its input
    /// token finished on another.
    pub ready_cycle: u64,
}

impl Session {
    /// Wraps a request in a fresh session.
    pub fn new(id: RequestId, request: Request) -> Self {
        Session {
            id,
            request,
            state: SessionState::Prefilling,
            prefilled_tokens: 0,
            generated_tokens: 0,
            first_token_cycle: None,
            finish_cycle: None,
            ready_cycle: request.arrival_cycle,
        }
    }

    /// KV-cache entries this session currently holds (prefilled prompt plus
    /// generated tokens).
    pub fn kv_len(&self) -> usize {
        self.prefilled_tokens + self.generated_tokens
    }

    /// Prompt tokens still waiting to be prefilled.
    pub fn remaining_prefill(&self) -> usize {
        self.request.prompt_tokens - self.prefilled_tokens
    }

    /// Whether the session has produced all requested tokens.
    pub fn is_finished(&self) -> bool {
        self.state == SessionState::Finished
    }

    /// Whether the session has schedulable work at `now` (arrived, not mid
    /// micro-batch on another node, and either still prefilling or still
    /// decoding).
    pub fn is_runnable(&self, now: u64) -> bool {
        !self.is_finished() && self.ready_cycle <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_construction_and_arrival() {
        let r = Request::new(ModelId::Llama2_7b, 128, 16).arriving_at(500);
        assert_eq!(r.prompt_tokens, 128);
        assert_eq!(r.output_tokens, 16);
        assert_eq!(r.arrival_cycle, 500);
        assert_eq!(format!("{}", RequestId(3)), "r3");
    }

    #[test]
    fn session_progress_accounting() {
        let mut s = Session::new(RequestId(0), Request::new(ModelId::Llama2_7b, 100, 4));
        assert_eq!(s.remaining_prefill(), 100);
        assert_eq!(s.kv_len(), 0);
        assert!(s.is_runnable(0));
        s.prefilled_tokens = 60;
        assert_eq!(s.remaining_prefill(), 40);
        s.prefilled_tokens = 100;
        s.generated_tokens = 2;
        assert_eq!(s.kv_len(), 102);
        s.state = SessionState::Finished;
        assert!(s.is_finished());
        assert!(!s.is_runnable(0));
    }

    #[test]
    fn future_arrivals_are_not_runnable() {
        let s = Session::new(RequestId(1), Request::new(ModelId::Llama2_7b, 8, 1).arriving_at(10));
        assert!(!s.is_runnable(9));
        assert!(s.is_runnable(10));
    }

    #[test]
    #[should_panic(expected = "prompt_tokens must be non-zero")]
    fn zero_prompt_rejected() {
        Request::new(ModelId::Llama2_7b, 0, 1);
    }

    #[test]
    #[should_panic(expected = "output_tokens must be non-zero")]
    fn zero_output_rejected() {
        Request::new(ModelId::Llama2_7b, 1, 0);
    }
}
