//! The executor: drives a [`MugiAccelerator`] over scheduler-emitted
//! micro-batches and aggregates per-request cycle/energy statistics.
//!
//! Each [`Executor::step`] asks the scheduler for one micro-batch, converts
//! it into workload slices (decode contexts bucketed at paged-KV
//! granularity), evaluates the composed trace on the accelerator's
//! performance model — the trace itself is cached per micro-batch shape by
//! `MugiAccelerator` — advances the simulated clock by the step's cycles and
//! feeds the completion back into the scheduler. Energy is attributed to
//! requests proportionally to their token share of the step.

use crate::request::{Request, RequestId};
use crate::scheduler::{MicroBatch, Scheduler};
use crate::stats::{Percentiles, RequestStats, RuntimeReport};
use mugi::MugiAccelerator;
use serde::{Deserialize, Serialize};

/// Executor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Decode contexts are rounded up to this many KV entries when building
    /// workload slices (the paged-KV view of the cache). Coarser buckets
    /// mean fewer distinct trace shapes and a hotter trace cache.
    pub kv_bucket: usize,
}

impl Default for ExecutorConfig {
    /// 128-entry KV pages.
    fn default() -> Self {
        ExecutorConfig { kv_bucket: 128 }
    }
}

/// Per-request accounting accumulated while the request is in flight.
#[derive(Clone, Copy, Debug, Default)]
struct Accounting {
    energy_pj: f64,
    micro_batches: u64,
}

/// A simulated serving engine: one accelerator, one scheduler, one clock.
#[derive(Clone, Debug)]
pub struct Executor {
    accel: MugiAccelerator,
    scheduler: Scheduler,
    config: ExecutorConfig,
    clock_cycles: u64,
    steps: u64,
    accounting: Vec<Accounting>,
}

impl Executor {
    /// Creates an executor with the default KV bucketing.
    pub fn new(accel: MugiAccelerator, scheduler: Scheduler) -> Self {
        Executor::with_config(accel, scheduler, ExecutorConfig::default())
    }

    /// Creates an executor with an explicit configuration.
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn with_config(
        accel: MugiAccelerator,
        scheduler: Scheduler,
        config: ExecutorConfig,
    ) -> Self {
        assert!(config.kv_bucket > 0, "kv_bucket must be non-zero");
        // The scheduler may already hold sessions submitted before the
        // executor was constructed; give each one an accounting slot.
        let accounting = vec![Accounting::default(); scheduler.sessions().len()];
        Executor { accel, scheduler, config, clock_cycles: 0, steps: 0, accounting }
    }

    /// Submits a request to the underlying scheduler.
    pub fn submit(&mut self, request: Request) -> RequestId {
        self.accounting.push(Accounting::default());
        self.scheduler.submit(request)
    }

    /// The scheduler (sessions, progress, configuration).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The accelerator driven by this executor.
    pub fn accelerator(&self) -> &MugiAccelerator {
        &self.accel
    }

    /// Current simulated clock in cycles.
    pub fn clock_cycles(&self) -> u64 {
        self.clock_cycles
    }

    /// Micro-batches executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes one micro-batch. Returns `false` once every submitted
    /// request has finished; when the only remaining work arrives in the
    /// future, the clock jumps to that arrival and execution continues.
    ///
    /// # Panics
    /// Panics if unfinished sessions exist but neither runnable work nor a
    /// future arrival does (a scheduler invariant violation).
    pub fn step(&mut self) -> bool {
        loop {
            if self.scheduler.all_finished() {
                return false;
            }
            if let Some(batch) = self.scheduler.next_micro_batch(self.clock_cycles) {
                self.execute(&batch);
                return true;
            }
            self.clock_cycles = self
                .scheduler
                .next_arrival_after(self.clock_cycles)
                .expect("unfinished sessions but no runnable work and no future arrival");
        }
    }

    /// Evaluates one micro-batch on the accelerator and applies its effects.
    fn execute(&mut self, batch: &MicroBatch) {
        let slices = batch.slices(self.config.kv_bucket);
        let perf = self.accel.estimate_micro_batch(batch.model, &slices);
        let step_cycles = perf.node.total_cycles.max(1);
        let step_energy_pj =
            perf.node.dynamic_energy_pj + perf.node.hbm_energy_pj + perf.node.leakage_energy_pj;
        self.clock_cycles += step_cycles;
        self.steps += 1;
        let total_tokens = batch.total_tokens().max(1) as f64;
        for item in &batch.items {
            let acct = &mut self.accounting[item.id.0 as usize];
            acct.energy_pj += step_energy_pj * item.tokens as f64 / total_tokens;
            acct.micro_batches += 1;
        }
        self.scheduler.complete(batch, self.clock_cycles);
    }

    /// Runs until every submitted request has finished, then reports.
    pub fn run(&mut self) -> RuntimeReport {
        while self.step() {}
        self.report()
    }

    /// Builds the report for the work completed so far. Unfinished sessions
    /// (if any) are excluded from the per-request statistics.
    pub fn report(&self) -> RuntimeReport {
        let freq = self.accel.frequency_hz();
        let to_s = |cycles: u64| cycles as f64 / freq;
        let mut requests = Vec::new();
        for s in self.scheduler.sessions() {
            let (Some(first), Some(finish)) = (s.first_token_cycle, s.finish_cycle) else {
                continue;
            };
            let arrival = s.request.arrival_cycle;
            let outputs = s.generated_tokens;
            let acct = &self.accounting[s.id.0 as usize];
            let tpot_s =
                if outputs > 1 { to_s(finish - first) / (outputs - 1) as f64 } else { 0.0 };
            let e2e_s = to_s(finish - arrival);
            requests.push(RequestStats {
                id: s.id,
                model: s.request.model,
                prompt_tokens: s.request.prompt_tokens,
                output_tokens: outputs,
                ttft_s: to_s(first - arrival),
                tpot_s,
                e2e_s,
                tokens_per_s: if e2e_s > 0.0 { outputs as f64 / e2e_s } else { 0.0 },
                energy_uj: acct.energy_pj * 1e-6,
                micro_batches: acct.micro_batches,
            });
        }
        let total_output_tokens: u64 = requests.iter().map(|r| r.output_tokens as u64).sum();
        let makespan_s = to_s(self.clock_cycles);
        let ttft = Percentiles::of(&requests.iter().map(|r| r.ttft_s).collect::<Vec<_>>());
        let tpot = Percentiles::of(
            &requests.iter().filter(|r| r.output_tokens > 1).map(|r| r.tpot_s).collect::<Vec<_>>(),
        );
        RuntimeReport {
            requests,
            makespan_s,
            total_output_tokens,
            throughput_tokens_per_s: if makespan_s > 0.0 {
                total_output_tokens as f64 / makespan_s
            } else {
                0.0
            },
            micro_batches: self.steps,
            ttft,
            tpot,
            trace_cache_entries: self.accel.trace_cache_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use mugi_workloads::models::ModelId;

    #[test]
    fn single_request_runs_to_completion_with_sane_stats() {
        let mut ex =
            Executor::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        let id = ex.submit(Request::new(ModelId::Llama2_7b, 200, 5));
        let report = ex.run();
        assert_eq!(report.requests.len(), 1);
        let r = &report.requests[0];
        assert_eq!(r.id, id);
        assert_eq!(r.output_tokens, 5);
        assert!(r.ttft_s > 0.0);
        assert!(r.tpot_s > 0.0);
        assert!(r.e2e_s >= r.ttft_s);
        assert!(r.energy_uj > 0.0);
        // One prefill step plus four decode steps.
        assert_eq!(r.micro_batches, 5);
        assert!(report.throughput_tokens_per_s > 0.0);
        assert!(ex.scheduler().all_finished());
    }

    #[test]
    fn sessions_submitted_before_executor_construction_are_accounted() {
        // Regression: the executor must allocate accounting slots for
        // sessions already living in the scheduler it is handed.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(Request::new(ModelId::Llama2_7b, 50, 2));
        let mut ex = Executor::new(MugiAccelerator::new(128), sched);
        let late = ex.submit(Request::new(ModelId::Llama2_7b, 50, 2));
        let report = ex.run();
        assert_eq!(report.requests.len(), 2);
        assert!(report.requests.iter().all(|r| r.energy_uj > 0.0 && r.micro_batches > 0));
        assert_eq!(report.requests[1].id, late);
    }

    #[test]
    fn staggered_arrival_jumps_the_clock() {
        let mut ex =
            Executor::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        ex.submit(Request::new(ModelId::Llama2_7b, 32, 1).arriving_at(1_000_000));
        let report = ex.run();
        assert!(ex.clock_cycles() > 1_000_000);
        // TTFT is measured from arrival, not from cycle zero.
        assert!(report.requests[0].ttft_s < report.makespan_s);
    }

    #[test]
    fn decode_steps_reuse_cached_traces() {
        let mut ex =
            Executor::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        ex.submit(Request::new(ModelId::Llama2_7b, 100, 40));
        let report = ex.run();
        // 1 prefill + 39 decode micro-batches, but the bucketed decode
        // context means only a handful of distinct trace shapes.
        assert_eq!(report.micro_batches, 40);
        assert!(
            report.trace_cache_entries < 8,
            "expected few cached shapes, got {}",
            report.trace_cache_entries
        );
    }
}
