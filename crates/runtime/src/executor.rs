//! The executor: drives a [`MugiAccelerator`] over scheduler-emitted
//! micro-batches — on one node or across a NoC mesh — and aggregates
//! per-request cycle/energy statistics.
//!
//! Each dispatch asks the scheduler for one micro-batch, converts it into
//! workload slices (decode contexts bucketed at paged-KV granularity) and
//! evaluates the composed trace on the accelerator's performance model — the
//! trace itself is cached per micro-batch shape by `MugiAccelerator`. Where
//! the batch runs depends on the [`Placement`]:
//!
//! * **data-parallel** — the batch runs whole on the idle node with the
//!   earliest clock; other nodes keep executing their own batches, so
//!   independent micro-batches overlap in simulated time. The NoC charges
//!   transfer energy for moving the batch's token activations to its node
//!   and the results back.
//! * **sharded** — the batch's GEMM trace is tiled across every node
//!   (inter-node accumulation): the step takes `1 / throughput_multiplier`
//!   of its single-node cycles while the NoC transfer model charges the
//!   activation and partial-sum movement between nodes.
//! * **disaggregated** — the mesh splits into prefill and decode pools:
//!   every batch is pure (phase-filtered per node), and when a prefill
//!   completes the executor *migrates* the session's KV pages to a decode
//!   node — charging `NocConfig::transfer_energy_pj` for the cache bytes
//!   and stalling the receiving node for `NocConfig::transfer_cycles` —
//!   instead of recomputing the prefill on the decode side. `ready_cycle`
//!   keeps the handoff causal: the first decode step cannot start before
//!   the pages land. Swap-style preemption rides the same machinery in
//!   reverse.
//!
//! Completion effects are applied at the batch's end cycle and sessions
//! become schedulable again only then, so overlapping execution stays
//! causal. Step energy is attributed to requests by their token share,
//! except the attention share of the dynamic energy, which is weighted by
//! attended KV as well — a 4096-context decode slot costs more than a
//! 64-context one.

// mugi-lint: allow(hot-path-panic, "unwrap/expect/indexing here assert documented invariants — dense session ids validated by aidx(), placements that exist for every admitted request, stats present for live sessions; violating them means the simulation state is corrupt and continuing would silently skew results")

use crate::control::{desired_prefill_nodes, ControlConfig, Drain};
use crate::kv::{AdmissionError, KvFreePages};
use crate::placement::{NodePool, Placement, PlacementPolicy, PoolRole};
use crate::request::{Request, RequestId, Session, SessionState};
use crate::scheduler::{BatchItem, MicroBatch, PhaseFilter, Scheduler};
use crate::stats::{KvStats, Percentiles, RequestStats, RuntimeReport};
use mugi::arch::cost::CostModel;
use mugi::MugiAccelerator;
use mugi_numerics::cast::{u64_from_usize, usize_from_u64};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{BatchSlice, Phase};
use serde::{Deserialize, Serialize};

/// Executor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Decode contexts are rounded up to this many KV entries when building
    /// workload slices (the paged-KV view of the cache). Coarser buckets
    /// mean fewer distinct trace shapes and a hotter trace cache. Under a
    /// bounded [`KvConfig`](crate::kv::KvConfig) this must equal the pool's
    /// `page_tokens`, so the trace-cache view and the page-table view of a
    /// context agree.
    pub kv_bucket: usize,
    /// Stall cycles charged per KV page evicted to form a micro-batch: the
    /// pool-manipulation overhead of a preemption (tearing down the victim's
    /// table and faulting the requester's growth in). The victim's much
    /// larger recompute cost is paid separately, by actually re-executing
    /// its prefill. Zero evictions — in particular any unbounded pool —
    /// charge nothing.
    pub fault_stall_cycles: u64,
    /// Retire finished sessions incrementally: their statistics fold into
    /// the report as they finish and the scheduler drops them, so neither
    /// the session window nor the executor's accounting grows without bound
    /// on long request streams. Off by default — with it on,
    /// [`Scheduler::sessions`] only exposes the unretired tail (the report
    /// is unaffected).
    pub retire_finished: bool,
    /// The adaptive control plane (see [`crate::control`]): dynamic role
    /// reassignment, online SLO calibration and load-aware migration
    /// placement. Fully disabled by default, in which case the executor is
    /// bit-identical to one predating the controller.
    #[serde(default)]
    pub control: ControlConfig,
}

impl Default for ExecutorConfig {
    /// 128-entry KV pages, 256-cycle page faults, no incremental retirement,
    /// controller off.
    fn default() -> Self {
        ExecutorConfig {
            kv_bucket: 128,
            fault_stall_cycles: 256,
            retire_finished: false,
            control: ControlConfig::default(),
        }
    }
}

/// Per-request accounting accumulated while the request is in flight.
#[derive(Clone, Copy, Debug, Default)]
struct Accounting {
    energy_pj: f64,
    noc_energy_pj: f64,
    micro_batches: u64,
    kv_transfer_bytes: u64,
    kv_transfer_energy_pj: f64,
}

/// A dispatched micro-batch whose completion effects are still pending.
#[derive(Clone, Debug)]
pub(crate) struct InFlight {
    pub(crate) batch: MicroBatch,
    /// Executing node (0 for sharded batches, which occupy every node).
    pub(crate) node: usize,
    /// Cycle at which the batch started executing (the SLO calibrator
    /// measures service rate over `end - start`).
    pub(crate) start: u64,
    /// Cycle at which the batch finishes and its effects apply.
    pub(crate) end: u64,
    /// Monotone dispatch sequence number. Completions tie-break on it: the
    /// per-step executor's `(end, Vec index)` order and the event engine's
    /// `(end, seq)` heap order pick the same batch, because `Vec::remove`
    /// preserves insertion order and insertion order *is* seq order.
    pub(crate) seq: u64,
}

/// One memoized estimate in the executor's [`PerfFront`].
#[derive(Clone, Debug)]
struct FrontEntry {
    model: ModelId,
    slices: Vec<BatchSlice>,
    /// The four numbers [`Executor::dispatch`] consumes, copied verbatim
    /// from the accelerator's memoized estimate: step cycles, node compute
    /// energy, the estimate's NoC energy (sharded placement only; the
    /// data-parallel arm derives its own from the batch) and the attention
    /// share of the dynamic energy.
    step_cycles: u64,
    compute_energy_pj: f64,
    perf_noc_energy_pj: f64,
    attention_energy_pj: f64,
}

/// A direct-mapped memo sitting in front of the accelerator's shared shape
/// cache. Steady-state serving re-dispatches the same micro-batch shapes
/// over and over, and for those this skips the cache mutex, the bucket
/// probe and the full `WorkloadPerformance` copy — a hit is one indexed
/// slot comparison returning exactly the numbers `dispatch` uses. The
/// placement policy and NoC are fixed for an executor's lifetime, so
/// `(model, slices)` fully determines the estimate; cached values are
/// bit-copies of the memoized pure-function result and the hash only picks
/// the slot, so both engines stay bit-identical.
#[derive(Clone, Debug, Default)]
struct PerfFront {
    /// Lazily sized to [`PerfFront::SLOTS`] on first insert; a colliding
    /// shape simply replaces the resident (last-touched wins).
    slots: Vec<Option<FrontEntry>>,
    hits: u64,
    misses: u64,
}

impl PerfFront {
    /// Slot count (power of two — the shape hash's low bits index it).
    /// Long-stream workloads touch several thousand distinct shapes, so
    /// this keeps the hot ones mostly conflict-free while staying small
    /// enough that the touched slots sit in cache.
    const SLOTS: usize = 8192;

    /// The direct-mapped slot for `hash`: exactly the low bits that index
    /// `SLOTS`, so the mask keeps the value in `usize` range by construction.
    fn slot_of(hash: u64) -> usize {
        usize_from_u64(hash & u64_from_usize(Self::SLOTS - 1))
    }

    /// The cached estimate for `(model, slices)` under `hash`.
    fn get(
        &mut self,
        hash: u64,
        model: ModelId,
        slices: &[BatchSlice],
    ) -> Option<(u64, f64, f64, f64)> {
        let slot = self.slots.get(Self::slot_of(hash))?.as_ref();
        match slot {
            Some(e) if e.model == model && e.slices == slices => {
                self.hits += 1;
                Some((
                    e.step_cycles,
                    e.compute_energy_pj,
                    e.perf_noc_energy_pj,
                    e.attention_energy_pj,
                ))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches a freshly computed estimate, evicting whatever shape shared
    /// its slot (and reusing that entry's slice allocation).
    fn insert(
        &mut self,
        hash: u64,
        model: ModelId,
        slices: &[BatchSlice],
        v: (u64, f64, f64, f64),
    ) {
        if self.slots.is_empty() {
            self.slots.resize_with(Self::SLOTS, || None);
        }
        let slot = &mut self.slots[Self::slot_of(hash)];
        let e = slot.get_or_insert_with(|| FrontEntry {
            model,
            slices: Vec::new(),
            step_cycles: 0,
            compute_energy_pj: 0.0,
            perf_noc_energy_pj: 0.0,
            attention_energy_pj: 0.0,
        });
        e.model = model;
        e.slices.clear();
        e.slices.extend_from_slice(slices);
        (e.step_cycles, e.compute_energy_pj, e.perf_noc_energy_pj) = (v.0, v.1, v.2);
        e.attention_energy_pj = v.3;
    }
}

/// A simulated serving engine: one scheduler feeding a pool of accelerator
/// nodes (a single node by default).
#[derive(Clone, Debug)]
pub struct Executor {
    accel: MugiAccelerator,
    pub(crate) scheduler: Scheduler,
    pub(crate) config: ExecutorConfig,
    placement: Placement,
    pub(crate) cost: CostModel,
    pub(crate) pool: NodePool,
    pub(crate) in_flight: Vec<InFlight>,
    clock_cycles: u64,
    steps: u64,
    accounting: Vec<Accounting>,
    /// Ids below this have had their accounting retired into
    /// `retired_stats`; session `id`'s slot lives at `id - acct_base`.
    acct_base: usize,
    /// Statistics of sessions already retired from the scheduler (only
    /// populated under [`ExecutorConfig::retire_finished`]).
    retired_stats: Vec<RequestStats>,
    /// NoC energy of retired accounting slots in pJ, folded in id order so
    /// the report total matches a never-retiring run bit for bit.
    retired_noc_energy_pj: f64,
    /// Whether each node has its own KV pool (bounded data-parallel
    /// placement): dispatch must then consider every idle node, since a
    /// session may only run where its pages live.
    pub(crate) multi_pool: bool,
    /// Whether the placement disaggregates prefill from decode: dispatch
    /// phase-filters every node and completed prefills migrate their KV
    /// pages to a decode node.
    pub(crate) disagg: bool,
    /// Sessions whose KV pages are waiting to move into a decode pool —
    /// completed prefills plus swapped-out victims. Retried after every
    /// completion (completions are what free decode-pool pages).
    pending_migrations: Vec<RequestId>,
    /// The live scheduling role of each node. Initialized from the static
    /// placement and identical to it forever unless the control plane's
    /// role reassignment is on, in which case quiescent handoffs re-roll
    /// entries (mirrored into the scheduler's pool roles for bounded KV).
    node_roles: Vec<PoolRole>,
    /// The role re-roll in progress, if any (at most one node drains at a
    /// time; see [`crate::control`]).
    draining: Option<Drain>,
    /// Cycle the last re-roll *started* (drains begin here, so the cooldown
    /// bounds the rate of disruption, not just of completed flips).
    last_flip_cycle: u64,
    /// Completed role re-rolls.
    role_rerolls: u64,
    /// Page-fault stall cycles charged so far.
    fault_stall_cycles: u64,
    /// KV bytes moved between pools over the NoC so far.
    transfer_bytes: u64,
    /// NoC energy spent on those transfers, in pJ.
    transfer_energy_pj: f64,
    /// Stall cycles spent streaming KV transfers.
    transfer_stall_cycles: u64,
    /// Reusable workload-slice buffer for [`Executor::dispatch`], so the
    /// per-step estimate does not allocate in steady state.
    slice_scratch: Vec<BatchSlice>,
    /// Reusable per-item energy-share buffer for the same hot path.
    share_scratch: Vec<f64>,
    /// Reusable idle-node buffer for the dispatch loop — re-derived every
    /// decision round by [`Executor::step`] (and the event engine's mirror),
    /// so the round allocates nothing.
    pub(crate) idle_scratch: Vec<usize>,
    /// Executor-local move-to-front memo over the accelerator's estimates:
    /// steady-state dispatches skip the shared cache's hash and mutex.
    perf_front: PerfFront,
}

impl Executor {
    /// Creates a single-node executor with the default KV bucketing.
    pub fn new(accel: MugiAccelerator, scheduler: Scheduler) -> Self {
        Executor::with_config(accel, scheduler, ExecutorConfig::default())
    }

    /// Creates a single-node executor with an explicit configuration.
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn with_config(
        accel: MugiAccelerator,
        scheduler: Scheduler,
        config: ExecutorConfig,
    ) -> Self {
        Executor::with_placement(accel, scheduler, config, Placement::single_node())
    }

    /// Creates an executor dispatching onto a NoC mesh under `placement`.
    /// One `accel` instance models every (identical) node of the pool, so
    /// all nodes share its operator-trace cache. With a 1×1 mesh the
    /// executor behaves exactly like the single-node one, whatever the
    /// policy.
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn with_placement(
        accel: MugiAccelerator,
        mut scheduler: Scheduler,
        config: ExecutorConfig,
        placement: Placement,
    ) -> Self {
        assert!(config.kv_bucket > 0, "kv_bucket must be non-zero");
        let bounded = scheduler.kv_config().is_bounded();
        if bounded {
            assert_eq!(
                scheduler.kv_config().page_tokens,
                config.kv_bucket,
                "the KV pool's page_tokens must equal the executor's kv_bucket: a page and a \
                 trace bucket are the same granularity"
            );
        }
        // Partition the bounded KV capacity to match the placement: each
        // data-parallel or disaggregated node owns its pages (prefill /
        // decode roles marking the disaggregated split); a sharded mesh
        // tiles every session's KV across all nodes, so it forms one
        // aggregate pool.
        match placement.policy {
            PlacementPolicy::DataParallel => scheduler.configure_kv_pools(placement.nodes(), 1),
            PlacementPolicy::Sharded => scheduler.configure_kv_pools(1, placement.nodes()),
            PlacementPolicy::Disaggregated { prefill_nodes, decode_nodes } => {
                assert!(
                    prefill_nodes > 0 && decode_nodes > 0,
                    "disaggregation needs at least one prefill node and one decode node"
                );
                assert_eq!(
                    prefill_nodes + decode_nodes,
                    placement.nodes(),
                    "the prefill and decode pools must partition the mesh exactly"
                );
                let roles: Vec<PoolRole> =
                    (0..placement.nodes()).map(|i| placement.node_role(i)).collect();
                scheduler.configure_kv_pools_with_roles(&roles, 1);
            }
        }
        let disagg = matches!(placement.policy, PlacementPolicy::Disaggregated { .. });
        let multi_pool =
            bounded && placement.policy == PlacementPolicy::DataParallel && placement.nodes() > 1;
        if config.control.calibrate_slo {
            scheduler.enable_slo_calibration(
                config.control.calibration_warmup_tokens,
                config.control.calibration_ewma_shift,
            );
        }
        let node_roles: Vec<PoolRole> =
            (0..placement.nodes()).map(|i| placement.node_role(i)).collect();
        // The scheduler may already hold sessions submitted before the
        // executor was constructed; give each one an accounting slot.
        let accounting = vec![Accounting::default(); scheduler.sessions().len()];
        let acct_base = scheduler.retired_session_count();
        let cost = accel.cost_model();
        let pool = NodePool::new(placement.nodes());
        Executor {
            accel,
            scheduler,
            config,
            placement,
            cost,
            pool,
            in_flight: Vec::new(),
            clock_cycles: 0,
            steps: 0,
            accounting,
            acct_base,
            retired_stats: Vec::new(),
            retired_noc_energy_pj: 0.0,
            multi_pool,
            disagg,
            pending_migrations: Vec::new(),
            node_roles,
            draining: None,
            last_flip_cycle: 0,
            role_rerolls: 0,
            fault_stall_cycles: 0,
            transfer_bytes: 0,
            transfer_energy_pj: 0.0,
            transfer_stall_cycles: 0,
            slice_scratch: Vec::new(),
            share_scratch: Vec::new(),
            idle_scratch: Vec::new(),
            perf_front: PerfFront::default(),
        }
    }

    /// Submits a request to the underlying scheduler.
    ///
    /// # Panics
    /// Panics if admission control rejects the request (only possible with
    /// a bounded [`KvConfig`](crate::kv::KvConfig) or an SLO bound set); use
    /// [`Executor::try_submit`] to treat rejection as backpressure.
    pub fn submit(&mut self, request: Request) -> RequestId {
        let id = self.scheduler.submit(request);
        self.accounting.push(Accounting::default());
        id
    }

    /// Submits a request unless the scheduler's admission control rejects
    /// it (queue depth bound reached, projected TTFT past a configured SLO
    /// target, or the request could never fit the KV pool). Rejections are
    /// counted in the report's KV statistics.
    pub fn try_submit(&mut self, request: Request) -> Result<RequestId, AdmissionError> {
        let id = self.scheduler.try_submit(request)?;
        self.accounting.push(Accounting::default());
        Ok(id)
    }

    /// The scheduler (sessions, progress, configuration).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Diagnostic counters of the dispatch-side estimate memo: `(hits,
    /// misses, resident shapes)`. A healthy steady state hits well over 90%
    /// — a low rate means the workload's shape population outgrew the
    /// front memo's slot table and dispatch is paying the shared-cache
    /// path (mutex + probe + estimate copy) per batch.
    pub fn perf_front_stats(&self) -> (u64, u64, usize) {
        let resident = self.perf_front.slots.iter().filter(|s| s.is_some()).count();
        (self.perf_front.hits, self.perf_front.misses, resident)
    }

    /// The accelerator driven by this executor.
    pub fn accelerator(&self) -> &MugiAccelerator {
        &self.accel
    }

    /// The placement the executor dispatches under.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Per-node clocks (when each node becomes free).
    pub fn node_clocks(&self) -> &[u64] {
        self.pool.clocks()
    }

    /// Current simulated makespan in cycles (end of the latest completed
    /// micro-batch).
    pub fn clock_cycles(&self) -> u64 {
        self.clock_cycles
    }

    /// Micro-batches dispatched so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Page-fault stall cycles charged so far (zero under an unbounded KV
    /// pool).
    pub fn fault_stall_cycles(&self) -> u64 {
        self.fault_stall_cycles
    }

    /// KV bytes migrated between pools over the NoC so far (prefill→decode
    /// handoffs, swap-outs and swap-ins; zero under colocated placement).
    pub fn kv_transfer_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    /// Stall cycles spent streaming KV transfers so far.
    pub fn kv_transfer_stall_cycles(&self) -> u64 {
        self.transfer_stall_cycles
    }

    /// Sessions whose KV pages are still waiting for room in a decode pool.
    pub fn pending_migration_count(&self) -> usize {
        self.pending_migrations.len()
    }

    /// Free-page headroom of the pool node `i` allocates from:
    /// [`KvFreePages::Unbounded`] under an unbounded configuration, the
    /// bounded free count otherwise. Panics (via the scheduler) if a bug
    /// maps `i` to a nonexistent bounded pool.
    pub fn kv_free_pages(&self, i: usize) -> KvFreePages {
        self.scheduler.kv_free_pages(self.pool_for(i))
    }

    /// The KV pool node `i` allocates from: its own under data-parallel and
    /// disaggregated placement, the single aggregate pool under sharded
    /// placement.
    pub(crate) fn pool_for(&self, i: usize) -> usize {
        match self.placement.policy {
            PlacementPolicy::DataParallel | PlacementPolicy::Disaggregated { .. } => i,
            PlacementPolicy::Sharded => 0,
        }
    }

    /// The phases node `i` may execute: both on every colocated policy,
    /// split by the node's *live* role under disaggregation — and `None`
    /// while the control plane drains the node for a role flip, during
    /// which it forms no new batches at all.
    pub(crate) fn phase_for(&self, i: usize) -> Option<PhaseFilter> {
        if self.draining.is_some_and(|d| d.node == i) {
            return None;
        }
        Some(match self.node_roles[i] {
            PoolRole::Colocated => PhaseFilter::Both,
            PoolRole::Prefill => PhaseFilter::PrefillOnly,
            PoolRole::Decode => PhaseFilter::DecodeOnly,
        })
    }

    /// The live scheduling role of each node: the static placement roles
    /// unless the control plane's role reassignment has re-rolled some.
    pub fn node_roles(&self) -> &[PoolRole] {
        &self.node_roles
    }

    /// The node currently draining for a role flip, if any.
    pub fn draining_node(&self) -> Option<usize> {
        self.draining.map(|d| d.node)
    }

    /// Completed control-plane role re-rolls.
    pub fn role_reroll_count(&self) -> u64 {
        self.role_rerolls
    }

    /// Whether node `i` currently executes an in-flight batch.
    pub(crate) fn occupied(&self, i: usize) -> bool {
        match self.placement.policy {
            PlacementPolicy::Sharded => !self.in_flight.is_empty(),
            PlacementPolicy::DataParallel | PlacementPolicy::Disaggregated { .. } => {
                self.in_flight.iter().any(|f| f.node == i)
            }
        }
    }

    /// Accounting slot of session `id`.
    fn aidx(&self, id: RequestId) -> usize {
        usize_from_u64(id.0).checked_sub(self.acct_base).expect("accounting slot was retired")
    }

    /// Index (into `in_flight`) of the earliest-finishing pending batch.
    fn earliest_completion(&self) -> Option<usize> {
        (0..self.in_flight.len()).min_by_key(|&i| (self.in_flight[i].end, i))
    }

    /// Applies the completion effects of `in_flight[idx]`. Under
    /// disaggregated placement this is also where KV handoffs happen:
    /// freshly completed prefills queue for migration, and every pending
    /// migration is retried (a completion is exactly what frees decode-pool
    /// pages or produces new movable KV).
    pub(crate) fn finish(&mut self, idx: usize) {
        let pending = self.in_flight.remove(idx);
        self.scheduler.complete(&pending.batch, pending.end);
        self.clock_cycles = self.clock_cycles.max(pending.end);
        if self.config.control.calibrate_slo {
            let prefill_tokens: u64 = pending
                .batch
                .items
                .iter()
                .filter(|i| i.phase == Phase::Prefill)
                .map(|i| u64_from_usize(i.tokens))
                .sum();
            if prefill_tokens > 0 {
                self.scheduler.observe_prefill_service(prefill_tokens, pending.end - pending.start);
            }
        }
        if self.disagg {
            for item in &pending.batch.items {
                if item.phase != Phase::Prefill {
                    continue;
                }
                let s = self.scheduler.session(item.id);
                if s.state == SessionState::Decoding && !self.pending_migrations.contains(&item.id)
                {
                    self.pending_migrations.push(item.id);
                }
            }
            self.service_migrations(pending.end);
            if self.config.control.reassign_roles {
                self.role_tick(pending.end);
            }
        }
        // The batch is fully applied: hand its allocations back so the next
        // formation reuses them.
        self.scheduler.recycle(pending.batch);
        if self.config.retire_finished {
            self.retire_finished();
        }
    }

    /// Retries every queued KV migration at simulated cycle `now`, oldest
    /// first: a session still awaiting a decode pool keeps its place in the
    /// queue; a session that finished first (single-token outputs) or was
    /// recompute-evicted while waiting is dropped. A session whose
    /// `ready_cycle` lies in the future keeps waiting too — a swap-out
    /// victim's outbound transfer must finish streaming before the pages
    /// can turn around and swap back in.
    fn service_migrations(&mut self, now: u64) {
        let bounded = self.scheduler.kv_config().is_bounded();
        // A draining node's residents must leave even though its pool may
        // still be rolled Decode (decode→decode evacuation), so its pool is
        // exempt from the role half of the staleness check.
        let drain_home = self.draining.map(|d| self.pool_for(d.node));
        let mut i = 0;
        while i < self.pending_migrations.len() {
            let id = self.pending_migrations[i];
            let s = self.scheduler.session(id);
            let stale = s.is_finished()
                || s.state != SessionState::Decoding
                || (bounded
                    && !matches!(
                        s.page_table.home(),
                        Some(p) if self.scheduler.pool_role(p) == PoolRole::Prefill
                            || Some(p) == drain_home
                    ));
            if stale {
                self.pending_migrations.remove(i);
                continue;
            }
            if s.ready_cycle > now {
                i += 1; // pages still in flight outbound; retry later
                continue;
            }
            let pages = s.page_table.mapped_pages();
            let Some(node) = self.migration_target(pages, bounded) else {
                i += 1; // no decode pool has room yet; retry next completion
                continue;
            };
            let Some(migration) = self.scheduler.migrate_session(id, self.pool_for(node)) else {
                i += 1;
                continue;
            };
            // The pages stream over the NoC: the session cannot decode, and
            // the receiving node cannot start new work, until they land.
            let cycles = self.placement.noc.transfer_cycles(migration.bytes);
            let energy = self.placement.noc.transfer_energy_pj(migration.bytes, &self.cost);
            self.scheduler.stall_session_until(id, now + cycles);
            self.pool.wait_until(node, now + cycles);
            let slot = self.aidx(id);
            let acct = &mut self.accounting[slot];
            acct.kv_transfer_bytes += migration.bytes;
            acct.kv_transfer_energy_pj += energy;
            self.transfer_bytes += migration.bytes;
            self.transfer_energy_pj += energy;
            self.transfer_stall_cycles += cycles;
            self.pending_migrations.remove(i);
        }
    }

    /// The decode node to migrate `pages` KV pages onto. With per-node
    /// pools: the one with the most free pages that fits them (ties to the
    /// lowest index) — or, under the control plane's load-aware placement,
    /// the *least decode-loaded* one that fits (projected load being the
    /// residents' remaining output tokens, i.e. their future KV growth;
    /// free pages then lowest index break ties). With an unbounded pool:
    /// the one with the earliest clock. A node draining for a role flip is
    /// never a target.
    fn migration_target(&self, pages: usize, bounded: bool) -> Option<usize> {
        let draining = self.draining.map(|d| d.node);
        let decode_nodes = (0..self.pool.len())
            .filter(|&i| self.node_roles[i] == PoolRole::Decode && Some(i) != draining);
        if !bounded {
            return self.pool.earliest(decode_nodes);
        }
        let fitting =
            decode_nodes.filter(|&i| self.scheduler.kv_free_pages(self.pool_for(i)).fits(pages));
        if self.config.control.load_aware_migration {
            fitting.min_by_key(|&i| {
                let pool = self.pool_for(i);
                let free = self.scheduler.kv_free_pages(pool).ranking();
                (self.scheduler.pool_decode_load(pool), std::cmp::Reverse(free), i)
            })
        } else {
            fitting.max_by_key(|&i| {
                (self.scheduler.kv_free_pages(self.pool_for(i)).ranking(), std::cmp::Reverse(i))
            })
        }
    }

    /// One control-plane sample, taken at a completion boundary (both
    /// engines call [`Executor::finish`], so the controller observes the
    /// same sequence under either). Advances an in-progress drain toward
    /// its quiescent flip, or — demand split allowing and cooldown expired —
    /// starts a new one.
    fn role_tick(&mut self, now: u64) {
        if let Some(drain) = self.draining {
            let pool = self.pool_for(drain.node);
            // Residents that were mid-batch at drain start become evictable
            // only as their batches complete; keep sweeping.
            self.drain_sweep(drain, now);
            let quiescent = !self.occupied(drain.node)
                && (!self.scheduler.kv_config().is_bounded()
                    || self.scheduler.kv_pool_used_pages(pool) == 0);
            if quiescent {
                self.node_roles[drain.node] = drain.target;
                if self.scheduler.kv_config().is_bounded() {
                    self.scheduler.set_pool_role(pool, drain.target);
                }
                self.scheduler.set_drain_pool(None);
                self.draining = None;
                self.role_rerolls += 1;
            }
            return;
        }
        if now.saturating_sub(self.last_flip_cycle) < self.config.control.min_flip_interval_cycles {
            return;
        }
        let prefill_demand = self.scheduler.pending_prefill_total();
        let decode_demand = self.scheduler.pending_decode_tokens();
        if prefill_demand + decode_demand < self.config.control.min_demand_tokens {
            return;
        }
        let current = self.node_roles.iter().filter(|&&r| r == PoolRole::Prefill).count();
        let target = desired_prefill_nodes(self.pool.len(), current, prefill_demand, decode_demand);
        if target == current {
            return;
        }
        // Re-roll one node per drain, toward the target: growing the
        // prefill side converts the least-loaded decode node (fewest used
        // pages — least resident KV to evacuate), shrinking it converts the
        // least-loaded prefill node. Ties to the highest index, keeping the
        // stable low-index nodes in their original roles.
        let (from_role, to_role) = if target > current {
            (PoolRole::Decode, PoolRole::Prefill)
        } else {
            (PoolRole::Prefill, PoolRole::Decode)
        };
        let node =
            (0..self.pool.len()).filter(|&i| self.node_roles[i] == from_role).min_by_key(|&i| {
                (self.scheduler.kv_pool_used_pages(self.pool_for(i)), std::cmp::Reverse(i))
            });
        let Some(node) = node else { return };
        let drain = Drain { node, target: to_role };
        self.draining = Some(drain);
        self.last_flip_cycle = now;
        self.scheduler.set_drain_pool(Some(self.pool_for(node)));
        // Sweep immediately — and flip in this same tick if the node was
        // already quiescent (common when converting an idle empty node).
        self.role_tick(now);
    }

    /// One evacuation sweep over a draining node: recompute-preempts every
    /// resident the pool can legally drop (not in flight, not decoding) and
    /// queues the decoding residents for migration to another pool, then
    /// retries the migration queue. Unbounded configurations home no pages,
    /// so only the migration retry applies.
    fn drain_sweep(&mut self, drain: Drain, now: u64) {
        if self.scheduler.kv_config().is_bounded() {
            let pool = self.pool_for(drain.node);
            let released = self.scheduler.preempt_pool_residents(pool);
            if released > 0 {
                // Teardown is charged like any other eviction: fault stalls
                // per released page, paid by the draining node.
                let stall = released * self.config.fault_stall_cycles;
                self.fault_stall_cycles += stall;
                self.pool.wait_until(drain.node, now + stall);
            }
            for s in self.scheduler.sessions() {
                if s.state == SessionState::Decoding
                    && s.page_table.home() == Some(pool)
                    && !self.pending_migrations.contains(&s.id)
                {
                    self.pending_migrations.push(s.id);
                }
            }
        }
        self.service_migrations(now);
    }

    /// Folds the statistics of every finished session at the front of the
    /// session window into `retired_stats` and drops the sessions plus
    /// their accounting slots.
    fn retire_finished(&mut self) {
        let mut retired = std::mem::take(&mut self.retired_stats);
        self.retire_finished_with(|stats| retired.push(stats));
        self.retired_stats = retired;
    }

    /// Retires every finished session at the front of the session window —
    /// dropping it from the scheduler, folding its NoC energy and freeing
    /// its accounting slot — streaming each session's statistics into
    /// `sink` in id order. The per-step executor sinks into
    /// `retired_stats` for the full report; the event engine's folded mode
    /// sinks straight into a [`StatsFold`](crate::stats::StatsFold), so
    /// nothing grows — or allocates — with the request count.
    pub(crate) fn retire_finished_with(&mut self, mut sink: impl FnMut(RequestStats)) {
        let prefix = self.scheduler.sessions().iter().take_while(|s| s.is_finished()).count();
        if prefix == 0 {
            return;
        }
        for s in &self.scheduler.sessions()[..prefix] {
            if let Some(stats) = self.session_stats(s) {
                sink(stats);
            }
        }
        let retired = self.scheduler.retire_finished_prefix();
        debug_assert_eq!(retired, prefix);
        for a in &self.accounting[..retired] {
            self.retired_noc_energy_pj += a.noc_energy_pj;
        }
        self.accounting.drain(..retired);
        self.acct_base += retired;
    }

    /// Dispatches one micro-batch. Returns `false` once every submitted
    /// request has finished and every pending completion has been applied;
    /// when the only remaining work lies in the future (an arrival, or a
    /// batch still executing on another node), the idle node's clock jumps
    /// forward and execution continues.
    ///
    /// With per-node KV pools (bounded data-parallel placement) dispatch
    /// considers every idle node, earliest clock first and — on equal
    /// clocks — most free pages first: a session pinned to a node's pool
    /// can only run there, so a node needs both clock headroom *and* free
    /// pages to win a batch. With an unbounded pool (or a single pool) only
    /// the earliest idle node is consulted, which is exactly the pre-paging
    /// behaviour.
    ///
    /// # Panics
    /// Panics if unfinished sessions exist but neither runnable work, nor an
    /// executing batch, nor a future arrival does (a scheduler invariant
    /// violation).
    pub fn step(&mut self) -> bool {
        let mut idle = std::mem::take(&mut self.idle_scratch);
        let stepped = 'outer: loop {
            if self.in_flight.is_empty() && self.scheduler.all_finished() {
                break false;
            }
            idle.clear();
            idle.extend((0..self.pool.len()).filter(|&i| !self.occupied(i)));
            if idle.is_empty() {
                // Every node is busy: retire the earliest completion first.
                let idx = self.earliest_completion().expect("busy nodes imply in-flight batches");
                self.finish(idx);
                continue;
            }
            idle.sort_by_key(|&i| {
                let free = self.kv_free_pages(i).ranking();
                (self.pool.free_at(i), std::cmp::Reverse(free), i)
            });
            let primary = idle[0];
            let now = self.pool.free_at(primary);
            // Completions at or before this node's clock must apply first so
            // the batch formed at `now` sees their effects.
            if let Some(idx) = self.earliest_completion() {
                if self.in_flight[idx].end <= now {
                    self.finish(idx);
                    continue;
                }
            }
            // Disaggregated nodes differ by phase even with a shared or
            // unbounded pool, so every idle node must be tried there too.
            let tries = if self.multi_pool || self.disagg { idle.len() } else { 1 };
            for &node in &idle[..tries] {
                let node_now = self.pool.free_at(node);
                // Later idle nodes have later clocks; completions in between
                // must land before a batch forms at that clock.
                if let Some(idx) = self.earliest_completion() {
                    if self.in_flight[idx].end <= node_now {
                        self.finish(idx);
                        continue 'outer;
                    }
                }
                // A draining node has no phase: it forms no new batches
                // until its role flip completes.
                let Some(phase) = self.phase_for(node) else { continue };
                if let Some(batch) =
                    self.scheduler.next_micro_batch_phased(node_now, self.pool_for(node), phase)
                {
                    self.dispatch(node, batch, node_now);
                    break 'outer true;
                }
            }
            // Nothing runnable on any idle node's clock: wait for the next
            // completion (which may unlock decode work or free pages) or
            // jump to the next arrival.
            if let Some(idx) = self.earliest_completion() {
                let end = self.in_flight[idx].end;
                self.finish(idx);
                self.pool.wait_until(primary, end);
                continue;
            }
            let next = self
                .scheduler
                .next_arrival_after(now)
                .expect("unfinished sessions but no runnable work and no future arrival");
            // With nothing in flight, `next` is the minimum ready time after
            // the earliest idle clock, so no node can dispatch before it:
            // advance every earlier node in one pass instead of re-scanning
            // the scheduler once per node.
            self.pool.wait_all_until(next);
        };
        self.idle_scratch = idle;
        stepped
    }

    /// Evaluates one micro-batch on the accelerator model, occupies its
    /// node(s) and queues the completion.
    pub(crate) fn dispatch(&mut self, node: usize, batch: MicroBatch, start: u64) {
        let mut slices = std::mem::take(&mut self.slice_scratch);
        batch.slices_into(self.config.kv_bucket, &mut slices);
        let noc = self.placement.noc;
        let front_hash = mugi::shape_hash(&(batch.model, slices.as_slice()));
        let (step_cycles, compute_energy_pj, perf_noc_energy_pj, attention_energy_pj) = match self
            .perf_front
            .get(front_hash, batch.model, &slices)
        {
            Some(hit) => hit,
            None => {
                let v = match self.placement.policy {
                    PlacementPolicy::DataParallel | PlacementPolicy::Disaggregated { .. } => {
                        let perf = self.accel.estimate_micro_batch(batch.model, &slices);
                        let cycles = perf.node.total_cycles.max(1);
                        let energy = perf.node.dynamic_energy_pj
                            + perf.node.hbm_energy_pj
                            + perf.node.leakage_energy_pj;
                        (cycles, energy, 0.0, perf.node.energy_breakdown.attention)
                    }
                    PlacementPolicy::Sharded => {
                        let perf = self.accel.estimate_micro_batch_noc(batch.model, &slices, noc);
                        let cycles = perf.effective_cycles.max(1);
                        let energy = perf.total_energy_pj - perf.noc_energy_pj;
                        (cycles, energy, perf.noc_energy_pj, perf.node.energy_breakdown.attention)
                    }
                };
                self.perf_front.insert(front_hash, batch.model, &slices, v);
                v
            }
        };
        let noc_energy_pj = match self.placement.policy {
            PlacementPolicy::DataParallel | PlacementPolicy::Disaggregated { .. } => {
                // The front end ships the batch's BF16 token activations to
                // the executing node and the produced activations ride the
                // same links back.
                let bytes = 2 * (batch.total_tokens() * batch.model.config().hidden_dim * 2);
                noc.transfer_energy_pj(u64_from_usize(bytes), &self.cost)
            }
            PlacementPolicy::Sharded => perf_noc_energy_pj,
        };
        slices.clear();
        self.slice_scratch = slices;
        // Preemptions stall the step while the pool is reshuffled: a fixed
        // fault cost per evicted page, on top of the victims' much larger
        // recompute cost (paid when their prefills re-execute). Unbounded
        // pools never evict, so this is exactly zero there.
        let stall_cycles = u64_from_usize(batch.evicted_pages) * self.config.fault_stall_cycles;
        self.fault_stall_cycles += stall_cycles;
        // Swap-outs stall the step while the victims' KV streams out over
        // the NoC; each victim is charged the transfer energy and queued to
        // swap back in. The transfers share the outbound window
        // `[start, start + swap_stall_cycles)`: until it closes, the victim
        // may not swap back in (`ready_cycle`, enforced by
        // `service_migrations`) and the receiving prefill node may not start
        // new work.
        let swap_bytes: u64 = batch.swapped_out.iter().map(|s| s.bytes).sum();
        let swap_stall_cycles = noc.transfer_cycles(swap_bytes);
        for swap in &batch.swapped_out {
            let energy = noc.transfer_energy_pj(swap.bytes, &self.cost);
            let slot = self.aidx(swap.id);
            let acct = &mut self.accounting[slot];
            acct.kv_transfer_bytes += swap.bytes;
            acct.kv_transfer_energy_pj += energy;
            self.transfer_bytes += swap.bytes;
            self.transfer_energy_pj += energy;
            self.scheduler.stall_session_until(swap.id, start + swap_stall_cycles);
            self.pool.wait_until(swap.to_pool, start + swap_stall_cycles);
            debug_assert!(!self.pending_migrations.contains(&swap.id));
            self.pending_migrations.push(swap.id);
        }
        self.transfer_stall_cycles += swap_stall_cycles;
        let step_cycles = step_cycles + stall_cycles + swap_stall_cycles;
        let end = start + step_cycles;
        match self.placement.policy {
            PlacementPolicy::DataParallel | PlacementPolicy::Disaggregated { .. } => {
                self.pool.dispatch_one(node, start, step_cycles)
            }
            PlacementPolicy::Sharded => self.pool.dispatch_all(start, step_cycles),
        }
        self.steps += 1;
        let mut shares = std::mem::take(&mut self.share_scratch);
        attribute_step_energy_into(
            &batch.items,
            compute_energy_pj,
            attention_energy_pj,
            &mut shares,
        );
        let total_tokens = batch.total_tokens().max(1) as f64;
        for (item, &share) in batch.items.iter().zip(shares.iter()) {
            let slot = self.aidx(item.id);
            let acct = &mut self.accounting[slot];
            acct.energy_pj += share;
            acct.noc_energy_pj += noc_energy_pj * item.tokens as f64 / total_tokens;
            acct.micro_batches += 1;
        }
        self.share_scratch = shares;
        self.in_flight.push(InFlight { batch, node, start, end, seq: self.steps });
    }

    /// Runs until every submitted request has finished, then reports.
    pub fn run(&mut self) -> RuntimeReport {
        while self.step() {}
        self.report()
    }

    /// The statistics of one finished session (`None` while it is still
    /// running).
    pub(crate) fn session_stats(&self, s: &Session) -> Option<RequestStats> {
        // The cached cost model's frequency is the exact value
        // `accel.frequency_hz()` would rebuild a `Design` to compute — this
        // runs once per retired session, so it must not.
        let freq = self.cost.frequency_hz;
        let to_s = |cycles: u64| cycles as f64 / freq;
        let (Some(first), Some(finish)) = (s.first_token_cycle, s.finish_cycle) else {
            return None;
        };
        let arrival = s.request.arrival_cycle;
        let outputs = s.generated_tokens;
        let acct = &self.accounting[self.aidx(s.id)];
        let tpot_s = if outputs > 1 { to_s(finish - first) / (outputs - 1) as f64 } else { 0.0 };
        let e2e_s = to_s(finish - arrival);
        Some(RequestStats {
            id: s.id,
            model: s.request.model,
            prompt_tokens: s.request.prompt_tokens,
            output_tokens: outputs,
            ttft_s: to_s(first - arrival),
            tpot_s,
            e2e_s,
            tokens_per_s: if e2e_s > 0.0 { outputs as f64 / e2e_s } else { 0.0 },
            energy_uj: acct.energy_pj * 1e-6,
            noc_energy_uj: acct.noc_energy_pj * 1e-6,
            kv_transfer_bytes: acct.kv_transfer_bytes,
            kv_transfer_energy_uj: acct.kv_transfer_energy_pj * 1e-6,
            micro_batches: acct.micro_batches,
        })
    }

    /// Builds the report for the work completed so far. Unfinished sessions
    /// (if any) are excluded from the per-request statistics; sessions
    /// retired incrementally ([`ExecutorConfig::retire_finished`]) are
    /// included from the retired set.
    pub fn report(&self) -> RuntimeReport {
        let freq = self.cost.frequency_hz;
        let to_s = |cycles: u64| cycles as f64 / freq;
        let mut requests = self.retired_stats.clone();
        for s in self.scheduler.sessions() {
            if let Some(stats) = self.session_stats(s) {
                requests.push(stats);
            }
        }
        let total_output_tokens: u64 =
            requests.iter().map(|r| u64_from_usize(r.output_tokens)).sum();
        let makespan_s = to_s(self.clock_cycles);
        let ttft = Percentiles::of(&requests.iter().map(|r| r.ttft_s).collect::<Vec<_>>());
        let tpot = Percentiles::of(
            &requests.iter().filter(|r| r.output_tokens > 1).map(|r| r.tpot_s).collect::<Vec<_>>(),
        );
        RuntimeReport {
            requests,
            makespan_s,
            total_output_tokens,
            throughput_tokens_per_s: if makespan_s > 0.0 {
                total_output_tokens as f64 / makespan_s
            } else {
                0.0
            },
            micro_batches: self.steps,
            ttft,
            tpot,
            trace_cache_entries: self.accel.trace_cache_entries(),
            nodes: self.pool.len(),
            noc: self.placement.noc.label(),
            noc_energy_uj: {
                // Start from the retired prefix and fold the live window in
                // id order — the same addition sequence as a never-retiring
                // run, so retirement cannot perturb the total bit-wise.
                let mut total_pj = self.retired_noc_energy_pj;
                for a in &self.accounting {
                    total_pj += a.noc_energy_pj;
                }
                total_pj * 1e-6
            },
            node_busy_cycles: self.pool.busy().to_vec(),
            kv: self.kv_stats(),
        }
    }

    /// The run's paged-KV statistics so far (shared by [`Executor::report`]
    /// and the event engine's folded report).
    pub(crate) fn kv_stats(&self) -> KvStats {
        KvStats {
            page_tokens: self.scheduler.kv_config().page_tokens,
            capacity_pages: self.scheduler.kv_capacity_pages(),
            peak_used_pages: self.scheduler.kv_peak_used_pages(),
            preemptions: self.scheduler.preemption_count(),
            reprefill_tokens: self.scheduler.reprefill_token_count(),
            evicted_pages: self.scheduler.evicted_page_count(),
            rejected_requests: self.scheduler.rejected_count(),
            fault_stall_cycles: self.fault_stall_cycles,
            migrations: self.scheduler.migration_count(),
            migrated_pages: self.scheduler.migrated_page_count(),
            swap_outs: self.scheduler.swap_out_count(),
            swapped_pages: self.scheduler.swapped_page_count(),
            transfer_bytes: self.transfer_bytes,
            transfer_energy_uj: self.transfer_energy_pj * 1e-6,
            transfer_stall_cycles: self.transfer_stall_cycles,
            role_rerolls: self.role_rerolls,
            calibration_samples: self.scheduler.calibration_samples(),
            calibrated_cycles_per_prefill_token: self.scheduler.calibrated_rate(),
        }
    }
}

/// Splits one step's compute energy across the batch items: the attention
/// share of the dynamic energy is weighted by `tokens × attended KV` (long
/// contexts read and score more cache), everything else (projections, FFN,
/// nonlinear, HBM, leakage) by token share alone.
fn attribute_step_energy_into(
    items: &[BatchItem],
    compute_energy_pj: f64,
    attention_energy_pj: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    let attention_pj = attention_energy_pj.min(compute_energy_pj);
    let rest_pj = compute_energy_pj - attention_pj;
    let total_tokens: f64 = items.iter().map(|i| i.tokens as f64).sum();
    let total_kv_weight: f64 =
        items.iter().map(|i| i.tokens as f64 * i.context_len.max(1) as f64).sum();
    out.extend(items.iter().map(|i| {
        let token_share = if total_tokens > 0.0 { i.tokens as f64 / total_tokens } else { 0.0 };
        let kv_share = if total_kv_weight > 0.0 {
            i.tokens as f64 * i.context_len.max(1) as f64 / total_kv_weight
        } else {
            0.0
        };
        rest_pj * token_share + attention_pj * kv_share
    }));
}

/// [`attribute_step_energy_into`] returning a fresh vector (test
/// convenience; the dispatch hot path reuses a scratch buffer instead).
#[cfg(test)]
fn attribute_step_energy(
    items: &[BatchItem],
    compute_energy_pj: f64,
    attention_energy_pj: f64,
) -> Vec<f64> {
    let mut out = Vec::new();
    attribute_step_energy_into(items, compute_energy_pj, attention_energy_pj, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use mugi::arch::noc::NocConfig;
    use mugi_workloads::models::ModelId;
    use mugi_workloads::ops::Phase;

    #[test]
    fn single_request_runs_to_completion_with_sane_stats() {
        let mut ex =
            Executor::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        let id = ex.submit(Request::new(ModelId::Llama2_7b, 200, 5));
        let report = ex.run();
        assert_eq!(report.requests.len(), 1);
        let r = &report.requests[0];
        assert_eq!(r.id, id);
        assert_eq!(r.output_tokens, 5);
        assert!(r.ttft_s > 0.0);
        assert!(r.tpot_s > 0.0);
        assert!(r.e2e_s >= r.ttft_s);
        assert!(r.energy_uj > 0.0);
        assert_eq!(r.noc_energy_uj, 0.0, "one node moves nothing over the NoC");
        // One prefill step plus four decode steps.
        assert_eq!(r.micro_batches, 5);
        assert!(report.throughput_tokens_per_s > 0.0);
        assert_eq!(report.nodes, 1);
        assert_eq!(report.noc_energy_uj, 0.0);
        assert_eq!(report.node_busy_cycles.len(), 1);
        assert!(ex.scheduler().all_finished());
    }

    #[test]
    fn sessions_submitted_before_executor_construction_are_accounted() {
        // Regression: the executor must allocate accounting slots for
        // sessions already living in the scheduler it is handed.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(Request::new(ModelId::Llama2_7b, 50, 2));
        let mut ex = Executor::new(MugiAccelerator::new(128), sched);
        let late = ex.submit(Request::new(ModelId::Llama2_7b, 50, 2));
        let report = ex.run();
        assert_eq!(report.requests.len(), 2);
        assert!(report.requests.iter().all(|r| r.energy_uj > 0.0 && r.micro_batches > 0));
        assert_eq!(report.requests[1].id, late);
    }

    #[test]
    fn staggered_arrival_jumps_the_clock() {
        let mut ex =
            Executor::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        ex.submit(Request::new(ModelId::Llama2_7b, 32, 1).arriving_at(1_000_000));
        let report = ex.run();
        assert!(ex.clock_cycles() > 1_000_000);
        // TTFT is measured from arrival, not from cycle zero.
        assert!(report.requests[0].ttft_s < report.makespan_s);
    }

    #[test]
    fn decode_steps_reuse_cached_traces() {
        let mut ex =
            Executor::new(MugiAccelerator::new(128), Scheduler::new(SchedulerConfig::default()));
        ex.submit(Request::new(ModelId::Llama2_7b, 100, 40));
        let report = ex.run();
        // 1 prefill + 39 decode micro-batches, but the bucketed decode
        // context means only a handful of distinct trace shapes.
        assert_eq!(report.micro_batches, 40);
        assert!(
            report.trace_cache_entries < 8,
            "expected few cached shapes, got {}",
            report.trace_cache_entries
        );
    }

    #[test]
    fn long_context_decodes_are_charged_more_energy() {
        // Two decode slots in the same step: the 4096-entry context must be
        // charged more than the 64-entry one, and the split must conserve
        // the step energy.
        let items = [
            BatchItem { id: RequestId(0), phase: Phase::Decode, tokens: 1, context_len: 64 },
            BatchItem { id: RequestId(1), phase: Phase::Decode, tokens: 1, context_len: 4096 },
        ];
        let shares = attribute_step_energy(&items, 1000.0, 400.0);
        assert!(shares[1] > shares[0], "long context must pay more: {shares:?}");
        assert!((shares.iter().sum::<f64>() - 1000.0).abs() < 1e-9, "energy is conserved");
        // Token-share still governs the non-attention pool: with no
        // attention energy the charges are equal.
        let flat = attribute_step_energy(&items, 1000.0, 0.0);
        assert!((flat[0] - flat[1]).abs() < 1e-9);
    }

    #[test]
    fn sharded_mesh_accelerates_the_run_and_charges_noc_energy() {
        let requests: Vec<Request> =
            (0..8).map(|i| Request::new(ModelId::Llama2_7b, 100 + i * 40, 6)).collect();
        let run = |placement: Placement| {
            let mut ex = Executor::with_placement(
                MugiAccelerator::new(128),
                Scheduler::new(SchedulerConfig::default()),
                ExecutorConfig::default(),
                placement,
            );
            for r in &requests {
                ex.submit(*r);
            }
            ex.run()
        };
        let single = run(Placement::single_node());
        let mesh = run(Placement::sharded(NocConfig::mesh_4x4()));
        let speedup = mesh.throughput_tokens_per_s / single.throughput_tokens_per_s;
        assert!(speedup > 12.0, "sharded 4x4 speedup {speedup}");
        assert_eq!(single.noc_energy_uj, 0.0);
        assert!(mesh.noc_energy_uj > 0.0, "sharded execution must charge NoC transfers");
        assert!(mesh.requests.iter().all(|r| r.noc_energy_uj > 0.0));
        assert_eq!(mesh.nodes, 16);
        assert_eq!(mesh.total_output_tokens, single.total_output_tokens);
    }

    #[test]
    fn data_parallel_mesh_overlaps_independent_batches() {
        // Two models' micro-batches cannot share a step on one node, but a
        // data-parallel pool runs them concurrently.
        let requests: Vec<Request> = (0..12)
            .map(|i| {
                let model = if i % 2 == 0 { ModelId::Llama2_7b } else { ModelId::Llama2_13b };
                Request::new(model, 200, 8)
            })
            .collect();
        let run = |placement: Placement| {
            let mut ex = Executor::with_placement(
                MugiAccelerator::new(128),
                Scheduler::new(SchedulerConfig::default()),
                ExecutorConfig::default(),
                placement,
            );
            for r in &requests {
                ex.submit(*r);
            }
            ex.run()
        };
        let single = run(Placement::single_node());
        let dp = run(Placement::data_parallel(NocConfig { rows: 2, cols: 1 }));
        assert!(
            dp.throughput_tokens_per_s > single.throughput_tokens_per_s * 1.5,
            "two models on two nodes should overlap: {} vs {}",
            dp.throughput_tokens_per_s,
            single.throughput_tokens_per_s
        );
        assert!(dp.noc_energy_uj > 0.0, "shipping batches to nodes crosses the mesh");
        assert_eq!(dp.total_output_tokens, single.total_output_tokens);
        // Both nodes did real work.
        assert!(dp.node_busy_cycles.iter().all(|&b| b > 0), "{:?}", dp.node_busy_cycles);
    }
}
