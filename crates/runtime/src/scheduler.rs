//! The continuous-batching scheduler: turns a population of sessions into a
//! stream of micro-batches.
//!
//! Each call to [`Scheduler::next_micro_batch`] assembles one micro-batch for
//! one model under two hard caps — at most `max_batch` requests and at most
//! `token_budget` tokens — interleaving the two phases the way production
//! LLM servers do:
//!
//! 1. **Decode first.** Every in-flight (decoding) session of the chosen
//!    model gets a one-token decode slot, so ongoing generations are never
//!    stalled behind new prompts.
//! 2. **Prefill with the leftover budget.** Waiting prompts are admitted in
//!    policy order ([`SchedulingPolicy::Fcfs`] or
//!    [`SchedulingPolicy::ShortestPrefillFirst`]) as *chunks* of at most
//!    `prefill_chunk` tokens, so one long prompt cannot monopolise a step
//!    (chunked prefill).
//!
//! When several models have runnable work the scheduler round-robins between
//! them across micro-batches, which bounds every model's wait by the number
//! of active models.

use crate::request::{Request, RequestId, Session, SessionState};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{BatchSlice, Phase};
use serde::{Deserialize, Serialize};

/// Order in which waiting prompts are admitted to the prefill share of a
/// micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First come, first served (submission order).
    Fcfs,
    /// Shortest remaining prefill first (ties broken by submission order).
    /// Lowers mean time-to-first-token for short prompts at the cost of
    /// delaying long ones while shorter work keeps arriving.
    ShortestPrefillFirst,
}

/// Static scheduler configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum requests per micro-batch (decode slots plus prefill chunks).
    pub max_batch: usize,
    /// Maximum tokens per micro-batch: each decode slot costs one token, a
    /// prefill chunk costs its length.
    pub token_budget: usize,
    /// Maximum prompt tokens one request may prefill in a single micro-batch.
    pub prefill_chunk: usize,
    /// Prefill admission order.
    pub policy: SchedulingPolicy,
}

impl SchedulerConfig {
    /// Validates the caps.
    ///
    /// # Panics
    /// Panics if any cap is zero.
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be non-zero");
        assert!(self.token_budget > 0, "token_budget must be non-zero");
        assert!(self.prefill_chunk > 0, "prefill_chunk must be non-zero");
    }
}

impl Default for SchedulerConfig {
    /// Sixteen requests, a 2048-token budget, 512-token prefill chunks, FCFS.
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 16,
            token_budget: 2048,
            prefill_chunk: 512,
            policy: SchedulingPolicy::Fcfs,
        }
    }
}

/// One request's share of a micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchItem {
    /// The session the work belongs to.
    pub id: RequestId,
    /// Prefill chunk or decode slot.
    pub phase: Phase,
    /// Tokens this item processes (chunk length for prefill, 1 for decode).
    pub tokens: usize,
    /// KV-cache entries the item attends to after this step (cached prefix
    /// plus the chunk for prefill; current cache length for decode).
    pub context_len: usize,
}

/// A scheduled micro-batch: work for one model, one step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroBatch {
    /// The model every item runs on.
    pub model: ModelId,
    /// The scheduled items (decode slots first, then prefill chunks).
    pub items: Vec<BatchItem>,
}

impl MicroBatch {
    /// Total tokens across all items (bounded by the scheduler's budget).
    pub fn total_tokens(&self) -> usize {
        self.items.iter().map(|i| i.tokens).sum()
    }

    /// Number of decode slots.
    pub fn decode_slots(&self) -> usize {
        self.items.iter().filter(|i| i.phase == Phase::Decode).count()
    }

    /// Converts the batch into workload slices for
    /// [`OpTrace::generate_mixed`](mugi_workloads::ops::OpTrace::generate_mixed).
    ///
    /// Decode slots are grouped by their context length rounded up to
    /// `kv_bucket` (the paged-KV page-granularity view of the cache), which
    /// keeps the number of distinct slice shapes — and therefore the size of
    /// the accelerator's trace cache — small. Prefill chunks become one
    /// slice each, with the attended KV length bucketed the same way.
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn slices(&self, kv_bucket: usize) -> Vec<BatchSlice> {
        assert!(kv_bucket > 0, "kv_bucket must be non-zero");
        let bucket = |len: usize| len.div_ceil(kv_bucket).max(1) * kv_bucket;
        // Group decode slots by bucketed context length, preserving ascending
        // order so equal batches always produce identical slice lists.
        let mut decode_buckets: Vec<(usize, usize)> = Vec::new(); // (context, count)
        for item in self.items.iter().filter(|i| i.phase == Phase::Decode) {
            let ctx = bucket(item.context_len);
            match decode_buckets.binary_search_by_key(&ctx, |&(c, _)| c) {
                Ok(pos) => decode_buckets[pos].1 += 1,
                Err(pos) => decode_buckets.insert(pos, (ctx, 1)),
            }
        }
        let mut slices: Vec<BatchSlice> =
            decode_buckets.into_iter().map(|(ctx, count)| BatchSlice::decode(count, ctx)).collect();
        for item in self.items.iter().filter(|i| i.phase == Phase::Prefill) {
            slices.push(BatchSlice::prefill(1, item.tokens).with_kv_len(bucket(item.context_len)));
        }
        slices
    }
}

/// The continuous-batching scheduler.
#[derive(Clone, Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    sessions: Vec<Session>,
    round_robin: usize,
}

impl Scheduler {
    /// Creates an empty scheduler.
    ///
    /// # Panics
    /// Panics if any configured cap is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        config.validate();
        Scheduler { config, sessions: Vec::new(), round_robin: 0 }
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Submits a request, returning its id. Submission order defines FCFS.
    pub fn submit(&mut self, request: Request) -> RequestId {
        let id = RequestId(self.sessions.len() as u64);
        self.sessions.push(Session::new(id, request));
        id
    }

    /// All sessions in submission order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Looks up one session.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this scheduler.
    pub fn session(&self, id: RequestId) -> &Session {
        &self.sessions[id.0 as usize]
    }

    /// Whether every submitted session has finished.
    pub fn all_finished(&self) -> bool {
        self.sessions.iter().all(Session::is_finished)
    }

    /// Number of finished sessions.
    pub fn finished_count(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_finished()).count()
    }

    /// Earliest arrival cycle strictly after `now` among unfinished sessions
    /// (the executor jumps the clock there when nothing is runnable yet).
    pub fn next_arrival_after(&self, now: u64) -> Option<u64> {
        self.sessions
            .iter()
            .filter(|s| !s.is_finished() && s.request.arrival_cycle > now)
            .map(|s| s.request.arrival_cycle)
            .min()
    }

    /// Assembles the next micro-batch at simulated cycle `now`, or `None`
    /// when no session has runnable work (all finished, or only future
    /// arrivals remain).
    pub fn next_micro_batch(&mut self, now: u64) -> Option<MicroBatch> {
        // Round-robin over the models that currently have runnable work,
        // ordered by their oldest runnable session.
        let mut models: Vec<ModelId> = Vec::new();
        for s in self.sessions.iter().filter(|s| s.is_runnable(now)) {
            if !models.contains(&s.request.model) {
                models.push(s.request.model);
            }
        }
        if models.is_empty() {
            return None;
        }
        let model = models[self.round_robin % models.len()];
        self.round_robin = self.round_robin.wrapping_add(1);

        let SchedulerConfig { max_batch, token_budget, prefill_chunk, policy } = self.config;
        let mut items = Vec::new();
        let mut tokens = 0usize;

        // 1. Decode slots for every in-flight generation, oldest first.
        for s in self.sessions.iter().filter(|s| {
            s.is_runnable(now) && s.request.model == model && s.state == SessionState::Decoding
        }) {
            if items.len() >= max_batch || tokens >= token_budget {
                break;
            }
            items.push(BatchItem {
                id: s.id,
                phase: Phase::Decode,
                tokens: 1,
                context_len: s.kv_len(),
            });
            tokens += 1;
        }

        // 2. Prefill chunks with the remaining budget, in policy order.
        let mut waiting: Vec<&Session> = self
            .sessions
            .iter()
            .filter(|s| {
                s.is_runnable(now)
                    && s.request.model == model
                    && s.state == SessionState::Prefilling
            })
            .collect();
        if policy == SchedulingPolicy::ShortestPrefillFirst {
            waiting.sort_by_key(|s| (s.remaining_prefill(), s.id));
        }
        for s in waiting {
            if items.len() >= max_batch || tokens >= token_budget {
                break;
            }
            let room = token_budget - tokens;
            let chunk = s.remaining_prefill().min(prefill_chunk).min(room);
            items.push(BatchItem {
                id: s.id,
                phase: Phase::Prefill,
                tokens: chunk,
                context_len: s.prefilled_tokens + chunk,
            });
            tokens += chunk;
        }

        debug_assert!(!items.is_empty(), "a model with runnable work must yield items");
        debug_assert!(tokens <= token_budget, "token budget exceeded");
        Some(MicroBatch { model, items })
    }

    /// Applies the effects of an executed micro-batch at simulated cycle
    /// `end_cycle`: prefill chunks advance the cached prompt prefix (a
    /// completed prefill emits the first output token), decode slots emit one
    /// token each, and sessions that reach their requested output length
    /// finish.
    ///
    /// # Panics
    /// Panics if the batch references an id this scheduler did not issue.
    pub fn complete(&mut self, batch: &MicroBatch, end_cycle: u64) {
        for item in &batch.items {
            let s = &mut self.sessions[item.id.0 as usize];
            match item.phase {
                Phase::Prefill => {
                    s.prefilled_tokens += item.tokens;
                    debug_assert!(s.prefilled_tokens <= s.request.prompt_tokens);
                    if s.remaining_prefill() == 0 {
                        // The prefill step produces the first output token.
                        s.generated_tokens = 1;
                        s.first_token_cycle = Some(end_cycle);
                        if s.generated_tokens >= s.request.output_tokens {
                            s.state = SessionState::Finished;
                            s.finish_cycle = Some(end_cycle);
                        } else {
                            s.state = SessionState::Decoding;
                        }
                    }
                }
                Phase::Decode => {
                    s.generated_tokens += 1;
                    if s.generated_tokens >= s.request.output_tokens {
                        s.state = SessionState::Finished;
                        s.finish_cycle = Some(end_cycle);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(model: ModelId, prompt: usize, output: usize) -> Request {
        Request::new(model, prompt, output)
    }

    #[test]
    fn decode_slots_come_before_prefill_and_budget_is_respected() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 8,
            token_budget: 64,
            prefill_chunk: 32,
            policy: SchedulingPolicy::Fcfs,
        });
        let a = sched.submit(request(ModelId::Llama2_7b, 100, 4));
        let b = sched.submit(request(ModelId::Llama2_7b, 40, 4));
        // First batch: no decodes yet, two prefill chunks (32 + 32 = 64).
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items.len(), 2);
        assert_eq!(batch.total_tokens(), 64);
        assert!(batch.items.iter().all(|i| i.phase == Phase::Prefill));
        assert_eq!(batch.items[0].id, a);
        assert_eq!(batch.items[0].tokens, 32);
        assert_eq!(batch.items[1].id, b);
        assert_eq!(batch.items[1].tokens, 32);
        sched.complete(&batch, 10);
        // b finished its prompt? 40 > 32, so both still prefilling. Second
        // batch continues the chunks.
        let batch2 = sched.next_micro_batch(10).unwrap();
        assert_eq!(batch2.items[0].tokens, 32); // a: 100 - 32 = 68 left, next 32
        assert_eq!(batch2.items[1].tokens, 8); // b: 40 - 32 = 8 left
        sched.complete(&batch2, 20);
        // b's prefill completed: it now holds a decode slot ahead of a's
        // remaining prefill.
        let batch3 = sched.next_micro_batch(20).unwrap();
        assert_eq!(batch3.items[0].id, b);
        assert_eq!(batch3.items[0].phase, Phase::Decode);
        assert_eq!(batch3.items[1].id, a);
        assert_eq!(batch3.items[1].phase, Phase::Prefill);
    }

    #[test]
    fn shortest_prefill_first_reorders_waiting_prompts() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 2,
            token_budget: 1024,
            prefill_chunk: 512,
            policy: SchedulingPolicy::ShortestPrefillFirst,
        });
        sched.submit(request(ModelId::Llama2_7b, 400, 2));
        let short = sched.submit(request(ModelId::Llama2_7b, 50, 2));
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items[0].id, short, "shortest prompt admitted first");
    }

    #[test]
    fn models_round_robin_across_micro_batches() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 8));
        sched.submit(request(ModelId::Llama2_70b, 64, 8));
        let first = sched.next_micro_batch(0).unwrap();
        let second = sched.next_micro_batch(0).unwrap();
        assert_ne!(first.model, second.model);
    }

    #[test]
    fn prefill_completion_emits_first_token_and_transitions_to_decode() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let id = sched.submit(request(ModelId::Llama2_7b, 64, 3));
        let batch = sched.next_micro_batch(0).unwrap();
        sched.complete(&batch, 100);
        let s = sched.session(id);
        assert_eq!(s.state, SessionState::Decoding);
        assert_eq!(s.generated_tokens, 1);
        assert_eq!(s.first_token_cycle, Some(100));
        // Two decode steps finish the request.
        for t in [200, 300] {
            let b = sched.next_micro_batch(t - 100).unwrap();
            assert_eq!(b.items[0].phase, Phase::Decode);
            sched.complete(&b, t);
        }
        let s = sched.session(id);
        assert!(s.is_finished());
        assert_eq!(s.generated_tokens, 3);
        assert_eq!(s.finish_cycle, Some(300));
        assert!(sched.all_finished());
        assert!(sched.next_micro_batch(400).is_none());
    }

    #[test]
    fn future_arrivals_wait_and_are_reported() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 16, 1).arriving_at(1000));
        assert!(sched.next_micro_batch(0).is_none());
        assert_eq!(sched.next_arrival_after(0), Some(1000));
        assert!(sched.next_micro_batch(1000).is_some());
    }

    #[test]
    fn slices_bucket_decode_contexts_and_keep_prefill_chunks() {
        let batch = MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![
                BatchItem { id: RequestId(0), phase: Phase::Decode, tokens: 1, context_len: 70 },
                BatchItem { id: RequestId(1), phase: Phase::Decode, tokens: 1, context_len: 100 },
                BatchItem { id: RequestId(2), phase: Phase::Decode, tokens: 1, context_len: 300 },
                BatchItem { id: RequestId(3), phase: Phase::Prefill, tokens: 96, context_len: 224 },
            ],
        };
        let slices = batch.slices(128);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0], BatchSlice::decode(2, 128));
        assert_eq!(slices[1], BatchSlice::decode(1, 384));
        assert_eq!(slices[2], BatchSlice::prefill(1, 96).with_kv_len(256));
    }

    #[test]
    #[should_panic(expected = "token_budget must be non-zero")]
    fn zero_budget_rejected() {
        Scheduler::new(SchedulerConfig {
            max_batch: 1,
            token_budget: 0,
            prefill_chunk: 1,
            policy: SchedulingPolicy::Fcfs,
        });
    }
}
