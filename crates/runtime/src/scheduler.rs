//! The continuous-batching scheduler: turns a population of sessions into a
//! stream of micro-batches.
//!
//! Each call to [`Scheduler::next_micro_batch`] assembles one micro-batch for
//! one model under two hard caps — at most `max_batch` requests and at most
//! `token_budget` tokens — interleaving the two phases the way production
//! LLM servers do:
//!
//! 1. **Decode first.** Every in-flight (decoding) session of the chosen
//!    model gets a one-token decode slot, so ongoing generations are never
//!    stalled behind new prompts.
//! 2. **Prefill with the leftover budget.** Waiting prompts are admitted in
//!    policy order ([`SchedulingPolicy::Fcfs`] or
//!    [`SchedulingPolicy::ShortestPrefillFirst`]) as *chunks* of at most
//!    `prefill_chunk` tokens, so one long prompt cannot monopolise a step
//!    (chunked prefill).
//!
//! When several models have runnable work the scheduler serves the
//! least-recently-served one, which bounds every model's wait by the number
//! of active models even as models join and leave the runnable set between
//! calls (a modulo round-robin over that shifting set could skip a model
//! indefinitely).
//!
//! Internally the scheduler keeps per-model queues of *released* unfinished
//! sessions plus a retired counter, so each call touches only in-flight
//! work — not every session ever submitted. Sessions scheduled into a
//! micro-batch are marked in flight until the batch completes, which lets a
//! multi-node executor overlap several micro-batches safely.

use crate::request::{Request, RequestId, Session, SessionState};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{BatchSlice, Phase};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Order in which waiting prompts are admitted to the prefill share of a
/// micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First come, first served (submission order).
    Fcfs,
    /// Shortest remaining prefill first (ties broken by submission order).
    /// Lowers mean time-to-first-token for short prompts at the cost of
    /// delaying long ones while shorter work keeps arriving.
    ShortestPrefillFirst,
}

/// Static scheduler configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum requests per micro-batch (decode slots plus prefill chunks).
    pub max_batch: usize,
    /// Maximum tokens per micro-batch: each decode slot costs one token, a
    /// prefill chunk costs its length.
    pub token_budget: usize,
    /// Maximum prompt tokens one request may prefill in a single micro-batch.
    pub prefill_chunk: usize,
    /// Prefill admission order.
    pub policy: SchedulingPolicy,
}

impl SchedulerConfig {
    /// Validates the caps.
    ///
    /// # Panics
    /// Panics if any cap is zero.
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be non-zero");
        assert!(self.token_budget > 0, "token_budget must be non-zero");
        assert!(self.prefill_chunk > 0, "prefill_chunk must be non-zero");
    }
}

impl Default for SchedulerConfig {
    /// Sixteen requests, a 2048-token budget, 512-token prefill chunks, FCFS.
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 16,
            token_budget: 2048,
            prefill_chunk: 512,
            policy: SchedulingPolicy::Fcfs,
        }
    }
}

/// One request's share of a micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchItem {
    /// The session the work belongs to.
    pub id: RequestId,
    /// Prefill chunk or decode slot.
    pub phase: Phase,
    /// Tokens this item processes (chunk length for prefill, 1 for decode).
    pub tokens: usize,
    /// KV-cache entries the item attends to after this step (cached prefix
    /// plus the chunk for prefill; current cache length for decode).
    pub context_len: usize,
}

/// A scheduled micro-batch: work for one model, one step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroBatch {
    /// The model every item runs on.
    pub model: ModelId,
    /// The scheduled items (decode slots first, then prefill chunks).
    pub items: Vec<BatchItem>,
}

impl MicroBatch {
    /// Total tokens across all items (bounded by the scheduler's budget).
    pub fn total_tokens(&self) -> usize {
        self.items.iter().map(|i| i.tokens).sum()
    }

    /// Number of decode slots.
    pub fn decode_slots(&self) -> usize {
        self.items.iter().filter(|i| i.phase == Phase::Decode).count()
    }

    /// Converts the batch into workload slices for
    /// [`OpTrace::generate_mixed`](mugi_workloads::ops::OpTrace::generate_mixed).
    ///
    /// Decode slots are grouped by their context length rounded up to
    /// `kv_bucket` (the paged-KV page-granularity view of the cache), which
    /// keeps the number of distinct slice shapes — and therefore the size of
    /// the accelerator's trace cache — small. Prefill chunks become one
    /// slice each, with the attended KV length bucketed the same way.
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn slices(&self, kv_bucket: usize) -> Vec<BatchSlice> {
        assert!(kv_bucket > 0, "kv_bucket must be non-zero");
        let bucket = |len: usize| len.div_ceil(kv_bucket).max(1) * kv_bucket;
        // Group decode slots by bucketed context length, preserving ascending
        // order so equal batches always produce identical slice lists.
        let mut decode_buckets: Vec<(usize, usize)> = Vec::new(); // (context, count)
        for item in self.items.iter().filter(|i| i.phase == Phase::Decode) {
            let ctx = bucket(item.context_len);
            match decode_buckets.binary_search_by_key(&ctx, |&(c, _)| c) {
                Ok(pos) => decode_buckets[pos].1 += 1,
                Err(pos) => decode_buckets.insert(pos, (ctx, 1)),
            }
        }
        let mut slices: Vec<BatchSlice> =
            decode_buckets.into_iter().map(|(ctx, count)| BatchSlice::decode(count, ctx)).collect();
        for item in self.items.iter().filter(|i| i.phase == Phase::Prefill) {
            slices.push(BatchSlice::prefill(1, item.tokens).with_kv_len(bucket(item.context_len)));
        }
        slices
    }
}

/// Per-model queues of *released* (arrived) unfinished sessions. Keeping
/// membership incremental means each scheduling decision touches only the
/// model's in-flight sessions, not every session ever submitted.
#[derive(Clone, Debug)]
struct ModelQueue {
    model: ModelId,
    /// Sessions still prefilling, sorted by id (submission order = FCFS).
    waiting: Vec<RequestId>,
    /// Sessions decoding, sorted by id (oldest generation first).
    decoding: Vec<RequestId>,
    /// Serve-counter value when this model last headed a micro-batch
    /// (0 = never served). The scheduler picks the least-recently-served
    /// runnable model, which is starvation-free even as the runnable set
    /// grows and shrinks between calls.
    last_served: u64,
}

impl ModelQueue {
    fn new(model: ModelId) -> Self {
        ModelQueue { model, waiting: Vec::new(), decoding: Vec::new(), last_served: 0 }
    }
}

/// Inserts `id` into a vec kept sorted ascending, ignoring duplicates.
fn sorted_insert(ids: &mut Vec<RequestId>, id: RequestId) {
    if let Err(pos) = ids.binary_search(&id) {
        ids.insert(pos, id);
    }
}

/// Removes `id` from a sorted vec if present.
fn sorted_remove(ids: &mut Vec<RequestId>, id: RequestId) {
    if let Ok(pos) = ids.binary_search(&id) {
        ids.remove(pos);
    }
}

/// The continuous-batching scheduler.
#[derive(Clone, Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    sessions: Vec<Session>,
    /// Per-model queues of released unfinished sessions, in first-submission
    /// order of their models.
    queues: Vec<ModelQueue>,
    /// `(arrival_cycle, id)` of submitted sessions not yet released into the
    /// queues, sorted ascending by arrival: in-order submissions (the normal
    /// case) append in O(1) and each release pops from the front.
    future: VecDeque<(u64, RequestId)>,
    /// Sessions inside an emitted-but-not-yet-completed micro-batch. A
    /// multi-node executor overlaps several micro-batches; their sessions
    /// must not be scheduled twice.
    in_flight: HashSet<RequestId>,
    /// Sessions that have finished (retired from the queues). `all_finished`
    /// is a counter comparison, not a scan.
    retired: usize,
    /// Monotone counter driving the least-recently-served model rotation.
    serve_counter: u64,
}

impl Scheduler {
    /// Creates an empty scheduler.
    ///
    /// # Panics
    /// Panics if any configured cap is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        config.validate();
        Scheduler {
            config,
            sessions: Vec::new(),
            queues: Vec::new(),
            future: VecDeque::new(),
            in_flight: HashSet::new(),
            retired: 0,
            serve_counter: 0,
        }
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Submits a request, returning its id. Submission order defines FCFS.
    pub fn submit(&mut self, request: Request) -> RequestId {
        let id = RequestId(self.sessions.len() as u64);
        self.sessions.push(Session::new(id, request));
        let arrival = request.arrival_cycle;
        if self.future.back().is_none_or(|&(a, _)| a <= arrival) {
            self.future.push_back((arrival, id));
        } else {
            let pos = self.future.partition_point(|&(a, _)| a <= arrival);
            self.future.insert(pos, (arrival, id));
        }
        id
    }

    /// All sessions in submission order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Looks up one session.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this scheduler.
    pub fn session(&self, id: RequestId) -> &Session {
        &self.sessions[id.0 as usize]
    }

    /// Whether every submitted session has finished.
    pub fn all_finished(&self) -> bool {
        self.retired == self.sessions.len()
    }

    /// Number of finished sessions.
    pub fn finished_count(&self) -> usize {
        self.retired
    }

    /// Number of sessions currently inside an emitted-but-not-completed
    /// micro-batch.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Earliest cycle strictly after `now` at which an unfinished session
    /// becomes schedulable: a future arrival, or the `ready_cycle` a session
    /// was stamped with when its latest micro-batch completed. The executor
    /// jumps an idle node's clock there when nothing is runnable yet.
    /// Sessions inside a dispatched-but-uncompleted batch are *not* visible
    /// here — their next ready time is only known once
    /// [`Scheduler::complete`] runs, so an executor must drain pending
    /// completions before relying on this.
    pub fn next_arrival_after(&self, now: u64) -> Option<u64> {
        // Unreleased sessions become ready at their arrival. `future` is
        // sorted ascending, so scan from the front (smallest arrival) past
        // any entries at or before `now`.
        let pending =
            self.future.iter().map(|&(arrival, _)| arrival).find(|&arrival| arrival > now);
        // Released sessions become ready at their `ready_cycle`; the queues
        // hold only unfinished sessions, so this scan is in-flight-sized.
        let queued = self
            .queues
            .iter()
            .flat_map(|q| q.waiting.iter().chain(q.decoding.iter()))
            .map(|id| self.sessions[id.0 as usize].ready_cycle)
            .filter(|&ready| ready > now)
            .min();
        match (pending, queued) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Moves every submitted session whose arrival is at or before `now`
    /// into its model queue.
    fn release_arrivals(&mut self, now: u64) {
        while let Some(&(arrival, id)) = self.future.front() {
            if arrival > now {
                break;
            }
            self.future.pop_front();
            let model = self.sessions[id.0 as usize].request.model;
            let queue = match self.queues.iter_mut().find(|q| q.model == model) {
                Some(queue) => queue,
                None => {
                    self.queues.push(ModelQueue::new(model));
                    self.queues.last_mut().expect("queue just pushed")
                }
            };
            sorted_insert(&mut queue.waiting, id);
        }
    }

    /// Whether `id` may be scheduled at `now`.
    fn schedulable(&self, id: RequestId, now: u64) -> bool {
        !self.in_flight.contains(&id) && self.sessions[id.0 as usize].is_runnable(now)
    }

    /// Assembles the next micro-batch at simulated cycle `now`, or `None`
    /// when no session has runnable work (all finished, everything runnable
    /// already in flight, or only future arrivals remain). Scheduled
    /// sessions are marked in flight until [`Scheduler::complete`] is called
    /// for the batch, so overlapping micro-batches on different nodes never
    /// share a session.
    pub fn next_micro_batch(&mut self, now: u64) -> Option<MicroBatch> {
        self.release_arrivals(now);
        // Pick the least-recently-served model with runnable work; ties
        // (e.g. never-served models) go to the oldest runnable session.
        // Tracking actual service instead of an index into the ever-shifting
        // runnable set means a model that stays runnable is served within
        // one rotation, whatever joins or leaves in between.
        let chosen = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(qi, q)| {
                q.decoding
                    .iter()
                    .chain(q.waiting.iter())
                    .filter(|&&id| self.schedulable(id, now))
                    .map(|&id| id)
                    .min()
                    .map(|oldest| (q.last_served, oldest, qi))
            })
            .min()?;
        let qi = chosen.2;
        self.serve_counter += 1;
        self.queues[qi].last_served = self.serve_counter;
        let model = self.queues[qi].model;

        let SchedulerConfig { max_batch, token_budget, prefill_chunk, policy } = self.config;
        let mut items = Vec::new();
        let mut tokens = 0usize;

        // 1. Decode slots for every in-flight generation, oldest first.
        let decoding: Vec<RequestId> = self.queues[qi]
            .decoding
            .iter()
            .copied()
            .filter(|&id| self.schedulable(id, now))
            .collect();
        for id in decoding {
            if items.len() >= max_batch || tokens >= token_budget {
                break;
            }
            let s = &self.sessions[id.0 as usize];
            items.push(BatchItem { id, phase: Phase::Decode, tokens: 1, context_len: s.kv_len() });
            tokens += 1;
        }

        // 2. Prefill chunks with the remaining budget, in policy order.
        let mut waiting: Vec<RequestId> = self.queues[qi]
            .waiting
            .iter()
            .copied()
            .filter(|&id| self.schedulable(id, now))
            .collect();
        if policy == SchedulingPolicy::ShortestPrefillFirst {
            waiting.sort_by_key(|&id| (self.sessions[id.0 as usize].remaining_prefill(), id));
        }
        for id in waiting {
            if items.len() >= max_batch || tokens >= token_budget {
                break;
            }
            let s = &self.sessions[id.0 as usize];
            let room = token_budget - tokens;
            let chunk = s.remaining_prefill().min(prefill_chunk).min(room);
            items.push(BatchItem {
                id,
                phase: Phase::Prefill,
                tokens: chunk,
                context_len: s.prefilled_tokens + chunk,
            });
            tokens += chunk;
        }

        debug_assert!(!items.is_empty(), "a model with runnable work must yield items");
        debug_assert!(tokens <= token_budget, "token budget exceeded");
        for item in &items {
            self.in_flight.insert(item.id);
        }
        Some(MicroBatch { model, items })
    }

    /// Applies the effects of an executed micro-batch at simulated cycle
    /// `end_cycle`: prefill chunks advance the cached prompt prefix (a
    /// completed prefill emits the first output token), decode slots emit one
    /// token each, and sessions that reach their requested output length
    /// finish and retire from their model queue. Every session of the batch
    /// leaves the in-flight set and becomes schedulable again at
    /// `end_cycle`.
    ///
    /// # Panics
    /// Panics if the batch references an id this scheduler did not issue.
    pub fn complete(&mut self, batch: &MicroBatch, end_cycle: u64) {
        for item in &batch.items {
            let s = &mut self.sessions[item.id.0 as usize];
            match item.phase {
                Phase::Prefill => {
                    s.prefilled_tokens += item.tokens;
                    debug_assert!(s.prefilled_tokens <= s.request.prompt_tokens);
                    if s.remaining_prefill() == 0 {
                        // The prefill step produces the first output token.
                        s.generated_tokens = 1;
                        s.first_token_cycle = Some(end_cycle);
                        if s.generated_tokens >= s.request.output_tokens {
                            s.state = SessionState::Finished;
                            s.finish_cycle = Some(end_cycle);
                        } else {
                            s.state = SessionState::Decoding;
                        }
                    }
                }
                Phase::Decode => {
                    s.generated_tokens += 1;
                    if s.generated_tokens >= s.request.output_tokens {
                        s.state = SessionState::Finished;
                        s.finish_cycle = Some(end_cycle);
                    }
                }
            }
            s.ready_cycle = s.ready_cycle.max(end_cycle);
            let state = s.state;
            self.in_flight.remove(&item.id);
            let queue = self
                .queues
                .iter_mut()
                .find(|q| q.model == batch.model)
                .expect("completed batch's model has a queue");
            match state {
                SessionState::Prefilling => {}
                SessionState::Decoding => {
                    if item.phase == Phase::Prefill {
                        // Prefill just completed: move to the decode queue.
                        sorted_remove(&mut queue.waiting, item.id);
                        sorted_insert(&mut queue.decoding, item.id);
                    }
                }
                SessionState::Finished => {
                    sorted_remove(&mut queue.waiting, item.id);
                    sorted_remove(&mut queue.decoding, item.id);
                    self.retired += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(model: ModelId, prompt: usize, output: usize) -> Request {
        Request::new(model, prompt, output)
    }

    #[test]
    fn decode_slots_come_before_prefill_and_budget_is_respected() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 8,
            token_budget: 64,
            prefill_chunk: 32,
            policy: SchedulingPolicy::Fcfs,
        });
        let a = sched.submit(request(ModelId::Llama2_7b, 100, 4));
        let b = sched.submit(request(ModelId::Llama2_7b, 40, 4));
        // First batch: no decodes yet, two prefill chunks (32 + 32 = 64).
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items.len(), 2);
        assert_eq!(batch.total_tokens(), 64);
        assert!(batch.items.iter().all(|i| i.phase == Phase::Prefill));
        assert_eq!(batch.items[0].id, a);
        assert_eq!(batch.items[0].tokens, 32);
        assert_eq!(batch.items[1].id, b);
        assert_eq!(batch.items[1].tokens, 32);
        sched.complete(&batch, 10);
        // b finished its prompt? 40 > 32, so both still prefilling. Second
        // batch continues the chunks.
        let batch2 = sched.next_micro_batch(10).unwrap();
        assert_eq!(batch2.items[0].tokens, 32); // a: 100 - 32 = 68 left, next 32
        assert_eq!(batch2.items[1].tokens, 8); // b: 40 - 32 = 8 left
        sched.complete(&batch2, 20);
        // b's prefill completed: it now holds a decode slot ahead of a's
        // remaining prefill.
        let batch3 = sched.next_micro_batch(20).unwrap();
        assert_eq!(batch3.items[0].id, b);
        assert_eq!(batch3.items[0].phase, Phase::Decode);
        assert_eq!(batch3.items[1].id, a);
        assert_eq!(batch3.items[1].phase, Phase::Prefill);
    }

    #[test]
    fn no_model_starves_while_the_runnable_set_shifts() {
        // Regression for the round-robin starvation bug: the old
        // `round_robin % models.len()` indexed into a runnable-model list
        // whose size and order changed between calls, so a model could be
        // skipped repeatedly. Least-recently-served selection must serve
        // every continuously-runnable model within one rotation, even as
        // late arrivals reshuffle the set.
        let models = [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b];
        let mut sched = Scheduler::new(SchedulerConfig::default());
        for (i, &m) in models.iter().enumerate() {
            sched.submit(request(m, 64, 40));
            // Staggered extra arrivals keep the runnable set shifting.
            sched.submit(Request::new(m, 64, 40).arriving_at(50 * (i as u64 + 1)));
        }
        let mut since_served = vec![0usize; models.len()];
        let mut now = 0;
        for _ in 0..60 {
            let Some(batch) = sched.next_micro_batch(now) else { break };
            for (mi, m) in models.iter().enumerate() {
                if *m == batch.model {
                    since_served[mi] = 0;
                } else {
                    since_served[mi] += 1;
                }
            }
            assert!(
                since_served.iter().all(|&gap| gap <= models.len()),
                "a runnable model waited longer than one rotation: {since_served:?}"
            );
            now += 1;
            sched.complete(&batch, now);
        }
    }

    #[test]
    fn in_flight_sessions_are_not_rescheduled_until_completed() {
        // Two overlapping micro-batches (as a multi-node executor would
        // form) must never share a session; completion frees it again.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let a = sched.submit(request(ModelId::Llama2_7b, 64, 8));
        let b = sched.submit(request(ModelId::Llama2_7b, 64, 8));
        let first = sched.next_micro_batch(0).unwrap();
        assert_eq!(first.items.len(), 2, "both prompts fit one batch");
        assert_eq!(sched.in_flight_count(), 2);
        assert!(sched.next_micro_batch(0).is_none(), "everything runnable is in flight");
        sched.complete(&first, 10);
        assert_eq!(sched.in_flight_count(), 0);
        let second = sched.next_micro_batch(10).unwrap();
        let ids: Vec<RequestId> = second.items.iter().map(|i| i.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b), "completion frees the sessions");
    }

    #[test]
    fn sessions_only_become_runnable_after_their_last_batch_completes() {
        // Causality across nodes: a decode continuation may not be scheduled
        // at a cycle earlier than the completion of the step that produced
        // its input token.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 4));
        let prefill = sched.next_micro_batch(0).unwrap();
        sched.complete(&prefill, 500);
        assert!(sched.next_micro_batch(100).is_none(), "token only exists at cycle 500");
        assert_eq!(sched.next_arrival_after(100), Some(500));
        assert!(sched.next_micro_batch(500).is_some());
    }

    #[test]
    fn shortest_prefill_first_reorders_waiting_prompts() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 2,
            token_budget: 1024,
            prefill_chunk: 512,
            policy: SchedulingPolicy::ShortestPrefillFirst,
        });
        sched.submit(request(ModelId::Llama2_7b, 400, 2));
        let short = sched.submit(request(ModelId::Llama2_7b, 50, 2));
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items[0].id, short, "shortest prompt admitted first");
    }

    #[test]
    fn models_round_robin_across_micro_batches() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 8));
        sched.submit(request(ModelId::Llama2_70b, 64, 8));
        let first = sched.next_micro_batch(0).unwrap();
        let second = sched.next_micro_batch(0).unwrap();
        assert_ne!(first.model, second.model);
    }

    #[test]
    fn prefill_completion_emits_first_token_and_transitions_to_decode() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let id = sched.submit(request(ModelId::Llama2_7b, 64, 3));
        let batch = sched.next_micro_batch(0).unwrap();
        sched.complete(&batch, 100);
        let s = sched.session(id);
        assert_eq!(s.state, SessionState::Decoding);
        assert_eq!(s.generated_tokens, 1);
        assert_eq!(s.first_token_cycle, Some(100));
        // Two decode steps finish the request.
        for t in [200, 300] {
            let b = sched.next_micro_batch(t - 100).unwrap();
            assert_eq!(b.items[0].phase, Phase::Decode);
            sched.complete(&b, t);
        }
        let s = sched.session(id);
        assert!(s.is_finished());
        assert_eq!(s.generated_tokens, 3);
        assert_eq!(s.finish_cycle, Some(300));
        assert!(sched.all_finished());
        assert!(sched.next_micro_batch(400).is_none());
    }

    #[test]
    fn future_arrivals_wait_and_are_reported() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 16, 1).arriving_at(1000));
        assert!(sched.next_micro_batch(0).is_none());
        assert_eq!(sched.next_arrival_after(0), Some(1000));
        assert!(sched.next_micro_batch(1000).is_some());
    }

    #[test]
    fn slices_bucket_decode_contexts_and_keep_prefill_chunks() {
        let batch = MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![
                BatchItem { id: RequestId(0), phase: Phase::Decode, tokens: 1, context_len: 70 },
                BatchItem { id: RequestId(1), phase: Phase::Decode, tokens: 1, context_len: 100 },
                BatchItem { id: RequestId(2), phase: Phase::Decode, tokens: 1, context_len: 300 },
                BatchItem { id: RequestId(3), phase: Phase::Prefill, tokens: 96, context_len: 224 },
            ],
        };
        let slices = batch.slices(128);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0], BatchSlice::decode(2, 128));
        assert_eq!(slices[1], BatchSlice::decode(1, 384));
        assert_eq!(slices[2], BatchSlice::prefill(1, 96).with_kv_len(256));
    }

    #[test]
    #[should_panic(expected = "token_budget must be non-zero")]
    fn zero_budget_rejected() {
        Scheduler::new(SchedulerConfig {
            max_batch: 1,
            token_budget: 0,
            prefill_chunk: 1,
            policy: SchedulingPolicy::Fcfs,
        });
    }
}
