//! The continuous-batching scheduler: turns a population of sessions into a
//! stream of micro-batches.
//!
//! Each call to [`Scheduler::next_micro_batch`] assembles one micro-batch for
//! one model under two hard caps — at most `max_batch` requests and at most
//! `token_budget` tokens — interleaving the two phases the way production
//! LLM servers do:
//!
//! 1. **Decode first.** Every in-flight (decoding) session of the chosen
//!    model gets a one-token decode slot, so ongoing generations are never
//!    stalled behind new prompts.
//! 2. **Prefill with the leftover budget.** Waiting prompts are admitted in
//!    policy order ([`SchedulingPolicy::Fcfs`] or
//!    [`SchedulingPolicy::ShortestPrefillFirst`]) as *chunks* of at most
//!    `prefill_chunk` tokens, so one long prompt cannot monopolise a step
//!    (chunked prefill).
//!
//! When several models have runnable work the scheduler serves the
//! least-recently-served one, which bounds every model's wait by the number
//! of active models even as models join and leave the runnable set between
//! calls (a modulo round-robin over that shifting set could skip a model
//! indefinitely).
//!
//! Internally the scheduler keeps per-model queues of *released* unfinished
//! sessions plus a retired counter, so each call touches only in-flight
//! work — not every session ever submitted. Sessions scheduled into a
//! micro-batch are marked in flight until the batch completes, which lets a
//! multi-node executor overlap several micro-batches safely.
//!
//! # Paged KV admission and preemption
//!
//! Under a bounded [`KvConfig`] the scheduler also owns the physical
//! [`KvPool`]s (one per data-parallel node, or one aggregate pool under
//! sharded placement) and every micro-batch formation is a paging
//! transaction against the pool passed to [`Scheduler::next_micro_batch_on`]:
//!
//! * a **decode slot** needs its session's table to cover `kv_len + 1`
//!   entries; when the pool is short, the scheduler *preempts* — it evicts
//!   the most-recently-admitted page holders (strictly younger than the
//!   requester, which makes the oldest session unpreemptable and the whole
//!   scheme starvation-free), moves them back to the waiting queue and
//!   charges them a recompute prefill;
//! * a **prefill chunk** from a session already holding pages may preempt
//!   the same way (its work is sunk cost); a *fresh* admission never
//!   preempts — when free pages fall short of its projected need the
//!   prefill queue is deferred wholesale (strict policy order, no
//!   head-of-line bypass), which is the admission-control half of the
//!   design;
//! * sessions are pinned to the pool holding their pages (`PageTable::home`),
//!   so a data-parallel executor can only schedule them on their home node.
//!
//! With the default unbounded [`KvConfig`] none of this bookkeeping runs and
//! the scheduler is bit-identical to the pre-paging implementation
//! (property-tested in `tests/proptests.rs`).
//!
//! # Prefill/decode disaggregation
//!
//! A disaggregated executor partitions the mesh into prefill and decode
//! pools ([`PoolRole`]) and forms *pure* micro-batches through
//! [`Scheduler::next_micro_batch_phased`]: a [`PhaseFilter::PrefillOnly`]
//! batch admits and advances prompts on a prefill pool, a
//! [`PhaseFilter::DecodeOnly`] batch runs decode slots on a decode pool.
//! Completed prefills hand their KV pages over via
//! [`Scheduler::migrate_session`] (driven by the executor, which charges the
//! NoC transfer) instead of recomputing them on the decode side; under
//! [`PreemptionMode::Swap`] a decode-pool eviction pages the victim *out* to
//! a prefill pool the same way ([`MicroBatch::swapped_out`]) rather than
//! dropping its cache. Colocated policies use [`PhaseFilter::Both`] and take
//! exactly the pre-disaggregation code path.
//!
//! # Decode fairness
//!
//! Within a model, decode slots rotate round-robin
//! ([`DecodeOrder::RoundRobin`], the default): each batch starts with the
//! oldest session *after* the last one served, so under `max_batch` or
//! token-budget pressure the newest generations no longer starve behind the
//! oldest ones. When every decoding session fits the batch the rotation
//! degenerates to submission order, i.e. to [`DecodeOrder::Fcfs`] — the
//! pre-rotation behaviour kept as an explicit opt-out (and as the oracle for
//! the bit-identity regression tests).

// mugi-lint: allow(hot-path-panic, "panics here enforce documented API contracts (submit after finish, retired-session access) and scheduler invariants (dense ids via sidx(), page-table/pool consistency); a deterministic simulator must abort on corrupt state rather than guess")

use crate::control::SloCalibrator;
use crate::kv::{
    pages_for, AdmissionError, KvConfig, KvFreePages, KvPool, PreemptionMode, SloConfig, KV_BITS,
};
use crate::placement::PoolRole;
use crate::request::{Request, RequestId, Session, SessionArena, SessionState};
use mugi_numerics::cast::{u64_from_usize, usize_from_u64};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{BatchSlice, Phase};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Order in which waiting prompts are admitted to the prefill share of a
/// micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First come, first served (submission order).
    Fcfs,
    /// Shortest remaining prefill first (ties broken by submission order).
    /// Lowers mean time-to-first-token for short prompts at the cost of
    /// delaying long ones while shorter work keeps arriving.
    ShortestPrefillFirst,
}

/// Order in which decoding sessions of one model receive their decode slots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOrder {
    /// Oldest generation first (submission order) — the pre-rotation
    /// behaviour. Under `max_batch` pressure the newest generations wait
    /// behind every older one, potentially forever.
    Fcfs,
    /// Round-robin rotation: each batch starts with the oldest session
    /// strictly after the last one served (wrapping), so every decoding
    /// session is served within one rotation even when only a fraction fit
    /// a batch. Identical to [`DecodeOrder::Fcfs`] whenever all decoding
    /// sessions fit.
    #[default]
    RoundRobin,
}

/// Static scheduler configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum requests per micro-batch (decode slots plus prefill chunks).
    pub max_batch: usize,
    /// Maximum tokens per micro-batch: each decode slot costs one token, a
    /// prefill chunk costs its length.
    pub token_budget: usize,
    /// Maximum prompt tokens one request may prefill in a single micro-batch.
    pub prefill_chunk: usize,
    /// Prefill admission order.
    pub policy: SchedulingPolicy,
    /// Decode-slot order within a model.
    pub decode_order: DecodeOrder,
}

impl SchedulerConfig {
    /// Validates the caps.
    ///
    /// # Panics
    /// Panics if any cap is zero.
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be non-zero");
        assert!(self.token_budget > 0, "token_budget must be non-zero");
        assert!(self.prefill_chunk > 0, "prefill_chunk must be non-zero");
    }
}

impl Default for SchedulerConfig {
    /// Sixteen requests, a 2048-token budget, 512-token prefill chunks, FCFS
    /// prefill admission, round-robin decode slots.
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 16,
            token_budget: 2048,
            prefill_chunk: 512,
            policy: SchedulingPolicy::Fcfs,
            decode_order: DecodeOrder::RoundRobin,
        }
    }
}

/// Which phases a micro-batch formation may schedule: colocated nodes run
/// both, a disaggregated mesh routes each phase to its own pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseFilter {
    /// Decode slots first, then prefill chunks (every colocated policy).
    #[default]
    Both,
    /// Prefill chunks only (a disaggregated prefill node).
    PrefillOnly,
    /// Decode slots only (a disaggregated decode node).
    DecodeOnly,
}

impl PhaseFilter {
    /// Whether decode slots may be scheduled.
    fn decode(self) -> bool {
        !matches!(self, PhaseFilter::PrefillOnly)
    }

    /// Whether prefill chunks may be scheduled.
    fn prefill(self) -> bool {
        !matches!(self, PhaseFilter::DecodeOnly)
    }
}

/// One request's share of a micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchItem {
    /// The session the work belongs to.
    pub id: RequestId,
    /// Prefill chunk or decode slot.
    pub phase: Phase,
    /// Tokens this item processes (chunk length for prefill, 1 for decode).
    pub tokens: usize,
    /// KV-cache entries the item attends to after this step (cached prefix
    /// plus the chunk for prefill; current cache length for decode).
    pub context_len: usize,
}

/// One session paged out of a decode pool over the NoC while a micro-batch
/// was being formed (swap-style preemption). The executor charges the
/// transfer energy for `bytes` and stalls the batch while the pages stream
/// out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapOut {
    /// The paged-out session.
    pub id: RequestId,
    /// The prefill pool (node) the pages landed on; the executor stalls its
    /// receive path while the transfer streams.
    pub to_pool: usize,
    /// KV pages moved to the prefill pool.
    pub pages: usize,
    /// KV-cache bytes shipped over the NoC.
    pub bytes: u64,
}

/// A scheduled micro-batch: work for one model, one step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroBatch {
    /// The model every item runs on.
    pub model: ModelId,
    /// The scheduled items (decode slots first, then prefill chunks).
    pub items: Vec<BatchItem>,
    /// KV pages evicted (sessions recompute-preempted) to make room for this
    /// batch; always zero under an unbounded pool. The executor charges
    /// page-fault stall cycles per evicted page.
    pub evicted_pages: usize,
    /// Sessions paged out over the NoC to make room for this batch
    /// (swap-style preemption); empty except on a disaggregated decode pool
    /// under [`PreemptionMode::Swap`]. The executor charges the transfer
    /// energy and latency.
    pub swapped_out: Vec<SwapOut>,
}

impl MicroBatch {
    /// Total tokens across all items (bounded by the scheduler's budget).
    pub fn total_tokens(&self) -> usize {
        self.items.iter().map(|i| i.tokens).sum()
    }

    /// Number of decode slots.
    pub fn decode_slots(&self) -> usize {
        self.items.iter().filter(|i| i.phase == Phase::Decode).count()
    }

    /// Converts the batch into workload slices for
    /// [`OpTrace::generate_mixed`](mugi_workloads::ops::OpTrace::generate_mixed).
    ///
    /// Decode slots are grouped by their context length rounded up to
    /// `kv_bucket` (the paged-KV page-granularity view of the cache), which
    /// keeps the number of distinct trace shapes — and therefore the size of
    /// the accelerator's trace cache — small. Prefill chunks become one
    /// slice each, with the attended KV length bucketed the same way.
    ///
    /// The rounding is [`pages_for`]`(len) * kv_bucket` — the same page
    /// count the KV pool charges the session — so a zero-context decode
    /// occupies exactly one page (`kv_bucket` entries), never more: the page
    /// count saturates at one *before* multiplying by the page size, pinning
    /// the `context_len == 0` boundary to the `1..=kv_bucket` bucket.
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn slices(&self, kv_bucket: usize) -> Vec<BatchSlice> {
        let mut slices = Vec::new();
        self.slices_into(kv_bucket, &mut slices);
        slices
    }

    /// [`slices`](Self::slices), writing into a caller-owned buffer so the
    /// executor's per-step estimate reuses one allocation for the whole run.
    /// `out` is cleared first; the slice list produced is identical to
    /// [`slices`](Self::slices).
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn slices_into(&self, kv_bucket: usize, out: &mut Vec<BatchSlice>) {
        assert!(kv_bucket > 0, "kv_bucket must be non-zero");
        out.clear();
        let bucket = |len: usize| pages_for(len, kv_bucket) * kv_bucket;
        // Group decode slots by bucketed context length, maintained as a
        // sorted prefix of `out` (ascending context), so equal batches always
        // produce identical slice lists.
        for item in self.items.iter().filter(|i| i.phase == Phase::Decode) {
            let ctx = bucket(item.context_len);
            match out.binary_search_by_key(&ctx, |s| s.kv_len) {
                Ok(pos) => out[pos].batch += 1,
                Err(pos) => out.insert(pos, BatchSlice::decode(1, ctx)),
            }
        }
        for item in self.items.iter().filter(|i| i.phase == Phase::Prefill) {
            out.push(BatchSlice::prefill(1, item.tokens).with_kv_len(bucket(item.context_len)));
        }
    }
}

/// Per-model queues of *released* (arrived) unfinished sessions. Keeping
/// membership incremental means each scheduling decision touches only the
/// model's in-flight sessions, not every session ever submitted.
#[derive(Clone, Debug)]
struct ModelQueue {
    model: ModelId,
    /// Sessions still prefilling, sorted by id (submission order = FCFS).
    waiting: Vec<RequestId>,
    /// Sessions decoding, sorted by id (oldest generation first).
    decoding: Vec<RequestId>,
    /// Serve-counter value when this model last headed a micro-batch
    /// (0 = never served). The scheduler picks the least-recently-served
    /// runnable model, which is starvation-free even as the runnable set
    /// grows and shrinks between calls.
    last_served: u64,
    /// Last session granted a decode slot *per KV pool*, driving the
    /// [`DecodeOrder::RoundRobin`] rotation: the next batch formed for that
    /// pool starts with the oldest eligible session strictly after the
    /// cursor (wrapping). The cursor must be per-pool — sessions are pinned
    /// to the pool holding their pages, so a cursor shared across pools
    /// would let interleaved per-pool formations rotate past another pool's
    /// sessions and starve them. A dense pool-indexed vector (grown lazily
    /// to the highest pool that formed a decode batch) so the per-formation
    /// cursor probe is one bounds-checked load, with no tree walk and no
    /// hasher state that could ever leak into iteration order.
    last_decode: Vec<Option<RequestId>>,
}

impl ModelQueue {
    fn new(model: ModelId) -> Self {
        ModelQueue {
            model,
            waiting: Vec::new(),
            decoding: Vec::new(),
            last_served: 0,
            last_decode: Vec::new(),
        }
    }
}

/// Inserts `id` into a vec kept sorted ascending, ignoring duplicates.
fn sorted_insert(ids: &mut Vec<RequestId>, id: RequestId) {
    if let Err(pos) = ids.binary_search(&id) {
        ids.insert(pos, id);
    }
}

/// Removes `id` from a sorted vec if present.
fn sorted_remove(ids: &mut Vec<RequestId>, id: RequestId) {
    if let Ok(pos) = ids.binary_search(&id) {
        ids.remove(pos);
    }
}

/// The continuous-batching scheduler.
#[derive(Clone, Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    kv: KvConfig,
    /// Physical KV pools, empty under an unbounded [`KvConfig`]. One pool
    /// per data-parallel node, or a single aggregate pool under sharded
    /// placement (see [`Scheduler::configure_kv_pools`]).
    pools: Vec<KvPool>,
    /// Scheduling role of each pool (parallel to `pools`): all
    /// [`PoolRole::Colocated`] except under disaggregated placement.
    pool_roles: Vec<PoolRole>,
    /// Sessions not yet retired, in a flat arena keyed by dense ids: session
    /// `id` lives at live index `id - sessions.retired_count()`. Retirement
    /// (always zero retired unless the executor opts in) advances the
    /// arena's head in amortized O(1) instead of shifting a vector.
    sessions: SessionArena,
    /// Per-model queues of released unfinished sessions, in first-submission
    /// order of their models.
    queues: Vec<ModelQueue>,
    /// `(arrival_cycle, id)` of submitted sessions not yet released into the
    /// queues, sorted ascending by arrival: in-order submissions (the normal
    /// case) append in O(1) and each release pops from the front.
    future: VecDeque<(u64, RequestId)>,
    /// Sessions inside an emitted-but-not-yet-completed micro-batch. A
    /// multi-node executor overlaps several micro-batches; their sessions
    /// must not be scheduled twice. Membership lives on the sessions
    /// themselves ([`Session::in_flight`] in the arena); this counter only
    /// answers [`Scheduler::in_flight_count`] in O(1).
    in_flight_count: usize,
    /// Incremental prefill-backlog ledger: `(arrival_cycle, id) →
    /// remaining_prefill` for every session that still owes prefill tokens.
    /// Maintained *only when an [`SloConfig`] is set* — it exists to answer
    /// the SLO admission check's "how much prefill was queued at this
    /// arrival?" from a suffix range instead of a live-session scan (see
    /// [`Scheduler::prefill_backlog_at`]), and without an SLO nothing reads
    /// it, so the hot loop skips the per-chunk tree maintenance entirely.
    /// The three mutation sites — admission inserts the prompt, a completed
    /// prefill chunk debits it (removing the entry at zero), an eviction
    /// re-credits the recompute target — all gate on
    /// [`Scheduler::ledger_enabled`].
    pending_prefill: BTreeMap<(u64, RequestId), u64>,
    /// Prefill tokens still owed across every live session. Maintained
    /// unconditionally (two integer ops per event) whatever the ledger gate,
    /// so the control plane's demand split and the common in-order-arrival
    /// query (empty suffix) stay O(1).
    pending_prefill_total: u64,
    /// Output tokens promised but not yet emitted across every live session
    /// — the decode-side demand counter the control plane weighs against
    /// `pending_prefill_total`. Credited at admission, debited per emitted
    /// token; maintained unconditionally (two integer ops per event).
    pending_decode_tokens: u64,
    /// The online SLO calibrator, present only when the executor's control
    /// plane enabled calibration. While warming up (or absent) the
    /// admission check uses the configured static rate.
    calibrator: Option<SloCalibrator>,
    /// Pool being drained for a control-plane role flip: excluded as a
    /// swap-out target so new residents cannot trickle in while it empties.
    drain_pool: Option<usize>,
    /// Sessions that have finished (retired from the queues). `all_finished`
    /// is a counter comparison, not a scan.
    retired: usize,
    /// Monotone counter driving the least-recently-served model rotation.
    serve_counter: u64,
    /// Sessions evicted from a full KV pool so far.
    preempted: u64,
    /// KV entries dropped by evictions that must be prefilled again (the
    /// recompute cost of preemption, in tokens).
    reprefill_tokens: u64,
    /// Pages released by evictions (the executor charges fault stalls per
    /// page).
    evicted_pages: u64,
    /// Submissions rejected by admission control.
    rejected: u64,
    /// KV-page migrations between pools (prefill→decode handoffs plus
    /// swap-ins), driven by the executor via [`Scheduler::migrate_session`].
    migrations: u64,
    /// Pages moved by those migrations.
    migrated_pages: u64,
    /// Sessions paged out of a decode pool under swap-style preemption.
    swap_outs: u64,
    /// Pages moved by those swap-outs.
    swapped_pages: u64,
    /// Reusable model-ranking buffer for
    /// [`Scheduler::next_micro_batch_phased`], so steady-state formation
    /// allocates nothing.
    scratch_candidates: Vec<(u64, RequestId, usize)>,
    /// Reusable eligible-session buffer for [`Scheduler::try_form`] (filled
    /// for the decode pass, then refilled for the prefill pass).
    scratch_ids: Vec<RequestId>,
    /// Reusable eviction-candidate buffer for
    /// [`Scheduler::reserve_pages`]'s reclaim planning, so formations under
    /// KV pressure allocate nothing either.
    scratch_evict: Vec<RequestId>,
    /// Reusable committed-victim buffer for [`Scheduler::reserve_pages`].
    scratch_victims: Vec<RequestId>,
    /// Item vectors of retired micro-batches handed back via
    /// [`Scheduler::recycle`], reused by the next formation.
    spare_items: Vec<Vec<BatchItem>>,
}

/// Outcome of one KV-page migration ([`Scheduler::migrate_session`]): what
/// moved, so the executor can charge the NoC transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// Pages that changed pools (under an unbounded pool: the page
    /// equivalent of the session's KV length).
    pub pages: usize,
    /// KV-cache bytes shipped over the NoC.
    pub bytes: u64,
}

impl Scheduler {
    /// Creates an empty scheduler with an unbounded KV pool (no paging).
    ///
    /// # Panics
    /// Panics if any configured cap is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler::with_kv(config, KvConfig::default())
    }

    /// Creates an empty scheduler managing a paged KV cache. A bounded
    /// `kv` starts with a single pool of `kv.node_pages` pages; an executor
    /// repartitions it per placement via [`Scheduler::configure_kv_pools`].
    ///
    /// # Panics
    /// Panics if any configured cap is zero.
    pub fn with_kv(config: SchedulerConfig, kv: KvConfig) -> Self {
        config.validate();
        assert!(kv.page_tokens > 0, "page_tokens must be non-zero");
        let pools = match kv.node_pages {
            Some(pages) => vec![KvPool::bounded(pages)],
            None => Vec::new(),
        };
        let pool_roles = vec![PoolRole::Colocated; pools.len()];
        Scheduler {
            config,
            kv,
            pools,
            pool_roles,
            sessions: SessionArena::new(),
            queues: Vec::new(),
            future: VecDeque::new(),
            in_flight_count: 0,
            pending_prefill: BTreeMap::new(),
            pending_prefill_total: 0,
            pending_decode_tokens: 0,
            calibrator: None,
            drain_pool: None,
            retired: 0,
            serve_counter: 0,
            preempted: 0,
            reprefill_tokens: 0,
            evicted_pages: 0,
            rejected: 0,
            migrations: 0,
            migrated_pages: 0,
            swap_outs: 0,
            swapped_pages: 0,
            scratch_candidates: Vec::new(),
            scratch_ids: Vec::new(),
            scratch_evict: Vec::new(),
            scratch_victims: Vec::new(),
            spare_items: Vec::new(),
        }
    }

    /// Whether the per-arrival prefill ledger is maintained: only an
    /// [`SloConfig`] admission check ever reads it, so without one the hot
    /// loop skips the tree maintenance and
    /// [`Scheduler::prefill_backlog_at`] answers from a live-session scan.
    fn ledger_enabled(&self) -> bool {
        self.kv.slo.is_some()
    }

    /// Index of session `id` in the unretired window.
    ///
    /// # Panics
    /// Panics if the session was retired (or `id` was never issued).
    fn sidx(&self, id: RequestId) -> usize {
        usize_from_u64(id.0)
            .checked_sub(self.sessions.retired_count())
            .expect("session was retired from the scheduler")
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The KV-cache configuration the scheduler pages under.
    pub fn kv_config(&self) -> &KvConfig {
        &self.kv
    }

    /// Repartitions the bounded KV capacity into `pools` pools of
    /// `kv.node_pages * capacity_scale` pages each. The executor calls this
    /// at construction: one pool per node under data-parallel placement
    /// (`(nodes, 1)`), one aggregate pool under sharded placement
    /// (`(1, nodes)`, the KV being tiled across the mesh). No-op when the
    /// configuration is unbounded.
    ///
    /// # Panics
    /// Under a bounded configuration, panics if `pools` or `capacity_scale`
    /// is zero, or if any session already holds pages (pools cannot be
    /// repartitioned mid-run).
    pub fn configure_kv_pools(&mut self, pools: usize, capacity_scale: usize) {
        self.configure_kv_pools_with_roles(&vec![PoolRole::Colocated; pools], capacity_scale);
    }

    /// Like [`Scheduler::configure_kv_pools`], but assigns each pool a
    /// [`PoolRole`] — one pool per node, `roles[i]` being node `i`'s role. A
    /// disaggregated executor marks its prefill and decode pools here; every
    /// colocated policy passes all-`Colocated` roles (via
    /// [`Scheduler::configure_kv_pools`]) and behaves exactly as before.
    /// No-op when the configuration is unbounded (arguments are not even
    /// validated — there are no pools to configure).
    ///
    /// # Panics
    /// Under a bounded configuration, panics if `roles` is empty or
    /// `capacity_scale` is zero, or if any session already holds pages
    /// (pools cannot be repartitioned mid-run).
    pub fn configure_kv_pools_with_roles(&mut self, roles: &[PoolRole], capacity_scale: usize) {
        let Some(node_pages) = self.kv.node_pages else { return };
        assert!(!roles.is_empty(), "at least one KV pool is required");
        assert!(capacity_scale > 0, "capacity_scale must be non-zero");
        assert!(
            self.sessions.iter().all(|s| s.page_table.mapped_pages() == 0),
            "cannot repartition KV pools once pages are mapped"
        );
        self.pools = roles.iter().map(|_| KvPool::bounded(node_pages * capacity_scale)).collect();
        self.pool_roles = roles.to_vec();
    }

    /// The scheduling role of pool `pool` (`Colocated` under an unbounded
    /// configuration, where no pools exist).
    pub fn pool_role(&self, pool: usize) -> PoolRole {
        self.pool_roles.get(pool).copied().unwrap_or(PoolRole::Colocated)
    }

    /// Submits a request, returning its id. Submission order defines FCFS.
    ///
    /// # Panics
    /// Panics if admission control rejects the request (only possible with
    /// a bounded [`KvConfig`] or an [`SloConfig`] set); use
    /// [`Scheduler::try_submit`] to handle rejection as backpressure
    /// instead.
    pub fn submit(&mut self, request: Request) -> RequestId {
        self.try_submit(request)
            .unwrap_or_else(|e| panic!("request rejected: {e}; use try_submit to handle this"))
    }

    /// Submits a request unless admission control rejects it: the live
    /// session population is at [`KvConfig::max_live_sessions`] (backpressure
    /// — retry later), the projected TTFT exceeds a configured
    /// [`SloConfig`] target ([`AdmissionError::SloViolation`]), or the
    /// request alone could never fit *one node's*
    /// pool of [`KvConfig::node_pages`] pages (admitting it would deadlock
    /// that pool). The fit check deliberately uses the per-node capacity
    /// rather than the current pool partition, so acceptance does not depend
    /// on whether the request is submitted before or after an executor
    /// repartitions the pools (a sharded executor merges them into a larger
    /// aggregate, which only relaxes the true constraint). Rejections are
    /// counted in the runtime report.
    pub fn try_submit(&mut self, request: Request) -> Result<RequestId, AdmissionError> {
        if let Some(bound) = self.kv.max_live_sessions {
            let live = self.sessions.retired_count() + self.sessions.len() - self.retired;
            if live >= bound {
                self.rejected += 1;
                return Err(AdmissionError::QueueFull { live, bound });
            }
        }
        if let Some(capacity) = self.kv.node_pages {
            // Peak demand: the whole prompt plus every generated token.
            let needed =
                pages_for(request.prompt_tokens + request.output_tokens, self.kv.page_tokens);
            if needed > capacity {
                self.rejected += 1;
                return Err(AdmissionError::NeverFits {
                    needed_pages: needed,
                    capacity_pages: capacity,
                });
            }
        }
        if let Some(SloConfig { target_ttft_cycles, cycles_per_prefill_token }) = self.kv.slo {
            // Projected TTFT: the prefill backlog queued ahead of this
            // prompt *at its arrival* — sessions arriving later cannot delay
            // it, so a pre-submitted spread-arrival stream is not spuriously
            // rejected — plus the prompt itself, at the configured
            // service-rate estimate. Deliberately ignores decode
            // interference and drainage between now and the arrival — it is
            // a bound on *queued work*, not a simulation.
            let backlog = self.prefill_backlog_at(request.arrival_cycle);
            debug_assert_eq!(
                backlog,
                self.sessions
                    .iter()
                    .filter(|s| {
                        !s.is_finished() && s.request.arrival_cycle <= request.arrival_cycle
                    })
                    .map(|s| u64_from_usize(s.remaining_prefill()))
                    .sum::<u64>(),
                "incremental prefill ledger diverged from the live-session scan"
            );
            // The calibrated service rate replaces the configured guess
            // once the calibrator (if the control plane enabled one) has
            // warmed up. Calibrated rates are conservative by construction
            // (floored at the cumulative measured mean), so this can only
            // tighten admission relative to the true measured rate.
            let rate = self
                .calibrator
                .as_ref()
                .and_then(SloCalibrator::rate)
                .unwrap_or(cycles_per_prefill_token);
            let projected = (backlog + u64_from_usize(request.prompt_tokens)) * rate;
            if projected > target_ttft_cycles {
                self.rejected += 1;
                return Err(AdmissionError::SloViolation {
                    projected_cycles: projected,
                    target_cycles: target_ttft_cycles,
                });
            }
        }
        let id = RequestId(u64_from_usize(self.sessions.retired_count() + self.sessions.len()));
        self.sessions.push(Session::new(id, request));
        let arrival = request.arrival_cycle;
        let owed = u64_from_usize(request.prompt_tokens);
        if owed > 0 {
            if self.ledger_enabled() {
                self.pending_prefill.insert((arrival, id), owed);
            }
            self.pending_prefill_total += owed;
        }
        self.pending_decode_tokens += u64_from_usize(request.output_tokens);
        if self.future.back().is_none_or(|&(a, _)| a <= arrival) {
            self.future.push_back((arrival, id));
        } else {
            let pos = self.future.partition_point(|&(a, _)| a <= arrival);
            self.future.insert(pos, (arrival, id));
        }
        Ok(id)
    }

    /// All unretired sessions in submission order (every session ever
    /// submitted, unless the executor opted into incremental retirement).
    pub fn sessions(&self) -> &[Session] {
        self.sessions.live()
    }

    /// Number of ids retired from the front of the session window (zero
    /// without incremental retirement).
    pub fn retired_session_count(&self) -> usize {
        self.sessions.retired_count()
    }

    /// Total sessions ever submitted (retired or not).
    pub fn submitted_count(&self) -> usize {
        self.sessions.retired_count() + self.sessions.len()
    }

    /// High-water mark of the live (unretired) session population. Under
    /// incremental retirement this is what the scheduler's memory scales
    /// with, however long the request stream.
    pub fn peak_live_sessions(&self) -> usize {
        self.sessions.peak_live()
    }

    /// Looks up one session.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this scheduler or was retired.
    pub fn session(&self, id: RequestId) -> &Session {
        &self.sessions[self.sidx(id)]
    }

    /// Drops every *finished* session at the front of the session window,
    /// returning how many were dropped. The executor calls this after
    /// folding their statistics into its report, so `sessions` stops growing
    /// without bound on long request streams; ids keep working because only
    /// a contiguous finished prefix ever retires.
    pub fn retire_finished_prefix(&mut self) -> usize {
        let n = self.sessions.iter().take_while(|s| s.is_finished()).count();
        if n > 0 {
            self.sessions.retire_prefix(n);
        }
        n
    }

    /// Whether every submitted session has finished.
    pub fn all_finished(&self) -> bool {
        self.retired == self.sessions.retired_count() + self.sessions.len()
    }

    /// Number of finished sessions.
    pub fn finished_count(&self) -> usize {
        self.retired
    }

    /// Number of sessions currently inside an emitted-but-not-completed
    /// micro-batch.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight_count
    }

    /// Prefill tokens still owed by sessions that arrived at or before
    /// `arrival_cycle` — the backlog the SLO admission check charges a new
    /// arrival with. Under an [`SloConfig`] this is answered from the
    /// incremental ledger by subtracting the later-arrival suffix from the
    /// running total: O(log n + k) for k sessions arriving strictly later,
    /// and k = 0 — a pure O(log n) probe — for an arrival-ordered stream,
    /// the normal case. Bit-identical to the live-session scan it replaced
    /// (a `debug_assert` in [`Scheduler::try_submit`] pins the equivalence
    /// on every admission). Without an SLO the ledger is not maintained —
    /// nothing on the hot path reads it — so the query falls back to the
    /// live-session scan, same answer, O(live sessions).
    pub fn prefill_backlog_at(&self, arrival_cycle: u64) -> u64 {
        if !self.ledger_enabled() {
            return self
                .sessions
                .iter()
                .filter(|s| !s.is_finished() && s.request.arrival_cycle <= arrival_cycle)
                .map(|s| u64_from_usize(s.remaining_prefill()))
                .sum();
        }
        use std::ops::Bound;
        let later: u64 = self
            .pending_prefill
            .range((Bound::Excluded((arrival_cycle, RequestId(u64::MAX))), Bound::Unbounded))
            .map(|(_, &owed)| owed)
            .sum();
        self.pending_prefill_total - later
    }

    /// Total prefill tokens still owed across every live session, whatever
    /// their arrival cycle — the O(1) running sum of the incremental
    /// backlog ledger. The control plane reads this (together with
    /// [`Scheduler::pending_decode_tokens`]) to split nodes between roles by
    /// outstanding demand.
    pub fn pending_prefill_total(&self) -> u64 {
        self.pending_prefill_total
    }

    /// Output tokens promised but not yet emitted across every live session
    /// — the decode-side demand the control plane weighs against
    /// [`Scheduler::pending_prefill_total`] when re-rolling node roles.
    pub fn pending_decode_tokens(&self) -> u64 {
        self.pending_decode_tokens
    }

    /// Installs an online SLO calibrator (see
    /// [`SloCalibrator`]): once it has
    /// observed `warmup_tokens` prefill tokens, its measured rate replaces
    /// the configured [`SloConfig::cycles_per_prefill_token`] in the
    /// admission check. Called by the executor when the control plane's
    /// calibration is enabled; idempotent state-wise (re-enabling resets
    /// the calibrator).
    pub fn enable_slo_calibration(&mut self, warmup_tokens: u64, ewma_shift: u32) {
        self.calibrator = Some(SloCalibrator::new(warmup_tokens, ewma_shift));
    }

    /// Feeds the calibrator one completed micro-batch that served `tokens`
    /// prefill tokens in `cycles` cycles. No-op when calibration is off.
    pub fn observe_prefill_service(&mut self, tokens: u64, cycles: u64) {
        if let Some(c) = &mut self.calibrator {
            c.observe(tokens, cycles);
        }
    }

    /// The calibrated cycles-per-prefill-token estimate currently steering
    /// admission, or `None` when calibration is off or still warming up.
    pub fn calibrated_rate(&self) -> Option<u64> {
        self.calibrator.as_ref().and_then(SloCalibrator::rate)
    }

    /// Prefill slices the calibrator has observed (zero when calibration is
    /// off).
    pub fn calibration_samples(&self) -> u64 {
        self.calibrator.as_ref().map_or(0, SloCalibrator::samples)
    }

    /// Re-rolls pool `pool`'s scheduling role — the commit point of a
    /// control-plane quiescent handoff.
    ///
    /// # Panics
    /// Panics if the pool still holds pages: roles may only change on an
    /// empty pool (the executor drains it first).
    pub fn set_pool_role(&mut self, pool: usize, role: PoolRole) {
        assert_eq!(
            self.pools[pool].used_pages(),
            0,
            "a pool must be drained empty before its role changes"
        );
        self.pool_roles[pool] = role;
    }

    /// Marks `pool` as draining for a role flip (or clears the mark with
    /// `None`): a draining pool is never picked as a swap-out target, so no
    /// new residents trickle in while the executor empties it.
    pub fn set_drain_pool(&mut self, pool: Option<usize>) {
        self.drain_pool = pool;
    }

    /// Pages currently mapped in pool `pool` (zero under an unbounded
    /// configuration, where no pools exist).
    pub fn kv_pool_used_pages(&self, pool: usize) -> usize {
        self.pools.get(pool).map_or(0, KvPool::used_pages)
    }

    /// Projected decode load of pool `pool`: the remaining output tokens of
    /// its resident decoding sessions — exactly the KV growth still to be
    /// written there. A lazy O(decoding residents) scan, taken only at
    /// migration-target selection under the control plane's load-aware
    /// placement.
    pub fn pool_decode_load(&self, pool: usize) -> u64 {
        self.queues
            .iter()
            .flat_map(|q| q.decoding.iter())
            .map(|&id| &self.sessions[self.sidx(id)])
            .filter(|s| s.page_table.home() == Some(pool))
            .map(|s| u64_from_usize(s.request.output_tokens - s.generated_tokens))
            .sum()
    }

    /// Recompute-preempts every resident of pool `pool` that can legally be
    /// dropped — not finished, not decoding (those migrate out instead, KV
    /// intact) and not inside an in-flight batch — returning the pages
    /// released. The executor's drain sweep calls this until the pool
    /// empties; preemption counters and the prefill ledger are maintained
    /// exactly as for capacity evictions.
    pub fn preempt_pool_residents(&mut self, pool: usize) -> u64 {
        let victims: Vec<RequestId> = self
            .queues
            .iter()
            .flat_map(|q| q.waiting.iter())
            .copied()
            .filter(|&v| {
                let s = &self.sessions[self.sidx(v)];
                s.page_table.home() == Some(pool)
                    && s.state != SessionState::Decoding
                    && !s.in_flight
            })
            .collect();
        let mut released_total = 0u64;
        for victim in victims {
            let vi = self.sidx(victim);
            let s = &mut self.sessions[vi];
            let lost_tokens = u64_from_usize(s.kv_len());
            let mut table = std::mem::take(&mut s.page_table);
            let released = table.release_all(&mut self.pools[pool]);
            let prev_owed = u64_from_usize(s.remaining_prefill());
            s.preempt();
            let owed = u64_from_usize(s.remaining_prefill());
            if self.kv.slo.is_some() {
                self.pending_prefill.insert((s.request.arrival_cycle, victim), owed);
            }
            self.pending_prefill_total = self.pending_prefill_total - prev_owed + owed;
            self.preempted += 1;
            self.reprefill_tokens += lost_tokens;
            released_total += u64_from_usize(released);
        }
        self.evicted_pages += released_total;
        released_total
    }

    /// Number of KV pools (zero under an unbounded configuration).
    pub fn kv_pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Free-page headroom of pool `pool`: [`KvFreePages::Unbounded`] under
    /// an unbounded configuration, the bounded free count otherwise.
    ///
    /// # Panics
    /// Panics when pools are bounded and `pool` is out of range — an
    /// indexing bug must fail loudly, not read as infinite headroom and win
    /// every placement decision.
    pub fn kv_free_pages(&self, pool: usize) -> KvFreePages {
        if self.pools.is_empty() {
            return KvFreePages::Unbounded;
        }
        assert!(
            pool < self.pools.len(),
            "pool index {pool} out of range for {} bounded pools",
            self.pools.len()
        );
        KvFreePages::Pages(self.pools[pool].free_pages())
    }

    /// Total page capacity across all pools (`None` = unbounded).
    pub fn kv_capacity_pages(&self) -> Option<u64> {
        if self.pools.is_empty() {
            None
        } else {
            Some(self.pools.iter().map(|p| p.capacity() as u64).sum())
        }
    }

    /// Pages currently mapped across all pools.
    pub fn kv_used_pages(&self) -> u64 {
        self.pools.iter().map(|p| u64_from_usize(p.used_pages())).sum()
    }

    /// High-water mark of mapped pages, summed across pools.
    pub fn kv_peak_used_pages(&self) -> u64 {
        self.pools.iter().map(|p| u64_from_usize(p.peak_used_pages())).sum()
    }

    /// Sessions evicted from a full KV pool so far.
    pub fn preemption_count(&self) -> u64 {
        self.preempted
    }

    /// KV entries dropped by evictions that had to be prefilled again.
    pub fn reprefill_token_count(&self) -> u64 {
        self.reprefill_tokens
    }

    /// Pages released by evictions so far.
    pub fn evicted_page_count(&self) -> u64 {
        self.evicted_pages
    }

    /// Submissions rejected by admission control so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// KV-page migrations between pools so far (prefill→decode handoffs plus
    /// swap-ins).
    pub fn migration_count(&self) -> u64 {
        self.migrations
    }

    /// Pages moved by migrations so far.
    pub fn migrated_page_count(&self) -> u64 {
        self.migrated_pages
    }

    /// Sessions paged out of a decode pool (swap-style preemption) so far.
    pub fn swap_out_count(&self) -> u64 {
        self.swap_outs
    }

    /// Pages moved by swap-outs so far.
    pub fn swapped_page_count(&self) -> u64 {
        self.swapped_pages
    }

    /// Earliest cycle strictly after `now` at which an unfinished session
    /// becomes schedulable: a future arrival, or the `ready_cycle` a session
    /// was stamped with when its latest micro-batch completed. The executor
    /// jumps an idle node's clock there when nothing is runnable yet.
    /// Sessions inside a dispatched-but-uncompleted batch are *not* visible
    /// here — their next ready time is only known once
    /// [`Scheduler::complete`] runs, so an executor must drain pending
    /// completions before relying on this.
    pub fn next_arrival_after(&self, now: u64) -> Option<u64> {
        // Unreleased sessions become ready at their arrival. `future` is
        // sorted ascending, so scan from the front (smallest arrival) past
        // any entries at or before `now`.
        let pending =
            self.future.iter().map(|&(arrival, _)| arrival).find(|&arrival| arrival > now);
        // Released sessions become ready at their `ready_cycle`; the queues
        // hold only unfinished sessions, so this scan is in-flight-sized.
        let queued = self
            .queues
            .iter()
            .flat_map(|q| q.waiting.iter().chain(q.decoding.iter()))
            .map(|&id| self.sessions[self.sidx(id)].ready_cycle)
            .filter(|&ready| ready > now)
            .min();
        match (pending, queued) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Moves every submitted session whose arrival is at or before `now`
    /// into its model queue.
    fn release_arrivals(&mut self, now: u64) {
        while let Some(&(arrival, id)) = self.future.front() {
            if arrival > now {
                break;
            }
            self.future.pop_front();
            let model = self.sessions[self.sidx(id)].request.model;
            let queue = match self.queues.iter_mut().find(|q| q.model == model) {
                Some(queue) => queue,
                None => {
                    self.queues.push(ModelQueue::new(model));
                    self.queues.last_mut().expect("queue just pushed")
                }
            };
            sorted_insert(&mut queue.waiting, id);
        }
    }

    /// Whether `id` may be scheduled at `now`.
    fn schedulable(&self, id: RequestId, now: u64) -> bool {
        let s = &self.sessions[self.sidx(id)];
        !s.in_flight && s.is_runnable(now)
    }

    /// Whether `id` may be scheduled at `now` out of KV pool `pool`: it must
    /// be schedulable and — under a bounded configuration — either homeless
    /// (fresh admission) or already homed to `pool`.
    fn eligible_on(&self, id: RequestId, now: u64, pool: usize) -> bool {
        self.schedulable(id, now)
            && (self.pools.is_empty()
                || self.sessions[self.sidx(id)].page_table.admissible_on(pool))
    }

    /// Assembles the next micro-batch at simulated cycle `now` against KV
    /// pool 0 — the single-node / sharded view. A data-parallel multi-node
    /// executor uses [`Scheduler::next_micro_batch_on`] with the target
    /// node's pool instead. Returns `None` when no session has runnable
    /// work (all finished, everything runnable already in flight, blocked on
    /// KV pages, or only future arrivals remain).
    pub fn next_micro_batch(&mut self, now: u64) -> Option<MicroBatch> {
        self.next_micro_batch_on(now, 0)
    }

    /// Assembles the next micro-batch at simulated cycle `now` for the node
    /// whose KV lives in pool `pool`. Scheduled sessions are marked in
    /// flight until [`Scheduler::complete`] is called for the batch, so
    /// overlapping micro-batches on different nodes never share a session.
    ///
    /// Under a bounded [`KvConfig`] the formation is a paging transaction:
    /// decode growth and prefill chunks allocate pages from `pool`,
    /// preempting most-recently-admitted page holders when it runs dry (see
    /// the module docs). Models whose eligible sessions are all blocked on
    /// pages are skipped in favour of the next least-recently-served one.
    pub fn next_micro_batch_on(&mut self, now: u64, pool: usize) -> Option<MicroBatch> {
        self.next_micro_batch_phased(now, pool, PhaseFilter::Both)
    }

    /// Like [`Scheduler::next_micro_batch_on`], but restricted to `phase`:
    /// a disaggregated executor forms [`PhaseFilter::PrefillOnly`] batches
    /// on prefill nodes and [`PhaseFilter::DecodeOnly`] batches on decode
    /// nodes. [`PhaseFilter::Both`] is the colocated behaviour and is
    /// exactly what [`Scheduler::next_micro_batch_on`] delegates to.
    pub fn next_micro_batch_phased(
        &mut self,
        now: u64,
        pool: usize,
        phase: PhaseFilter,
    ) -> Option<MicroBatch> {
        self.release_arrivals(now);
        // Single-model fast path: with one queue there is nothing to rank,
        // and `try_form` re-checks eligibility itself (an attempt with no
        // eligible session forms nothing and changes nothing observable),
        // so the candidate pass below would only duplicate its scans.
        if self.queues.len() == 1 {
            return self.form_from(now, pool, 0, phase);
        }
        // Rank models by least-recently-served; ties (e.g. never-served
        // models) go to the oldest eligible session. Tracking actual service
        // instead of an index into the ever-shifting runnable set means a
        // model that stays runnable is served within one rotation, whatever
        // joins or leaves in between. Under KV pressure a model may have
        // eligible-but-unformable work (everything blocked on pages), so the
        // ranking is a preference order, not a single pick.
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        candidates.extend(self.queues.iter().enumerate().filter_map(|(qi, q)| {
            // Each queue is sorted ascending, so the oldest eligible session
            // is the *first* eligible one per queue — `find` short-circuits
            // there, instead of probing eligibility across the whole
            // decode/waiting population like the old chained `min` did. In
            // steady state (front of each queue runnable) this is O(1) per
            // queue.
            let dec = if phase.decode() {
                q.decoding.iter().copied().find(|&id| self.eligible_on(id, now, pool))
            } else {
                None
            };
            let wait = if phase.prefill() {
                q.waiting.iter().copied().find(|&id| self.eligible_on(id, now, pool))
            } else {
                None
            };
            let oldest = match (dec, wait) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            oldest.map(|oldest| (q.last_served, oldest, qi))
        }));
        candidates.sort();
        let mut formed = None;
        for &(_, _, qi) in &candidates {
            formed = self.form_from(now, pool, qi, phase);
            if formed.is_some() {
                break;
            }
        }
        self.scratch_candidates = candidates;
        formed
    }

    /// One formation attempt against queue `qi`: on success, bumps the
    /// serve rotation and marks every scheduled session in flight.
    fn form_from(
        &mut self,
        now: u64,
        pool: usize,
        qi: usize,
        phase: PhaseFilter,
    ) -> Option<MicroBatch> {
        let (items, evicted_pages, swapped_out) = self.try_form(now, pool, qi, phase);
        if items.is_empty() {
            return None;
        }
        self.serve_counter += 1;
        self.queues[qi].last_served = self.serve_counter;
        for item in &items {
            let i = self.sidx(item.id);
            self.sessions[i].in_flight = true;
        }
        self.in_flight_count += items.len();
        Some(MicroBatch { model: self.queues[qi].model, items, evicted_pages, swapped_out })
    }

    /// Tries to form a micro-batch for the model of queue `qi` out of KV
    /// pool `pool`, restricted to `phase`, returning the items, the pages
    /// evicted to make room and the sessions swapped out over the NoC
    /// (empty items = everything eligible is blocked on pages).
    fn try_form(
        &mut self,
        now: u64,
        pool: usize,
        qi: usize,
        phase: PhaseFilter,
    ) -> (Vec<BatchItem>, usize, Vec<SwapOut>) {
        let SchedulerConfig { max_batch, token_budget, prefill_chunk, policy, decode_order } =
            self.config;
        let KvConfig { page_tokens, .. } = self.kv;
        let paged = !self.pools.is_empty();
        // Batch membership ("in_batch") is a linear scan over `items` — at
        // most `max_batch` entries — instead of a freshly allocated hash
        // set; the items vector itself comes from the recycle free list.
        let mut items: Vec<BatchItem> = self.spare_items.pop().unwrap_or_default();
        items.clear();
        let mut tokens = 0usize;
        let mut evicted_pages = 0usize;
        let mut swapped_out: Vec<SwapOut> = Vec::new();

        // 1. Decode slots for every in-flight generation — oldest first, or
        // rotated round-robin after the last session served. A slot needs
        // the session's table to cover one more KV entry; when the pool is
        // short the session preempts strictly-younger page holders, and a
        // session that cannot reclaim enough simply skips this step (the
        // oldest session can always reclaim, so no one starves).
        if phase.decode() {
            let mut decoding = std::mem::take(&mut self.scratch_ids);
            decoding.clear();
            decoding.extend(
                self.queues[qi]
                    .decoding
                    .iter()
                    .copied()
                    .filter(|&id| self.eligible_on(id, now, pool)),
            );
            if decode_order == DecodeOrder::RoundRobin && !decoding.is_empty() {
                if let Some(last) = self.queues[qi].last_decode.get(pool).copied().flatten() {
                    // Start with the oldest session strictly after the last
                    // one served; `split == len` wraps to the front, which
                    // makes the rotation identical to FCFS whenever every
                    // decoding session was served last time.
                    let split = decoding.partition_point(|&id| id <= last);
                    if split < decoding.len() {
                        decoding.rotate_left(split);
                    }
                }
            }
            let mut last_granted = None;
            for k in 0..decoding.len() {
                let id = decoding[k];
                if items.len() >= max_batch || tokens >= token_budget {
                    break;
                }
                let s = &self.sessions[self.sidx(id)];
                if s.state != SessionState::Decoding {
                    continue; // recompute-evicted earlier in this very formation
                }
                if paged && !s.page_table.admissible_on(pool) {
                    continue; // swapped out earlier in this very formation
                }
                let context_len = s.kv_len();
                if paged {
                    let need = pages_for(context_len + 1, page_tokens);
                    if !self.reserve_pages(
                        pool,
                        id,
                        need,
                        &items,
                        &mut evicted_pages,
                        &mut swapped_out,
                    ) {
                        continue;
                    }
                }
                items.push(BatchItem { id, phase: Phase::Decode, tokens: 1, context_len });
                last_granted = Some(id);
                tokens += 1;
            }
            self.scratch_ids = decoding;
            if let Some(last) = last_granted {
                let cursors = &mut self.queues[qi].last_decode;
                if cursors.len() <= pool {
                    cursors.resize(pool + 1, None);
                }
                cursors[pool] = Some(last);
            }
        }

        // 2. Prefill chunks with the remaining budget, in policy order. A
        // chunk from a page-holding session (sunk recompute cost) may
        // preempt like a decode slot; a fresh admission defers instead when
        // free pages fall short of its projected need — and defers the rest
        // of the queue with it, so admission keeps strict policy order.
        if phase.prefill() {
            let mut waiting = std::mem::take(&mut self.scratch_ids);
            waiting.clear();
            waiting.extend(
                self.queues[qi]
                    .waiting
                    .iter()
                    .copied()
                    .filter(|&id| self.eligible_on(id, now, pool)),
            );
            if policy == SchedulingPolicy::ShortestPrefillFirst {
                waiting.sort_by_key(|&id| (self.sessions[self.sidx(id)].remaining_prefill(), id));
            }
            for k in 0..waiting.len() {
                let id = waiting[k];
                if items.len() >= max_batch || tokens >= token_budget {
                    break;
                }
                if items.iter().any(|it| it.id == id) {
                    continue;
                }
                let s = &self.sessions[self.sidx(id)];
                let room = token_budget - tokens;
                let chunk = s.remaining_prefill().min(prefill_chunk).min(room);
                let context_len = s.prefilled_tokens + chunk;
                if paged {
                    // The chunk that completes the prefill also emits the
                    // first output token, whose KV entry lands in the same
                    // table.
                    let completes = chunk == s.remaining_prefill();
                    let emits = completes && s.first_token_cycle.is_none();
                    let need = pages_for(context_len + usize::from(emits), page_tokens);
                    if s.page_table.mapped_pages() == 0 {
                        // Fresh admission: defer (never preempt) when free
                        // pages fall short of the projected need.
                        if self.pools[pool].free_pages() < need {
                            break;
                        }
                        let i = self.sidx(id);
                        let grown =
                            self.sessions[i].page_table.grow(pool, &mut self.pools[pool], need);
                        debug_assert!(grown, "free pages were just checked");
                    } else if !self.reserve_pages(
                        pool,
                        id,
                        need,
                        &items,
                        &mut evicted_pages,
                        &mut swapped_out,
                    ) {
                        break;
                    }
                }
                items.push(BatchItem { id, phase: Phase::Prefill, tokens: chunk, context_len });
                tokens += chunk;
            }
            self.scratch_ids = waiting;
        }

        debug_assert!(tokens <= token_budget, "token budget exceeded");
        self.evicted_pages += evicted_pages as u64;
        if items.is_empty() {
            // Nothing formed: hand the (possibly warm) vector straight back
            // to the free list instead of dropping its capacity.
            self.spare_items.push(items);
            return (Vec::new(), evicted_pages, swapped_out);
        }
        (items, evicted_pages, swapped_out)
    }

    /// Grows `id`'s page table to `need` pages out of `pool`, preempting
    /// strictly-younger page holders (most recently admitted first) when the
    /// free list is short. Returns `false` — with nothing evicted and
    /// nothing allocated — if even evicting every eligible victim would not
    /// free enough pages. Victims are planned first and only then committed,
    /// so a failed reclaim has no side effects.
    ///
    /// Under [`PreemptionMode::Swap`] on a [`PoolRole::Decode`] pool each
    /// victim is paged *out* over the NoC into the prefill pool with the
    /// most free pages instead of dropping its cache: the session keeps its
    /// KV (no recompute debt) and is paged back in by the executor's
    /// migration path once the decode pool has room again. A victim no
    /// prefill pool can hold falls back to a recompute eviction.
    fn reserve_pages(
        &mut self,
        pool: usize,
        id: RequestId,
        need: usize,
        in_batch: &[BatchItem],
        evicted_pages: &mut usize,
        swapped_out: &mut Vec<SwapOut>,
    ) -> bool {
        let growth = need.saturating_sub(self.sessions[self.sidx(id)].page_table.mapped_pages());
        if growth == 0 {
            return true;
        }
        let mut reclaimable = self.pools[pool].free_pages();
        let mut victims = std::mem::take(&mut self.scratch_victims);
        victims.clear();
        if reclaimable < growth {
            // Most-recently-admitted first: the newest page holders pay,
            // which keeps the oldest session unpreemptable (liveness). Only
            // sessions strictly younger than the requester, not in flight
            // and not already in the forming batch may be evicted. Every
            // page holder is an unfinished, released session, so the model
            // queues enumerate exactly the candidate set — an
            // in-flight-sized scan, not one over every session ever
            // submitted.
            let mut candidates = std::mem::take(&mut self.scratch_evict);
            candidates.clear();
            candidates.extend(
                self.queues
                    .iter()
                    .flat_map(|q| q.waiting.iter().chain(q.decoding.iter()))
                    .copied()
                    .filter(|&v| {
                        let s = &self.sessions[self.sidx(v)];
                        s.page_table.home() == Some(pool)
                            && v > id
                            && !s.in_flight
                            && !in_batch.iter().any(|it| it.id == v)
                    }),
            );
            candidates.sort_unstable_by(|a, b| b.cmp(a));
            for &victim in &candidates {
                if reclaimable >= growth {
                    break;
                }
                reclaimable += self.sessions[self.sidx(victim)].page_table.mapped_pages();
                victims.push(victim);
            }
            self.scratch_evict = candidates;
            if reclaimable < growth {
                victims.clear();
                self.scratch_victims = victims;
                return false;
            }
        }
        let swap_eligible =
            self.kv.preemption == PreemptionMode::Swap && self.pool_role(pool) == PoolRole::Decode;
        for k in 0..victims.len() {
            let victim = victims[k];
            let vi = self.sidx(victim);
            let victim_pages = self.sessions[vi].page_table.mapped_pages();
            let swap_target = if swap_eligible && self.sessions[vi].state == SessionState::Decoding
            {
                self.swap_target(victim_pages)
            } else {
                None
            };
            if let Some(dst) = swap_target {
                // Swap-out: page the victim's KV over the NoC into a prefill
                // pool. It stays in the decoding queue with its cache intact
                // and swaps back in through the executor's migration path.
                let mut table = std::mem::take(&mut self.sessions[vi].page_table);
                let (from, to) = self.pool_pair_mut(pool, dst);
                let moved = table.migrate(from, dst, to).expect("free pages were just checked");
                let s = &mut self.sessions[vi];
                s.page_table = table;
                s.swap_outs += 1;
                let bytes = s.request.model.config().kv_cache_bytes(s.kv_len(), KV_BITS);
                self.swap_outs += 1;
                self.swapped_pages += u64_from_usize(moved);
                swapped_out.push(SwapOut { id: victim, to_pool: dst, pages: moved, bytes });
            } else {
                let s = &mut self.sessions[vi];
                let lost_tokens = u64_from_usize(s.kv_len());
                let mut table = std::mem::take(&mut s.page_table);
                let released = table.release_all(&mut self.pools[pool]);
                let prev_owed = u64_from_usize(s.remaining_prefill());
                s.preempt();
                // Re-credit the recompute debt: the eviction reset the
                // session's prefill target to prompt + generated, so the
                // ledger entry (absent when the victim had fully prefilled)
                // is replaced wholesale rather than adjusted.
                let owed = u64_from_usize(s.remaining_prefill());
                if self.kv.slo.is_some() {
                    self.pending_prefill.insert((s.request.arrival_cycle, victim), owed);
                }
                self.pending_prefill_total = self.pending_prefill_total - prev_owed + owed;
                let model = s.request.model;
                let queue = self
                    .queues
                    .iter_mut()
                    .find(|q| q.model == model)
                    .expect("page holders live in a model queue");
                sorted_remove(&mut queue.decoding, victim);
                sorted_insert(&mut queue.waiting, victim);
                self.preempted += 1;
                self.reprefill_tokens += lost_tokens;
                *evicted_pages += released;
            }
        }
        victims.clear();
        self.scratch_victims = victims;
        let i = self.sidx(id);
        let grown = self.sessions[i].page_table.grow(pool, &mut self.pools[pool], need);
        debug_assert!(grown, "reclaim guaranteed the free pages");
        true
    }

    /// The prefill pool with the most free pages that can hold `pages`
    /// (ties to the lowest index), or `None` if no prefill pool has room.
    /// A pool draining for a control-plane role flip never qualifies.
    fn swap_target(&self, pages: usize) -> Option<usize> {
        self.pool_roles
            .iter()
            .enumerate()
            .filter(|&(i, role)| {
                *role == PoolRole::Prefill
                    && Some(i) != self.drain_pool
                    && self.pools[i].free_pages() >= pages
            })
            .max_by_key(|&(i, _)| (self.pools[i].free_pages(), std::cmp::Reverse(i)))
            .map(|(i, _)| i)
    }

    /// Mutable references to two distinct pools.
    fn pool_pair_mut(&mut self, a: usize, b: usize) -> (&mut KvPool, &mut KvPool) {
        assert_ne!(a, b, "a pool pair needs two distinct pools");
        if a < b {
            let (left, right) = self.pools.split_at_mut(b);
            (&mut left[a], &mut right[0])
        } else {
            let (left, right) = self.pools.split_at_mut(a);
            (&mut right[0], &mut left[b])
        }
    }

    /// Migrates session `id`'s KV pages into pool `to_pool` — the
    /// prefill→decode handoff (or swap-in) of disaggregated serving, driven
    /// by the executor, which charges the NoC transfer energy and latency
    /// for the returned byte count. Under an unbounded configuration no
    /// physical pages exist, so the call only computes the transfer size
    /// (`to_pool` is ignored) and counts the migration.
    ///
    /// Returns `None` — nothing moved — when `to_pool` lacks the free pages;
    /// the executor retries after the next completion frees some.
    ///
    /// # Panics
    /// Panics if the session is finished, holds no pages while a bounded
    /// pool is configured, or is already homed on `to_pool`.
    pub fn migrate_session(&mut self, id: RequestId, to_pool: usize) -> Option<Migration> {
        let i = self.sidx(id);
        assert!(!self.sessions[i].is_finished(), "finished sessions have no KV to migrate");
        if self.pools.is_empty() {
            let s = &mut self.sessions[i];
            let pages = pages_for(s.kv_len(), self.kv.page_tokens);
            let bytes = s.request.model.config().kv_cache_bytes(s.kv_len(), KV_BITS);
            s.migrations += 1;
            self.migrations += 1;
            self.migrated_pages += pages as u64;
            return Some(Migration { pages, bytes });
        }
        let needed = self.sessions[i].page_table.mapped_pages();
        assert!(needed > 0, "a migrating session must hold pages");
        let from_pool = self.sessions[i].page_table.home().expect("mapped pages imply a home");
        if self.pools[to_pool].free_pages() < needed {
            return None;
        }
        let mut table = std::mem::take(&mut self.sessions[i].page_table);
        let (from, to) = self.pool_pair_mut(from_pool, to_pool);
        let moved = table.migrate(from, to_pool, to).expect("free pages were just checked");
        let s = &mut self.sessions[i];
        s.page_table = table;
        s.migrations += 1;
        let bytes = s.request.model.config().kv_cache_bytes(s.kv_len(), KV_BITS);
        self.migrations += 1;
        self.migrated_pages += u64_from_usize(moved);
        Some(Migration { pages: moved, bytes })
    }

    /// Raises session `id`'s ready cycle to at least `cycle` — how the
    /// executor keeps a migrated session causal: its next decode step cannot
    /// start before its KV pages have finished streaming over the NoC.
    pub fn stall_session_until(&mut self, id: RequestId, cycle: u64) {
        let i = self.sidx(id);
        let s = &mut self.sessions[i];
        s.ready_cycle = s.ready_cycle.max(cycle);
    }

    /// Applies the effects of an executed micro-batch at simulated cycle
    /// `end_cycle`: prefill chunks advance the cached prefix (a completed
    /// *first* prefill emits the first output token; a completed recompute
    /// prefill after a preemption just restores the cache and resumes
    /// decoding), decode slots emit one token each, and sessions that reach
    /// their requested output length finish, retire from their model queue
    /// and release their KV pages. Every session of the batch leaves the
    /// in-flight set and becomes schedulable again at `end_cycle`.
    ///
    /// Hands a completed micro-batch's allocations back for reuse: the next
    /// formation pops its items vector off a free list instead of
    /// allocating. Purely an optimization — dropping the batch instead is
    /// always correct. The free list is capped at the executor's plausible
    /// in-flight depth so a burst never pins memory.
    pub fn recycle(&mut self, batch: MicroBatch) {
        const SPARE_CAP: usize = 64;
        if self.spare_items.len() < SPARE_CAP {
            let mut items = batch.items;
            items.clear();
            self.spare_items.push(items);
        }
    }

    /// # Panics
    /// Panics if the batch references an id this scheduler did not issue.
    pub fn complete(&mut self, batch: &MicroBatch, end_cycle: u64) {
        // One queue serves the whole batch: resolve it once, not per item.
        let qi = self
            .queues
            .iter()
            .position(|q| q.model == batch.model)
            .expect("completed batch's model has a queue");
        for item in &batch.items {
            let i = self.sidx(item.id);
            let s = &mut self.sessions[i];
            match item.phase {
                Phase::Prefill => {
                    // Debit the chunk from the backlog ledger (maintained
                    // only under an SLO), dropping the entry once the
                    // session owes nothing; the running total is maintained
                    // unconditionally.
                    let paid = u64_from_usize(item.tokens);
                    if self.kv.slo.is_some() {
                        let key = (s.request.arrival_cycle, item.id);
                        let owed = {
                            let owed = self
                                .pending_prefill
                                .get_mut(&key)
                                .expect("a prefill chunk debits a ledgered session");
                            debug_assert!(*owed >= paid, "chunk exceeds ledgered prefill debt");
                            *owed -= paid;
                            *owed
                        };
                        if owed == 0 {
                            self.pending_prefill.remove(&key);
                        }
                    }
                    self.pending_prefill_total -= paid;
                    s.prefilled_tokens += item.tokens;
                    debug_assert!(s.prefilled_tokens <= s.prefill_target);
                    if s.remaining_prefill() == 0 {
                        if s.first_token_cycle.is_none() {
                            // The prefill step produces the first output
                            // token.
                            s.generated_tokens = 1;
                            self.pending_decode_tokens -= 1;
                            s.first_token_cycle = Some(end_cycle);
                            if s.generated_tokens >= s.request.output_tokens {
                                s.state = SessionState::Finished;
                                s.finish_cycle = Some(end_cycle);
                            } else {
                                s.state = SessionState::Decoding;
                            }
                        } else {
                            // Recompute prefill after a preemption: the
                            // cache is restored, decoding resumes, no new
                            // token is emitted.
                            s.state = SessionState::Decoding;
                        }
                    }
                }
                Phase::Decode => {
                    s.generated_tokens += 1;
                    self.pending_decode_tokens -= 1;
                    if s.generated_tokens >= s.request.output_tokens {
                        s.state = SessionState::Finished;
                        s.finish_cycle = Some(end_cycle);
                    }
                }
            }
            s.ready_cycle = s.ready_cycle.max(end_cycle);
            s.in_flight = false;
            let state = s.state;
            if state == SessionState::Finished {
                if let Some(home) = s.page_table.home() {
                    let mut table = std::mem::take(&mut s.page_table);
                    table.release_all(&mut self.pools[home]);
                }
            }
            self.in_flight_count -= 1;
            let queue = &mut self.queues[qi];
            match state {
                SessionState::Prefilling => {}
                SessionState::Decoding => {
                    if item.phase == Phase::Prefill {
                        // Prefill just completed: move to the decode queue.
                        sorted_remove(&mut queue.waiting, item.id);
                        sorted_insert(&mut queue.decoding, item.id);
                    }
                }
                SessionState::Finished => {
                    sorted_remove(&mut queue.waiting, item.id);
                    sorted_remove(&mut queue.decoding, item.id);
                    self.retired += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(model: ModelId, prompt: usize, output: usize) -> Request {
        Request::new(model, prompt, output)
    }

    #[test]
    fn decode_slots_come_before_prefill_and_budget_is_respected() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 8,
            token_budget: 64,
            prefill_chunk: 32,
            policy: SchedulingPolicy::Fcfs,
            ..SchedulerConfig::default()
        });
        let a = sched.submit(request(ModelId::Llama2_7b, 100, 4));
        let b = sched.submit(request(ModelId::Llama2_7b, 40, 4));
        // First batch: no decodes yet, two prefill chunks (32 + 32 = 64).
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items.len(), 2);
        assert_eq!(batch.total_tokens(), 64);
        assert!(batch.items.iter().all(|i| i.phase == Phase::Prefill));
        assert_eq!(batch.items[0].id, a);
        assert_eq!(batch.items[0].tokens, 32);
        assert_eq!(batch.items[1].id, b);
        assert_eq!(batch.items[1].tokens, 32);
        sched.complete(&batch, 10);
        // b finished its prompt? 40 > 32, so both still prefilling. Second
        // batch continues the chunks.
        let batch2 = sched.next_micro_batch(10).unwrap();
        assert_eq!(batch2.items[0].tokens, 32); // a: 100 - 32 = 68 left, next 32
        assert_eq!(batch2.items[1].tokens, 8); // b: 40 - 32 = 8 left
        sched.complete(&batch2, 20);
        // b's prefill completed: it now holds a decode slot ahead of a's
        // remaining prefill.
        let batch3 = sched.next_micro_batch(20).unwrap();
        assert_eq!(batch3.items[0].id, b);
        assert_eq!(batch3.items[0].phase, Phase::Decode);
        assert_eq!(batch3.items[1].id, a);
        assert_eq!(batch3.items[1].phase, Phase::Prefill);
    }

    #[test]
    fn no_model_starves_while_the_runnable_set_shifts() {
        // Regression for the round-robin starvation bug: the old
        // `round_robin % models.len()` indexed into a runnable-model list
        // whose size and order changed between calls, so a model could be
        // skipped repeatedly. Least-recently-served selection must serve
        // every continuously-runnable model within one rotation, even as
        // late arrivals reshuffle the set.
        let models = [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b];
        let mut sched = Scheduler::new(SchedulerConfig::default());
        for (i, &m) in models.iter().enumerate() {
            sched.submit(request(m, 64, 40));
            // Staggered extra arrivals keep the runnable set shifting.
            sched.submit(Request::new(m, 64, 40).arriving_at(50 * (i as u64 + 1)));
        }
        let mut since_served = vec![0usize; models.len()];
        let mut now = 0;
        for _ in 0..60 {
            let Some(batch) = sched.next_micro_batch(now) else { break };
            for (mi, m) in models.iter().enumerate() {
                if *m == batch.model {
                    since_served[mi] = 0;
                } else {
                    since_served[mi] += 1;
                }
            }
            assert!(
                since_served.iter().all(|&gap| gap <= models.len()),
                "a runnable model waited longer than one rotation: {since_served:?}"
            );
            now += 1;
            sched.complete(&batch, now);
        }
    }

    #[test]
    fn in_flight_sessions_are_not_rescheduled_until_completed() {
        // Two overlapping micro-batches (as a multi-node executor would
        // form) must never share a session; completion frees it again.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let a = sched.submit(request(ModelId::Llama2_7b, 64, 8));
        let b = sched.submit(request(ModelId::Llama2_7b, 64, 8));
        let first = sched.next_micro_batch(0).unwrap();
        assert_eq!(first.items.len(), 2, "both prompts fit one batch");
        assert_eq!(sched.in_flight_count(), 2);
        assert!(sched.next_micro_batch(0).is_none(), "everything runnable is in flight");
        sched.complete(&first, 10);
        assert_eq!(sched.in_flight_count(), 0);
        let second = sched.next_micro_batch(10).unwrap();
        let ids: Vec<RequestId> = second.items.iter().map(|i| i.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b), "completion frees the sessions");
    }

    #[test]
    fn sessions_only_become_runnable_after_their_last_batch_completes() {
        // Causality across nodes: a decode continuation may not be scheduled
        // at a cycle earlier than the completion of the step that produced
        // its input token.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 4));
        let prefill = sched.next_micro_batch(0).unwrap();
        sched.complete(&prefill, 500);
        assert!(sched.next_micro_batch(100).is_none(), "token only exists at cycle 500");
        assert_eq!(sched.next_arrival_after(100), Some(500));
        assert!(sched.next_micro_batch(500).is_some());
    }

    #[test]
    fn shortest_prefill_first_reorders_waiting_prompts() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 2,
            token_budget: 1024,
            prefill_chunk: 512,
            policy: SchedulingPolicy::ShortestPrefillFirst,
            ..SchedulerConfig::default()
        });
        sched.submit(request(ModelId::Llama2_7b, 400, 2));
        let short = sched.submit(request(ModelId::Llama2_7b, 50, 2));
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items[0].id, short, "shortest prompt admitted first");
    }

    #[test]
    fn models_round_robin_across_micro_batches() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 8));
        sched.submit(request(ModelId::Llama2_70b, 64, 8));
        let first = sched.next_micro_batch(0).unwrap();
        let second = sched.next_micro_batch(0).unwrap();
        assert_ne!(first.model, second.model);
    }

    #[test]
    fn prefill_completion_emits_first_token_and_transitions_to_decode() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let id = sched.submit(request(ModelId::Llama2_7b, 64, 3));
        let batch = sched.next_micro_batch(0).unwrap();
        sched.complete(&batch, 100);
        let s = sched.session(id);
        assert_eq!(s.state, SessionState::Decoding);
        assert_eq!(s.generated_tokens, 1);
        assert_eq!(s.first_token_cycle, Some(100));
        // Two decode steps finish the request.
        for t in [200, 300] {
            let b = sched.next_micro_batch(t - 100).unwrap();
            assert_eq!(b.items[0].phase, Phase::Decode);
            sched.complete(&b, t);
        }
        let s = sched.session(id);
        assert!(s.is_finished());
        assert_eq!(s.generated_tokens, 3);
        assert_eq!(s.finish_cycle, Some(300));
        assert!(sched.all_finished());
        assert!(sched.next_micro_batch(400).is_none());
    }

    #[test]
    fn future_arrivals_wait_and_are_reported() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 16, 1).arriving_at(1000));
        assert!(sched.next_micro_batch(0).is_none());
        assert_eq!(sched.next_arrival_after(0), Some(1000));
        assert!(sched.next_micro_batch(1000).is_some());
    }

    #[test]
    fn slices_bucket_decode_contexts_and_keep_prefill_chunks() {
        let batch = MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![
                BatchItem { id: RequestId(0), phase: Phase::Decode, tokens: 1, context_len: 70 },
                BatchItem { id: RequestId(1), phase: Phase::Decode, tokens: 1, context_len: 100 },
                BatchItem { id: RequestId(2), phase: Phase::Decode, tokens: 1, context_len: 300 },
                BatchItem { id: RequestId(3), phase: Phase::Prefill, tokens: 96, context_len: 224 },
            ],
            evicted_pages: 0,
            swapped_out: Vec::new(),
        };
        let slices = batch.slices(128);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0], BatchSlice::decode(2, 128));
        assert_eq!(slices[1], BatchSlice::decode(1, 384));
        assert_eq!(slices[2], BatchSlice::prefill(1, 96).with_kv_len(256));
    }

    #[test]
    fn zero_context_decode_buckets_to_exactly_one_page() {
        // Regression for the bucketing boundary: the page count must
        // saturate at one *before* scaling by the page size, so a
        // zero-context decode occupies exactly one `kv_bucket`-entry page —
        // the same bucket as contexts 1..=kv_bucket — and `kv_bucket + 1`
        // spills into the second page.
        let decode = |context_len| MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![BatchItem {
                id: RequestId(0),
                phase: Phase::Decode,
                tokens: 1,
                context_len,
            }],
            evicted_pages: 0,
            swapped_out: Vec::new(),
        };
        let kv_bucket = 128;
        for (context_len, pages) in [(0, 1), (1, 1), (kv_bucket, 1), (kv_bucket + 1, 2)] {
            let slices = decode(context_len).slices(kv_bucket);
            assert_eq!(
                slices,
                vec![BatchSlice::decode(1, pages * kv_bucket)],
                "context {context_len} must map to {pages} page(s)"
            );
            assert_eq!(crate::kv::pages_for(context_len, kv_bucket), pages);
        }
        // The boundary also holds for prefill KV bucketing.
        let prefill = MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![BatchItem {
                id: RequestId(0),
                phase: Phase::Prefill,
                tokens: 1,
                context_len: 0,
            }],
            evicted_pages: 0,
            swapped_out: Vec::new(),
        };
        assert_eq!(
            prefill.slices(kv_bucket),
            vec![BatchSlice::prefill(1, 1).with_kv_len(kv_bucket)]
        );
    }

    #[test]
    #[should_panic(expected = "token_budget must be non-zero")]
    fn zero_budget_rejected() {
        Scheduler::new(SchedulerConfig {
            max_batch: 1,
            token_budget: 0,
            prefill_chunk: 1,
            policy: SchedulingPolicy::Fcfs,
            ..SchedulerConfig::default()
        });
    }

    use crate::kv::{AdmissionError, KvConfig};

    /// Drives the scheduler to completion on one pool, checking page
    /// conservation after every step, and returns the number of steps.
    fn drain(sched: &mut Scheduler) -> usize {
        let capacity = sched.kv_capacity_pages();
        let mut now = 0u64;
        let mut steps = 0usize;
        while !sched.all_finished() {
            steps += 1;
            assert!(steps < 10_000, "scheduler failed to drain (livelock)");
            if let Some(batch) = sched.next_micro_batch(now) {
                now += 1;
                sched.complete(&batch, now);
            } else {
                now = sched.next_arrival_after(now).expect("blocked with nothing runnable");
            }
            if let Some(capacity) = capacity {
                let mapped: u64 =
                    sched.sessions().iter().map(|s| s.page_table.mapped_pages() as u64).sum();
                assert_eq!(
                    sched.kv_free_pages(0).pages().unwrap() as u64 + mapped,
                    capacity,
                    "free + mapped must equal capacity after every step"
                );
            }
        }
        steps
    }

    #[test]
    fn decode_growth_preempts_the_most_recently_admitted_holder() {
        // Pool of 4 four-token pages. Two equal requests (prompt 4, output
        // 8) prefill together (2 pages each: context 5 after the emitted
        // first token). Both decode in lockstep until their KV crosses 8
        // entries: the older session (r0) then needs a third page, the pool
        // is dry, and the younger holder (r1) must be evicted, re-prefill
        // its whole 8-entry KV and still finish.
        let mut sched = Scheduler::with_kv(
            SchedulerConfig {
                max_batch: 2,
                token_budget: 8,
                prefill_chunk: 4,
                policy: SchedulingPolicy::Fcfs,
                ..SchedulerConfig::default()
            },
            KvConfig::bounded(4, 4),
        );
        let a = sched.submit(request(ModelId::Llama2_7b, 4, 8));
        let b = sched.submit(request(ModelId::Llama2_7b, 4, 8));
        drain(&mut sched);
        assert!(sched.all_finished());
        assert_eq!(sched.session(a).preemptions, 0, "the oldest session is unpreemptable");
        assert_eq!(sched.session(b).preemptions, 1);
        assert_eq!(sched.preemption_count(), 1);
        assert_eq!(sched.evicted_page_count(), 2, "the victim held two pages");
        assert_eq!(
            sched.reprefill_token_count(),
            8,
            "prompt 4 + 4 generated KV entries recomputed"
        );
        // Token accounting stays exact through the eviction.
        for s in sched.sessions() {
            assert_eq!(s.generated_tokens, s.request.output_tokens);
            assert_eq!(s.page_table.mapped_pages(), 0, "finished sessions hold no pages");
        }
        assert_eq!(sched.kv_free_pages(0).pages(), Some(4), "all pages return to the pool");
    }

    #[test]
    fn kv_free_pages_distinguishes_unbounded_from_a_bad_index() {
        // Unbounded: every index reads as the explicit unbounded state —
        // there is no pool an index could be "out of range" of.
        let sched = Scheduler::new(SchedulerConfig::default());
        assert_eq!(sched.kv_free_pages(0), KvFreePages::Unbounded);
        assert_eq!(sched.kv_free_pages(17), KvFreePages::Unbounded);
        // Bounded: valid indices answer with a real count.
        let sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 4));
        assert_eq!(sched.kv_free_pages(0), KvFreePages::Pages(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kv_free_pages_panics_on_an_out_of_range_bounded_index() {
        // Regression: this used to return `None`, which placement call
        // sites folded to usize::MAX free pages — an indexing bug would
        // silently win every placement decision instead of failing.
        let sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 4));
        let _ = sched.kv_free_pages(1);
    }

    #[test]
    fn fresh_prefills_defer_until_pages_free_up() {
        // One page-hungry session (needs 3 of 4 pages at its peak) runs
        // while a second one waits: the second's first chunk must be
        // deferred while free pages fall short of its projected need, and
        // admitted later without any preemption.
        let mut sched = Scheduler::with_kv(
            SchedulerConfig {
                max_batch: 4,
                token_budget: 16,
                prefill_chunk: 8,
                policy: SchedulingPolicy::Fcfs,
                ..SchedulerConfig::default()
            },
            KvConfig::bounded(4, 4),
        );
        sched.submit(request(ModelId::Llama2_7b, 8, 5)); // peak: pages_for(13) = 4 pages
        let late = sched.submit(request(ModelId::Llama2_7b, 8, 2));
        let first = sched.next_micro_batch(0).unwrap();
        // Only the first prompt fits: 8 + 1 emitted token = 3 pages, leaving
        // one free page — short of the second prompt's 3-page need.
        assert_eq!(first.items.len(), 1, "the second prefill must be deferred");
        assert_eq!(first.evicted_pages, 0, "fresh admissions never preempt");
        sched.complete(&first, 1);
        assert_eq!(sched.session(late).prefilled_tokens, 0);
        drain(&mut sched);
        assert!(sched.all_finished());
        assert_eq!(sched.preemption_count(), 0, "deferral suffices for this workload");
    }

    #[test]
    fn try_submit_rejects_on_queue_depth_and_impossible_fits() {
        let mut sched = Scheduler::with_kv(
            SchedulerConfig::default(),
            KvConfig::bounded(4, 8).with_max_live_sessions(2),
        );
        assert!(sched.try_submit(request(ModelId::Llama2_7b, 4, 4)).is_ok());
        assert!(sched.try_submit(request(ModelId::Llama2_7b, 4, 4)).is_ok());
        // Third live session exceeds the depth bound.
        assert_eq!(
            sched.try_submit(request(ModelId::Llama2_7b, 4, 4)),
            Err(AdmissionError::QueueFull { live: 2, bound: 2 })
        );
        // A request that could never fit the pool is rejected outright:
        // pages_for(60 + 8) = 17 > 8.
        let mut roomy = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 8));
        assert_eq!(
            roomy.try_submit(request(ModelId::Llama2_7b, 60, 8)),
            Err(AdmissionError::NeverFits { needed_pages: 17, capacity_pages: 8 })
        );
        assert_eq!(sched.rejected_count(), 1);
        assert_eq!(roomy.rejected_count(), 1);
        // Unbounded schedulers never reject.
        let mut unbounded = Scheduler::new(SchedulerConfig::default());
        assert!(unbounded.try_submit(request(ModelId::Llama2_7b, 100_000, 1000)).is_ok());
    }

    #[test]
    fn never_fits_is_judged_per_node_regardless_of_pool_partition() {
        // Admission must not depend on whether a request is submitted
        // before or after an executor repartitions the pools: the fit check
        // always uses the per-node capacity, so a sharded 4-node aggregate
        // (32 pages) still rejects what one node (8 pages) cannot hold.
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 8));
        sched.configure_kv_pools(1, 4);
        assert_eq!(sched.kv_capacity_pages(), Some(32));
        assert_eq!(
            sched.try_submit(request(ModelId::Llama2_7b, 60, 8)),
            Err(AdmissionError::NeverFits { needed_pages: 17, capacity_pages: 8 })
        );
    }

    #[test]
    #[should_panic(expected = "request rejected")]
    fn infallible_submit_panics_on_rejection() {
        let mut sched = Scheduler::with_kv(
            SchedulerConfig::default(),
            KvConfig::bounded(4, 8).with_max_live_sessions(1),
        );
        sched.submit(request(ModelId::Llama2_7b, 4, 4));
        sched.submit(request(ModelId::Llama2_7b, 4, 4));
    }

    #[test]
    fn pool_repartitioning_scales_capacity_and_guards_mapped_pages() {
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(16, 8));
        assert_eq!(sched.kv_pool_count(), 1);
        sched.configure_kv_pools(4, 1); // data-parallel over 4 nodes
        assert_eq!(sched.kv_pool_count(), 4);
        assert_eq!(sched.kv_capacity_pages(), Some(32));
        sched.configure_kv_pools(1, 4); // sharded across 4 nodes
        assert_eq!(sched.kv_pool_count(), 1);
        assert_eq!(sched.kv_capacity_pages(), Some(32));
        // Unbounded schedulers ignore repartitioning entirely.
        let mut unbounded = Scheduler::new(SchedulerConfig::default());
        unbounded.configure_kv_pools(4, 1);
        assert_eq!(unbounded.kv_pool_count(), 0);
        assert_eq!(unbounded.kv_capacity_pages(), None);
    }

    #[test]
    fn sessions_stay_on_their_home_pool() {
        // Two pools of 4 pages. A session prefilled out of pool 0 must not
        // be schedulable on pool 1, and a fresh session is admissible on
        // either.
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 4));
        sched.configure_kv_pools(2, 1);
        let a = sched.submit(request(ModelId::Llama2_7b, 4, 4));
        let b = sched.submit(request(ModelId::Llama2_7b, 4, 4));
        let on_zero = sched.next_micro_batch_on(0, 0).unwrap();
        assert_eq!(on_zero.items.len(), 2, "both prompts fit pool 0");
        sched.complete(&on_zero, 1);
        assert_eq!(sched.session(a).page_table.home(), Some(0));
        assert_eq!(sched.session(b).page_table.home(), Some(0));
        assert!(
            sched.next_micro_batch_on(1, 1).is_none(),
            "homed sessions are not eligible on another node's pool"
        );
        let again = sched.next_micro_batch_on(1, 0).unwrap();
        assert_eq!(again.decode_slots(), 2);
    }

    use crate::kv::SloConfig;

    /// The ids of a batch in scheduling order.
    fn ids(batch: &MicroBatch) -> Vec<RequestId> {
        batch.items.iter().map(|i| i.id).collect()
    }

    #[test]
    fn round_robin_decode_slots_rotate_by_hand_computed_pattern() {
        // Three decoding sessions, two decode slots per batch (overlapping
        // prefill batches — as a multi-node executor forms — get all three
        // decoding before any decode slot is granted). Round-robin must then
        // serve {a,b}, {c,a}, {b,c}, {a,b}, … — each batch starting with the
        // oldest session strictly after the last one served — so every
        // session gets two slots out of every three batches.
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 2,
            token_budget: 12,
            prefill_chunk: 4,
            ..SchedulerConfig::default()
        });
        let a = sched.submit(request(ModelId::Llama2_7b, 4, 6));
        let b = sched.submit(request(ModelId::Llama2_7b, 4, 6));
        let c = sched.submit(request(ModelId::Llama2_7b, 4, 6));
        let p1 = sched.next_micro_batch(0).unwrap();
        assert_eq!(ids(&p1), vec![a, b]);
        let p2 = sched.next_micro_batch(0).unwrap();
        assert_eq!(ids(&p2), vec![c], "overlapping batch picks up the third prompt");
        sched.complete(&p1, 1);
        sched.complete(&p2, 1);
        // All three decode now; the hand-computed rotation:
        let expected = [vec![a, b], vec![c, a], vec![b, c], vec![a, b], vec![c, a]];
        let mut now = 1;
        for want in expected {
            let batch = sched.next_micro_batch(now).unwrap();
            assert_eq!(ids(&batch), want, "rotation diverged at cycle {now}");
            assert!(batch.items.iter().all(|i| i.phase == Phase::Decode));
            now += 1;
            sched.complete(&batch, now);
        }
    }

    #[test]
    fn fcfs_decode_order_starves_the_newest_generation() {
        // The regression round-robin fixes: under the pre-rotation FCFS
        // order the same three-session workload gives c no decode slot at
        // all while a and b are alive.
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 2,
            token_budget: 12,
            prefill_chunk: 4,
            decode_order: DecodeOrder::Fcfs,
            ..SchedulerConfig::default()
        });
        let a = sched.submit(request(ModelId::Llama2_7b, 4, 6));
        let b = sched.submit(request(ModelId::Llama2_7b, 4, 6));
        let c = sched.submit(request(ModelId::Llama2_7b, 4, 6));
        let p1 = sched.next_micro_batch(0).unwrap();
        let p2 = sched.next_micro_batch(0).unwrap();
        sched.complete(&p1, 1);
        sched.complete(&p2, 1);
        let mut now = 1;
        // a and b need five decode slots each; every batch is [a, b].
        for _ in 0..5 {
            let batch = sched.next_micro_batch(now).unwrap();
            assert_eq!(ids(&batch), vec![a, b]);
            now += 1;
            sched.complete(&batch, now);
        }
        assert!(sched.session(a).is_finished() && sched.session(b).is_finished());
        assert_eq!(sched.session(c).generated_tokens, 1, "c decoded nothing so far");
    }

    #[test]
    fn phase_filters_route_prefill_and_decode_separately() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 3));
        assert!(
            sched.next_micro_batch_phased(0, 0, PhaseFilter::DecodeOnly).is_none(),
            "a waiting prompt is not decode work"
        );
        let prefill = sched.next_micro_batch_phased(0, 0, PhaseFilter::PrefillOnly).unwrap();
        assert!(prefill.items.iter().all(|i| i.phase == Phase::Prefill));
        sched.complete(&prefill, 1);
        assert!(
            sched.next_micro_batch_phased(1, 0, PhaseFilter::PrefillOnly).is_none(),
            "a decoding session is not prefill work"
        );
        let decode = sched.next_micro_batch_phased(1, 0, PhaseFilter::DecodeOnly).unwrap();
        assert!(decode.items.iter().all(|i| i.phase == Phase::Decode));
    }

    #[test]
    fn slo_admission_rejects_exactly_past_the_projected_ttft_boundary() {
        // Target 1000 cycles at 10 cycles per prefill token: a 100-token
        // prompt on an empty scheduler projects to exactly the target
        // (admitted — the bound is not-greater-than), and a single further
        // token of backlog pushes any prompt past it.
        let slo = SloConfig { target_ttft_cycles: 1_000, cycles_per_prefill_token: 10 };
        let kv = KvConfig::unbounded().with_slo(slo);
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), kv);
        let first = sched.try_submit(request(ModelId::Llama2_7b, 100, 2));
        assert!(first.is_ok(), "projected == target must be admitted");
        // Backlog is now 100 unprefilled tokens: even a 1-token prompt
        // projects to 1010 > 1000.
        assert_eq!(
            sched.try_submit(request(ModelId::Llama2_7b, 1, 2)),
            Err(AdmissionError::SloViolation { projected_cycles: 1_010, target_cycles: 1_000 })
        );
        assert_eq!(sched.rejected_count(), 1);
        // Once the prompt prefills, the backlog drains and admission opens
        // again (decoding sessions carry no prefill backlog).
        let batch = sched.next_micro_batch(0).unwrap();
        sched.complete(&batch, 1);
        assert!(sched.try_submit(request(ModelId::Llama2_7b, 100, 2)).is_ok());
        // A 101-token prompt alone projects to 1010: rejected on arrival.
        let mut fresh = Scheduler::with_kv(SchedulerConfig::default(), kv);
        assert_eq!(
            fresh.try_submit(request(ModelId::Llama2_7b, 101, 2)),
            Err(AdmissionError::SloViolation { projected_cycles: 1_010, target_cycles: 1_000 })
        );
    }

    #[test]
    fn slo_admission_only_counts_backlog_arriving_no_later() {
        // Pre-submitted spread-arrival streams must not be spuriously
        // rejected: a request arriving *before* the queued backlog does not
        // wait behind it, so only sessions with arrival_cycle at or before
        // the new request's count toward its projection.
        let slo = SloConfig { target_ttft_cycles: 1_000, cycles_per_prefill_token: 10 };
        let kv = KvConfig::unbounded().with_slo(slo);
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), kv);
        // 90 tokens of backlog arriving late.
        assert!(sched
            .try_submit(Request::new(ModelId::Llama2_7b, 90, 2).arriving_at(5_000))
            .is_ok());
        // An earlier-arriving 80-token prompt sees none of it: 800 <= 1000.
        assert!(sched.try_submit(Request::new(ModelId::Llama2_7b, 80, 2)).is_ok());
        // A prompt arriving alongside the late one sees both: (90 + 80 + 50)
        // * 10 = 2200 > 1000.
        assert_eq!(
            sched.try_submit(Request::new(ModelId::Llama2_7b, 50, 2).arriving_at(5_000)),
            Err(AdmissionError::SloViolation { projected_cycles: 2_200, target_cycles: 1_000 })
        );
    }

    #[test]
    fn retire_finished_prefix_drops_only_the_finished_prefix() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let a = sched.submit(request(ModelId::Llama2_7b, 8, 1));
        let b = sched.submit(request(ModelId::Llama2_7b, 600, 1));
        // a finishes in one chunk; b still has prefill left.
        let batch = sched.next_micro_batch(0).unwrap();
        sched.complete(&batch, 1);
        assert!(sched.session(a).is_finished());
        assert!(!sched.session(b).is_finished());
        assert_eq!(sched.retire_finished_prefix(), 1);
        assert_eq!(sched.retired_session_count(), 1);
        assert_eq!(sched.submitted_count(), 2);
        assert_eq!(sched.sessions().len(), 1, "only the finished prefix retires");
        assert_eq!(sched.session(b).id, b, "ids keep resolving after retirement");
        assert_eq!(sched.retire_finished_prefix(), 0, "b is unfinished, nothing to retire");
        // The rest of the run drains normally.
        let mut now = 1;
        while !sched.all_finished() {
            let batch = sched.next_micro_batch(now).unwrap();
            now += 1;
            sched.complete(&batch, now);
        }
        assert_eq!(sched.retire_finished_prefix(), 1);
        assert_eq!(sched.sessions().len(), 0);
        assert!(sched.all_finished());
    }
}
