//! The continuous-batching scheduler: turns a population of sessions into a
//! stream of micro-batches.
//!
//! Each call to [`Scheduler::next_micro_batch`] assembles one micro-batch for
//! one model under two hard caps — at most `max_batch` requests and at most
//! `token_budget` tokens — interleaving the two phases the way production
//! LLM servers do:
//!
//! 1. **Decode first.** Every in-flight (decoding) session of the chosen
//!    model gets a one-token decode slot, so ongoing generations are never
//!    stalled behind new prompts.
//! 2. **Prefill with the leftover budget.** Waiting prompts are admitted in
//!    policy order ([`SchedulingPolicy::Fcfs`] or
//!    [`SchedulingPolicy::ShortestPrefillFirst`]) as *chunks* of at most
//!    `prefill_chunk` tokens, so one long prompt cannot monopolise a step
//!    (chunked prefill).
//!
//! When several models have runnable work the scheduler serves the
//! least-recently-served one, which bounds every model's wait by the number
//! of active models even as models join and leave the runnable set between
//! calls (a modulo round-robin over that shifting set could skip a model
//! indefinitely).
//!
//! Internally the scheduler keeps per-model queues of *released* unfinished
//! sessions plus a retired counter, so each call touches only in-flight
//! work — not every session ever submitted. Sessions scheduled into a
//! micro-batch are marked in flight until the batch completes, which lets a
//! multi-node executor overlap several micro-batches safely.
//!
//! # Paged KV admission and preemption
//!
//! Under a bounded [`KvConfig`] the scheduler also owns the physical
//! [`KvPool`]s (one per data-parallel node, or one aggregate pool under
//! sharded placement) and every micro-batch formation is a paging
//! transaction against the pool passed to [`Scheduler::next_micro_batch_on`]:
//!
//! * a **decode slot** needs its session's table to cover `kv_len + 1`
//!   entries; when the pool is short, the scheduler *preempts* — it evicts
//!   the most-recently-admitted page holders (strictly younger than the
//!   requester, which makes the oldest session unpreemptable and the whole
//!   scheme starvation-free), moves them back to the waiting queue and
//!   charges them a recompute prefill;
//! * a **prefill chunk** from a session already holding pages may preempt
//!   the same way (its work is sunk cost); a *fresh* admission never
//!   preempts — when free pages fall short of its projected need the
//!   prefill queue is deferred wholesale (strict policy order, no
//!   head-of-line bypass), which is the admission-control half of the
//!   design;
//! * sessions are pinned to the pool holding their pages (`PageTable::home`),
//!   so a data-parallel executor can only schedule them on their home node.
//!
//! With the default unbounded [`KvConfig`] none of this bookkeeping runs and
//! the scheduler is bit-identical to the pre-paging implementation
//! (property-tested in `tests/proptests.rs`).

use crate::kv::{pages_for, AdmissionError, KvConfig, KvPool};
use crate::request::{Request, RequestId, Session, SessionState};
use mugi_workloads::models::ModelId;
use mugi_workloads::ops::{BatchSlice, Phase};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Order in which waiting prompts are admitted to the prefill share of a
/// micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First come, first served (submission order).
    Fcfs,
    /// Shortest remaining prefill first (ties broken by submission order).
    /// Lowers mean time-to-first-token for short prompts at the cost of
    /// delaying long ones while shorter work keeps arriving.
    ShortestPrefillFirst,
}

/// Static scheduler configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Maximum requests per micro-batch (decode slots plus prefill chunks).
    pub max_batch: usize,
    /// Maximum tokens per micro-batch: each decode slot costs one token, a
    /// prefill chunk costs its length.
    pub token_budget: usize,
    /// Maximum prompt tokens one request may prefill in a single micro-batch.
    pub prefill_chunk: usize,
    /// Prefill admission order.
    pub policy: SchedulingPolicy,
}

impl SchedulerConfig {
    /// Validates the caps.
    ///
    /// # Panics
    /// Panics if any cap is zero.
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be non-zero");
        assert!(self.token_budget > 0, "token_budget must be non-zero");
        assert!(self.prefill_chunk > 0, "prefill_chunk must be non-zero");
    }
}

impl Default for SchedulerConfig {
    /// Sixteen requests, a 2048-token budget, 512-token prefill chunks, FCFS.
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 16,
            token_budget: 2048,
            prefill_chunk: 512,
            policy: SchedulingPolicy::Fcfs,
        }
    }
}

/// One request's share of a micro-batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchItem {
    /// The session the work belongs to.
    pub id: RequestId,
    /// Prefill chunk or decode slot.
    pub phase: Phase,
    /// Tokens this item processes (chunk length for prefill, 1 for decode).
    pub tokens: usize,
    /// KV-cache entries the item attends to after this step (cached prefix
    /// plus the chunk for prefill; current cache length for decode).
    pub context_len: usize,
}

/// A scheduled micro-batch: work for one model, one step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroBatch {
    /// The model every item runs on.
    pub model: ModelId,
    /// The scheduled items (decode slots first, then prefill chunks).
    pub items: Vec<BatchItem>,
    /// KV pages evicted (sessions preempted) to make room for this batch;
    /// always zero under an unbounded pool. The executor charges page-fault
    /// stall cycles per evicted page.
    pub evicted_pages: usize,
}

impl MicroBatch {
    /// Total tokens across all items (bounded by the scheduler's budget).
    pub fn total_tokens(&self) -> usize {
        self.items.iter().map(|i| i.tokens).sum()
    }

    /// Number of decode slots.
    pub fn decode_slots(&self) -> usize {
        self.items.iter().filter(|i| i.phase == Phase::Decode).count()
    }

    /// Converts the batch into workload slices for
    /// [`OpTrace::generate_mixed`](mugi_workloads::ops::OpTrace::generate_mixed).
    ///
    /// Decode slots are grouped by their context length rounded up to
    /// `kv_bucket` (the paged-KV page-granularity view of the cache), which
    /// keeps the number of distinct trace shapes — and therefore the size of
    /// the accelerator's trace cache — small. Prefill chunks become one
    /// slice each, with the attended KV length bucketed the same way.
    ///
    /// The rounding is [`pages_for`]`(len) * kv_bucket` — the same page
    /// count the KV pool charges the session — so a zero-context decode
    /// occupies exactly one page (`kv_bucket` entries), never more: the page
    /// count saturates at one *before* multiplying by the page size, pinning
    /// the `context_len == 0` boundary to the `1..=kv_bucket` bucket.
    ///
    /// # Panics
    /// Panics if `kv_bucket` is zero.
    pub fn slices(&self, kv_bucket: usize) -> Vec<BatchSlice> {
        assert!(kv_bucket > 0, "kv_bucket must be non-zero");
        let bucket = |len: usize| pages_for(len, kv_bucket) * kv_bucket;
        // Group decode slots by bucketed context length, preserving ascending
        // order so equal batches always produce identical slice lists.
        let mut decode_buckets: Vec<(usize, usize)> = Vec::new(); // (context, count)
        for item in self.items.iter().filter(|i| i.phase == Phase::Decode) {
            let ctx = bucket(item.context_len);
            match decode_buckets.binary_search_by_key(&ctx, |&(c, _)| c) {
                Ok(pos) => decode_buckets[pos].1 += 1,
                Err(pos) => decode_buckets.insert(pos, (ctx, 1)),
            }
        }
        let mut slices: Vec<BatchSlice> =
            decode_buckets.into_iter().map(|(ctx, count)| BatchSlice::decode(count, ctx)).collect();
        for item in self.items.iter().filter(|i| i.phase == Phase::Prefill) {
            slices.push(BatchSlice::prefill(1, item.tokens).with_kv_len(bucket(item.context_len)));
        }
        slices
    }
}

/// Per-model queues of *released* (arrived) unfinished sessions. Keeping
/// membership incremental means each scheduling decision touches only the
/// model's in-flight sessions, not every session ever submitted.
#[derive(Clone, Debug)]
struct ModelQueue {
    model: ModelId,
    /// Sessions still prefilling, sorted by id (submission order = FCFS).
    waiting: Vec<RequestId>,
    /// Sessions decoding, sorted by id (oldest generation first).
    decoding: Vec<RequestId>,
    /// Serve-counter value when this model last headed a micro-batch
    /// (0 = never served). The scheduler picks the least-recently-served
    /// runnable model, which is starvation-free even as the runnable set
    /// grows and shrinks between calls.
    last_served: u64,
}

impl ModelQueue {
    fn new(model: ModelId) -> Self {
        ModelQueue { model, waiting: Vec::new(), decoding: Vec::new(), last_served: 0 }
    }
}

/// Inserts `id` into a vec kept sorted ascending, ignoring duplicates.
fn sorted_insert(ids: &mut Vec<RequestId>, id: RequestId) {
    if let Err(pos) = ids.binary_search(&id) {
        ids.insert(pos, id);
    }
}

/// Removes `id` from a sorted vec if present.
fn sorted_remove(ids: &mut Vec<RequestId>, id: RequestId) {
    if let Ok(pos) = ids.binary_search(&id) {
        ids.remove(pos);
    }
}

/// The continuous-batching scheduler.
#[derive(Clone, Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    kv: KvConfig,
    /// Physical KV pools, empty under an unbounded [`KvConfig`]. One pool
    /// per data-parallel node, or a single aggregate pool under sharded
    /// placement (see [`Scheduler::configure_kv_pools`]).
    pools: Vec<KvPool>,
    sessions: Vec<Session>,
    /// Per-model queues of released unfinished sessions, in first-submission
    /// order of their models.
    queues: Vec<ModelQueue>,
    /// `(arrival_cycle, id)` of submitted sessions not yet released into the
    /// queues, sorted ascending by arrival: in-order submissions (the normal
    /// case) append in O(1) and each release pops from the front.
    future: VecDeque<(u64, RequestId)>,
    /// Sessions inside an emitted-but-not-yet-completed micro-batch. A
    /// multi-node executor overlaps several micro-batches; their sessions
    /// must not be scheduled twice.
    in_flight: HashSet<RequestId>,
    /// Sessions that have finished (retired from the queues). `all_finished`
    /// is a counter comparison, not a scan.
    retired: usize,
    /// Monotone counter driving the least-recently-served model rotation.
    serve_counter: u64,
    /// Sessions evicted from a full KV pool so far.
    preempted: u64,
    /// KV entries dropped by evictions that must be prefilled again (the
    /// recompute cost of preemption, in tokens).
    reprefill_tokens: u64,
    /// Pages released by evictions (the executor charges fault stalls per
    /// page).
    evicted_pages: u64,
    /// Submissions rejected by admission control.
    rejected: u64,
}

impl Scheduler {
    /// Creates an empty scheduler with an unbounded KV pool (no paging).
    ///
    /// # Panics
    /// Panics if any configured cap is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler::with_kv(config, KvConfig::default())
    }

    /// Creates an empty scheduler managing a paged KV cache. A bounded
    /// `kv` starts with a single pool of `kv.node_pages` pages; an executor
    /// repartitions it per placement via [`Scheduler::configure_kv_pools`].
    ///
    /// # Panics
    /// Panics if any configured cap is zero.
    pub fn with_kv(config: SchedulerConfig, kv: KvConfig) -> Self {
        config.validate();
        assert!(kv.page_tokens > 0, "page_tokens must be non-zero");
        let pools = match kv.node_pages {
            Some(pages) => vec![KvPool::bounded(pages)],
            None => Vec::new(),
        };
        Scheduler {
            config,
            kv,
            pools,
            sessions: Vec::new(),
            queues: Vec::new(),
            future: VecDeque::new(),
            in_flight: HashSet::new(),
            retired: 0,
            serve_counter: 0,
            preempted: 0,
            reprefill_tokens: 0,
            evicted_pages: 0,
            rejected: 0,
        }
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The KV-cache configuration the scheduler pages under.
    pub fn kv_config(&self) -> &KvConfig {
        &self.kv
    }

    /// Repartitions the bounded KV capacity into `pools` pools of
    /// `kv.node_pages * capacity_scale` pages each. The executor calls this
    /// at construction: one pool per node under data-parallel placement
    /// (`(nodes, 1)`), one aggregate pool under sharded placement
    /// (`(1, nodes)`, the KV being tiled across the mesh). No-op when the
    /// configuration is unbounded.
    ///
    /// # Panics
    /// Panics if `pools` or `capacity_scale` is zero, or if any session
    /// already holds pages (pools cannot be repartitioned mid-run).
    pub fn configure_kv_pools(&mut self, pools: usize, capacity_scale: usize) {
        let Some(node_pages) = self.kv.node_pages else { return };
        assert!(pools > 0, "at least one KV pool is required");
        assert!(capacity_scale > 0, "capacity_scale must be non-zero");
        assert!(
            self.sessions.iter().all(|s| s.page_table.mapped_pages() == 0),
            "cannot repartition KV pools once pages are mapped"
        );
        self.pools = (0..pools).map(|_| KvPool::bounded(node_pages * capacity_scale)).collect();
    }

    /// Submits a request, returning its id. Submission order defines FCFS.
    ///
    /// # Panics
    /// Panics if admission control rejects the request (only possible under
    /// a bounded [`KvConfig`]); use [`Scheduler::try_submit`] to handle
    /// rejection as backpressure instead.
    pub fn submit(&mut self, request: Request) -> RequestId {
        self.try_submit(request)
            .unwrap_or_else(|e| panic!("request rejected: {e}; use try_submit to handle this"))
    }

    /// Submits a request unless admission control rejects it: the live
    /// session population is at [`KvConfig::max_live_sessions`] (backpressure
    /// — retry later), or the request alone could never fit *one node's*
    /// pool of [`KvConfig::node_pages`] pages (admitting it would deadlock
    /// that pool). The fit check deliberately uses the per-node capacity
    /// rather than the current pool partition, so acceptance does not depend
    /// on whether the request is submitted before or after an executor
    /// repartitions the pools (a sharded executor merges them into a larger
    /// aggregate, which only relaxes the true constraint). Rejections are
    /// counted in the runtime report.
    pub fn try_submit(&mut self, request: Request) -> Result<RequestId, AdmissionError> {
        if let Some(bound) = self.kv.max_live_sessions {
            let live = self.sessions.len() - self.retired;
            if live >= bound {
                self.rejected += 1;
                return Err(AdmissionError::QueueFull { live, bound });
            }
        }
        if let Some(capacity) = self.kv.node_pages {
            // Peak demand: the whole prompt plus every generated token.
            let needed =
                pages_for(request.prompt_tokens + request.output_tokens, self.kv.page_tokens);
            if needed > capacity {
                self.rejected += 1;
                return Err(AdmissionError::NeverFits {
                    needed_pages: needed,
                    capacity_pages: capacity,
                });
            }
        }
        let id = RequestId(self.sessions.len() as u64);
        self.sessions.push(Session::new(id, request));
        let arrival = request.arrival_cycle;
        if self.future.back().is_none_or(|&(a, _)| a <= arrival) {
            self.future.push_back((arrival, id));
        } else {
            let pos = self.future.partition_point(|&(a, _)| a <= arrival);
            self.future.insert(pos, (arrival, id));
        }
        Ok(id)
    }

    /// All sessions in submission order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Looks up one session.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this scheduler.
    pub fn session(&self, id: RequestId) -> &Session {
        &self.sessions[id.0 as usize]
    }

    /// Whether every submitted session has finished.
    pub fn all_finished(&self) -> bool {
        self.retired == self.sessions.len()
    }

    /// Number of finished sessions.
    pub fn finished_count(&self) -> usize {
        self.retired
    }

    /// Number of sessions currently inside an emitted-but-not-completed
    /// micro-batch.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Number of KV pools (zero under an unbounded configuration).
    pub fn kv_pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Free pages of pool `pool`, or `None` under an unbounded
    /// configuration (where every pool is infinitely free).
    pub fn kv_free_pages(&self, pool: usize) -> Option<usize> {
        self.pools.get(pool).map(KvPool::free_pages)
    }

    /// Total page capacity across all pools (`None` = unbounded).
    pub fn kv_capacity_pages(&self) -> Option<u64> {
        if self.pools.is_empty() {
            None
        } else {
            Some(self.pools.iter().map(|p| p.capacity() as u64).sum())
        }
    }

    /// Pages currently mapped across all pools.
    pub fn kv_used_pages(&self) -> u64 {
        self.pools.iter().map(|p| p.used_pages() as u64).sum()
    }

    /// High-water mark of mapped pages, summed across pools.
    pub fn kv_peak_used_pages(&self) -> u64 {
        self.pools.iter().map(|p| p.peak_used_pages() as u64).sum()
    }

    /// Sessions evicted from a full KV pool so far.
    pub fn preemption_count(&self) -> u64 {
        self.preempted
    }

    /// KV entries dropped by evictions that had to be prefilled again.
    pub fn reprefill_token_count(&self) -> u64 {
        self.reprefill_tokens
    }

    /// Pages released by evictions so far.
    pub fn evicted_page_count(&self) -> u64 {
        self.evicted_pages
    }

    /// Submissions rejected by admission control so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Earliest cycle strictly after `now` at which an unfinished session
    /// becomes schedulable: a future arrival, or the `ready_cycle` a session
    /// was stamped with when its latest micro-batch completed. The executor
    /// jumps an idle node's clock there when nothing is runnable yet.
    /// Sessions inside a dispatched-but-uncompleted batch are *not* visible
    /// here — their next ready time is only known once
    /// [`Scheduler::complete`] runs, so an executor must drain pending
    /// completions before relying on this.
    pub fn next_arrival_after(&self, now: u64) -> Option<u64> {
        // Unreleased sessions become ready at their arrival. `future` is
        // sorted ascending, so scan from the front (smallest arrival) past
        // any entries at or before `now`.
        let pending =
            self.future.iter().map(|&(arrival, _)| arrival).find(|&arrival| arrival > now);
        // Released sessions become ready at their `ready_cycle`; the queues
        // hold only unfinished sessions, so this scan is in-flight-sized.
        let queued = self
            .queues
            .iter()
            .flat_map(|q| q.waiting.iter().chain(q.decoding.iter()))
            .map(|id| self.sessions[id.0 as usize].ready_cycle)
            .filter(|&ready| ready > now)
            .min();
        match (pending, queued) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Moves every submitted session whose arrival is at or before `now`
    /// into its model queue.
    fn release_arrivals(&mut self, now: u64) {
        while let Some(&(arrival, id)) = self.future.front() {
            if arrival > now {
                break;
            }
            self.future.pop_front();
            let model = self.sessions[id.0 as usize].request.model;
            let queue = match self.queues.iter_mut().find(|q| q.model == model) {
                Some(queue) => queue,
                None => {
                    self.queues.push(ModelQueue::new(model));
                    self.queues.last_mut().expect("queue just pushed")
                }
            };
            sorted_insert(&mut queue.waiting, id);
        }
    }

    /// Whether `id` may be scheduled at `now`.
    fn schedulable(&self, id: RequestId, now: u64) -> bool {
        !self.in_flight.contains(&id) && self.sessions[id.0 as usize].is_runnable(now)
    }

    /// Whether `id` may be scheduled at `now` out of KV pool `pool`: it must
    /// be schedulable and — under a bounded configuration — either homeless
    /// (fresh admission) or already homed to `pool`.
    fn eligible_on(&self, id: RequestId, now: u64, pool: usize) -> bool {
        self.schedulable(id, now)
            && (self.pools.is_empty()
                || self.sessions[id.0 as usize].page_table.admissible_on(pool))
    }

    /// Assembles the next micro-batch at simulated cycle `now` against KV
    /// pool 0 — the single-node / sharded view. A data-parallel multi-node
    /// executor uses [`Scheduler::next_micro_batch_on`] with the target
    /// node's pool instead. Returns `None` when no session has runnable
    /// work (all finished, everything runnable already in flight, blocked on
    /// KV pages, or only future arrivals remain).
    pub fn next_micro_batch(&mut self, now: u64) -> Option<MicroBatch> {
        self.next_micro_batch_on(now, 0)
    }

    /// Assembles the next micro-batch at simulated cycle `now` for the node
    /// whose KV lives in pool `pool`. Scheduled sessions are marked in
    /// flight until [`Scheduler::complete`] is called for the batch, so
    /// overlapping micro-batches on different nodes never share a session.
    ///
    /// Under a bounded [`KvConfig`] the formation is a paging transaction:
    /// decode growth and prefill chunks allocate pages from `pool`,
    /// preempting most-recently-admitted page holders when it runs dry (see
    /// the module docs). Models whose eligible sessions are all blocked on
    /// pages are skipped in favour of the next least-recently-served one.
    pub fn next_micro_batch_on(&mut self, now: u64, pool: usize) -> Option<MicroBatch> {
        self.release_arrivals(now);
        // Rank models by least-recently-served; ties (e.g. never-served
        // models) go to the oldest eligible session. Tracking actual service
        // instead of an index into the ever-shifting runnable set means a
        // model that stays runnable is served within one rotation, whatever
        // joins or leaves in between. Under KV pressure a model may have
        // eligible-but-unformable work (everything blocked on pages), so the
        // ranking is a preference order, not a single pick.
        let mut candidates: Vec<(u64, RequestId, usize)> = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(qi, q)| {
                q.decoding
                    .iter()
                    .chain(q.waiting.iter())
                    .filter(|&&id| self.eligible_on(id, now, pool))
                    .map(|&id| id)
                    .min()
                    .map(|oldest| (q.last_served, oldest, qi))
            })
            .collect();
        candidates.sort();
        for (_, _, qi) in candidates {
            let (items, evicted_pages) = self.try_form(now, pool, qi);
            if items.is_empty() {
                continue;
            }
            self.serve_counter += 1;
            self.queues[qi].last_served = self.serve_counter;
            for item in &items {
                self.in_flight.insert(item.id);
            }
            return Some(MicroBatch { model: self.queues[qi].model, items, evicted_pages });
        }
        None
    }

    /// Tries to form a micro-batch for the model of queue `qi` out of KV
    /// pool `pool`, returning the items plus the pages evicted to make room
    /// (empty items = everything eligible is blocked on pages).
    fn try_form(&mut self, now: u64, pool: usize, qi: usize) -> (Vec<BatchItem>, usize) {
        let SchedulerConfig { max_batch, token_budget, prefill_chunk, policy } = self.config;
        let KvConfig { page_tokens, .. } = self.kv;
        let paged = !self.pools.is_empty();
        let mut items: Vec<BatchItem> = Vec::new();
        let mut in_batch: HashSet<RequestId> = HashSet::new();
        let mut tokens = 0usize;
        let mut evicted_pages = 0usize;

        // 1. Decode slots for every in-flight generation, oldest first. A
        // slot needs the session's table to cover one more KV entry; when
        // the pool is short the session preempts strictly-younger page
        // holders, and a session that cannot reclaim enough simply skips
        // this step (the oldest session can always reclaim, so no one
        // starves).
        let decoding: Vec<RequestId> = self.queues[qi]
            .decoding
            .iter()
            .copied()
            .filter(|&id| self.eligible_on(id, now, pool))
            .collect();
        for id in decoding {
            if items.len() >= max_batch || tokens >= token_budget {
                break;
            }
            let s = &self.sessions[id.0 as usize];
            if s.state != SessionState::Decoding {
                continue; // evicted earlier in this very formation
            }
            let context_len = s.kv_len();
            if paged {
                let need = pages_for(context_len + 1, page_tokens);
                if !self.reserve_pages(pool, id, need, &in_batch, &mut evicted_pages) {
                    continue;
                }
            }
            items.push(BatchItem { id, phase: Phase::Decode, tokens: 1, context_len });
            in_batch.insert(id);
            tokens += 1;
        }

        // 2. Prefill chunks with the remaining budget, in policy order. A
        // chunk from a page-holding session (sunk recompute cost) may
        // preempt like a decode slot; a fresh admission defers instead when
        // free pages fall short of its projected need — and defers the rest
        // of the queue with it, so admission keeps strict policy order.
        let mut waiting: Vec<RequestId> = self.queues[qi]
            .waiting
            .iter()
            .copied()
            .filter(|&id| self.eligible_on(id, now, pool))
            .collect();
        if policy == SchedulingPolicy::ShortestPrefillFirst {
            waiting.sort_by_key(|&id| (self.sessions[id.0 as usize].remaining_prefill(), id));
        }
        for id in waiting {
            if items.len() >= max_batch || tokens >= token_budget {
                break;
            }
            if in_batch.contains(&id) {
                continue;
            }
            let s = &self.sessions[id.0 as usize];
            let room = token_budget - tokens;
            let chunk = s.remaining_prefill().min(prefill_chunk).min(room);
            let context_len = s.prefilled_tokens + chunk;
            if paged {
                // The chunk that completes the prefill also emits the first
                // output token, whose KV entry lands in the same table.
                let completes = chunk == s.remaining_prefill();
                let emits = completes && s.first_token_cycle.is_none();
                let need = pages_for(context_len + usize::from(emits), page_tokens);
                if s.page_table.mapped_pages() == 0 {
                    // Fresh admission: defer (never preempt) when free pages
                    // fall short of the projected need.
                    if self.pools[pool].free_pages() < need {
                        break;
                    }
                    let grown = self.sessions[id.0 as usize].page_table.grow(
                        pool,
                        &mut self.pools[pool],
                        need,
                    );
                    debug_assert!(grown, "free pages were just checked");
                } else if !self.reserve_pages(pool, id, need, &in_batch, &mut evicted_pages) {
                    break;
                }
            }
            items.push(BatchItem { id, phase: Phase::Prefill, tokens: chunk, context_len });
            in_batch.insert(id);
            tokens += chunk;
        }

        debug_assert!(tokens <= token_budget, "token budget exceeded");
        self.evicted_pages += evicted_pages as u64;
        (items, evicted_pages)
    }

    /// Grows `id`'s page table to `need` pages out of `pool`, preempting
    /// strictly-younger page holders (most recently admitted first) when the
    /// free list is short. Returns `false` — with nothing evicted and
    /// nothing allocated — if even evicting every eligible victim would not
    /// free enough pages. Victims are planned first and only then committed,
    /// so a failed reclaim has no side effects.
    fn reserve_pages(
        &mut self,
        pool: usize,
        id: RequestId,
        need: usize,
        in_batch: &HashSet<RequestId>,
        evicted_pages: &mut usize,
    ) -> bool {
        let growth = need.saturating_sub(self.sessions[id.0 as usize].page_table.mapped_pages());
        if growth == 0 {
            return true;
        }
        let mut reclaimable = self.pools[pool].free_pages();
        let mut victims: Vec<RequestId> = Vec::new();
        if reclaimable < growth {
            // Most-recently-admitted first: the newest page holders pay,
            // which keeps the oldest session unpreemptable (liveness). Only
            // sessions strictly younger than the requester, not in flight
            // and not already in the forming batch may be evicted. Every
            // page holder is an unfinished, released session, so the model
            // queues enumerate exactly the candidate set — an
            // in-flight-sized scan, not one over every session ever
            // submitted.
            let mut candidates: Vec<RequestId> = self
                .queues
                .iter()
                .flat_map(|q| q.waiting.iter().chain(q.decoding.iter()))
                .copied()
                .filter(|&v| {
                    let s = &self.sessions[v.0 as usize];
                    s.page_table.home() == Some(pool)
                        && v > id
                        && !self.in_flight.contains(&v)
                        && !in_batch.contains(&v)
                })
                .collect();
            candidates.sort_unstable_by(|a, b| b.cmp(a));
            for victim in candidates {
                if reclaimable >= growth {
                    break;
                }
                reclaimable += self.sessions[victim.0 as usize].page_table.mapped_pages();
                victims.push(victim);
            }
            if reclaimable < growth {
                return false;
            }
        }
        for victim in victims {
            let s = &mut self.sessions[victim.0 as usize];
            let lost_tokens = s.kv_len() as u64;
            let mut table = std::mem::take(&mut s.page_table);
            let released = table.release_all(&mut self.pools[pool]);
            s.preempt();
            let model = s.request.model;
            let queue = self
                .queues
                .iter_mut()
                .find(|q| q.model == model)
                .expect("page holders live in a model queue");
            sorted_remove(&mut queue.decoding, victim);
            sorted_insert(&mut queue.waiting, victim);
            self.preempted += 1;
            self.reprefill_tokens += lost_tokens;
            *evicted_pages += released;
        }
        let grown = self.sessions[id.0 as usize].page_table.grow(pool, &mut self.pools[pool], need);
        debug_assert!(grown, "reclaim guaranteed the free pages");
        true
    }

    /// Applies the effects of an executed micro-batch at simulated cycle
    /// `end_cycle`: prefill chunks advance the cached prefix (a completed
    /// *first* prefill emits the first output token; a completed recompute
    /// prefill after a preemption just restores the cache and resumes
    /// decoding), decode slots emit one token each, and sessions that reach
    /// their requested output length finish, retire from their model queue
    /// and release their KV pages. Every session of the batch leaves the
    /// in-flight set and becomes schedulable again at `end_cycle`.
    ///
    /// # Panics
    /// Panics if the batch references an id this scheduler did not issue.
    pub fn complete(&mut self, batch: &MicroBatch, end_cycle: u64) {
        for item in &batch.items {
            let s = &mut self.sessions[item.id.0 as usize];
            match item.phase {
                Phase::Prefill => {
                    s.prefilled_tokens += item.tokens;
                    debug_assert!(s.prefilled_tokens <= s.prefill_target);
                    if s.remaining_prefill() == 0 {
                        if s.first_token_cycle.is_none() {
                            // The prefill step produces the first output
                            // token.
                            s.generated_tokens = 1;
                            s.first_token_cycle = Some(end_cycle);
                            if s.generated_tokens >= s.request.output_tokens {
                                s.state = SessionState::Finished;
                                s.finish_cycle = Some(end_cycle);
                            } else {
                                s.state = SessionState::Decoding;
                            }
                        } else {
                            // Recompute prefill after a preemption: the
                            // cache is restored, decoding resumes, no new
                            // token is emitted.
                            s.state = SessionState::Decoding;
                        }
                    }
                }
                Phase::Decode => {
                    s.generated_tokens += 1;
                    if s.generated_tokens >= s.request.output_tokens {
                        s.state = SessionState::Finished;
                        s.finish_cycle = Some(end_cycle);
                    }
                }
            }
            s.ready_cycle = s.ready_cycle.max(end_cycle);
            let state = s.state;
            if state == SessionState::Finished {
                if let Some(home) = s.page_table.home() {
                    let mut table = std::mem::take(&mut s.page_table);
                    table.release_all(&mut self.pools[home]);
                }
            }
            self.in_flight.remove(&item.id);
            let queue = self
                .queues
                .iter_mut()
                .find(|q| q.model == batch.model)
                .expect("completed batch's model has a queue");
            match state {
                SessionState::Prefilling => {}
                SessionState::Decoding => {
                    if item.phase == Phase::Prefill {
                        // Prefill just completed: move to the decode queue.
                        sorted_remove(&mut queue.waiting, item.id);
                        sorted_insert(&mut queue.decoding, item.id);
                    }
                }
                SessionState::Finished => {
                    sorted_remove(&mut queue.waiting, item.id);
                    sorted_remove(&mut queue.decoding, item.id);
                    self.retired += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(model: ModelId, prompt: usize, output: usize) -> Request {
        Request::new(model, prompt, output)
    }

    #[test]
    fn decode_slots_come_before_prefill_and_budget_is_respected() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 8,
            token_budget: 64,
            prefill_chunk: 32,
            policy: SchedulingPolicy::Fcfs,
        });
        let a = sched.submit(request(ModelId::Llama2_7b, 100, 4));
        let b = sched.submit(request(ModelId::Llama2_7b, 40, 4));
        // First batch: no decodes yet, two prefill chunks (32 + 32 = 64).
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items.len(), 2);
        assert_eq!(batch.total_tokens(), 64);
        assert!(batch.items.iter().all(|i| i.phase == Phase::Prefill));
        assert_eq!(batch.items[0].id, a);
        assert_eq!(batch.items[0].tokens, 32);
        assert_eq!(batch.items[1].id, b);
        assert_eq!(batch.items[1].tokens, 32);
        sched.complete(&batch, 10);
        // b finished its prompt? 40 > 32, so both still prefilling. Second
        // batch continues the chunks.
        let batch2 = sched.next_micro_batch(10).unwrap();
        assert_eq!(batch2.items[0].tokens, 32); // a: 100 - 32 = 68 left, next 32
        assert_eq!(batch2.items[1].tokens, 8); // b: 40 - 32 = 8 left
        sched.complete(&batch2, 20);
        // b's prefill completed: it now holds a decode slot ahead of a's
        // remaining prefill.
        let batch3 = sched.next_micro_batch(20).unwrap();
        assert_eq!(batch3.items[0].id, b);
        assert_eq!(batch3.items[0].phase, Phase::Decode);
        assert_eq!(batch3.items[1].id, a);
        assert_eq!(batch3.items[1].phase, Phase::Prefill);
    }

    #[test]
    fn no_model_starves_while_the_runnable_set_shifts() {
        // Regression for the round-robin starvation bug: the old
        // `round_robin % models.len()` indexed into a runnable-model list
        // whose size and order changed between calls, so a model could be
        // skipped repeatedly. Least-recently-served selection must serve
        // every continuously-runnable model within one rotation, even as
        // late arrivals reshuffle the set.
        let models = [ModelId::Llama2_7b, ModelId::Llama2_13b, ModelId::Llama2_70b];
        let mut sched = Scheduler::new(SchedulerConfig::default());
        for (i, &m) in models.iter().enumerate() {
            sched.submit(request(m, 64, 40));
            // Staggered extra arrivals keep the runnable set shifting.
            sched.submit(Request::new(m, 64, 40).arriving_at(50 * (i as u64 + 1)));
        }
        let mut since_served = vec![0usize; models.len()];
        let mut now = 0;
        for _ in 0..60 {
            let Some(batch) = sched.next_micro_batch(now) else { break };
            for (mi, m) in models.iter().enumerate() {
                if *m == batch.model {
                    since_served[mi] = 0;
                } else {
                    since_served[mi] += 1;
                }
            }
            assert!(
                since_served.iter().all(|&gap| gap <= models.len()),
                "a runnable model waited longer than one rotation: {since_served:?}"
            );
            now += 1;
            sched.complete(&batch, now);
        }
    }

    #[test]
    fn in_flight_sessions_are_not_rescheduled_until_completed() {
        // Two overlapping micro-batches (as a multi-node executor would
        // form) must never share a session; completion frees it again.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let a = sched.submit(request(ModelId::Llama2_7b, 64, 8));
        let b = sched.submit(request(ModelId::Llama2_7b, 64, 8));
        let first = sched.next_micro_batch(0).unwrap();
        assert_eq!(first.items.len(), 2, "both prompts fit one batch");
        assert_eq!(sched.in_flight_count(), 2);
        assert!(sched.next_micro_batch(0).is_none(), "everything runnable is in flight");
        sched.complete(&first, 10);
        assert_eq!(sched.in_flight_count(), 0);
        let second = sched.next_micro_batch(10).unwrap();
        let ids: Vec<RequestId> = second.items.iter().map(|i| i.id).collect();
        assert!(ids.contains(&a) && ids.contains(&b), "completion frees the sessions");
    }

    #[test]
    fn sessions_only_become_runnable_after_their_last_batch_completes() {
        // Causality across nodes: a decode continuation may not be scheduled
        // at a cycle earlier than the completion of the step that produced
        // its input token.
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 4));
        let prefill = sched.next_micro_batch(0).unwrap();
        sched.complete(&prefill, 500);
        assert!(sched.next_micro_batch(100).is_none(), "token only exists at cycle 500");
        assert_eq!(sched.next_arrival_after(100), Some(500));
        assert!(sched.next_micro_batch(500).is_some());
    }

    #[test]
    fn shortest_prefill_first_reorders_waiting_prompts() {
        let mut sched = Scheduler::new(SchedulerConfig {
            max_batch: 2,
            token_budget: 1024,
            prefill_chunk: 512,
            policy: SchedulingPolicy::ShortestPrefillFirst,
        });
        sched.submit(request(ModelId::Llama2_7b, 400, 2));
        let short = sched.submit(request(ModelId::Llama2_7b, 50, 2));
        let batch = sched.next_micro_batch(0).unwrap();
        assert_eq!(batch.items[0].id, short, "shortest prompt admitted first");
    }

    #[test]
    fn models_round_robin_across_micro_batches() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 64, 8));
        sched.submit(request(ModelId::Llama2_70b, 64, 8));
        let first = sched.next_micro_batch(0).unwrap();
        let second = sched.next_micro_batch(0).unwrap();
        assert_ne!(first.model, second.model);
    }

    #[test]
    fn prefill_completion_emits_first_token_and_transitions_to_decode() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let id = sched.submit(request(ModelId::Llama2_7b, 64, 3));
        let batch = sched.next_micro_batch(0).unwrap();
        sched.complete(&batch, 100);
        let s = sched.session(id);
        assert_eq!(s.state, SessionState::Decoding);
        assert_eq!(s.generated_tokens, 1);
        assert_eq!(s.first_token_cycle, Some(100));
        // Two decode steps finish the request.
        for t in [200, 300] {
            let b = sched.next_micro_batch(t - 100).unwrap();
            assert_eq!(b.items[0].phase, Phase::Decode);
            sched.complete(&b, t);
        }
        let s = sched.session(id);
        assert!(s.is_finished());
        assert_eq!(s.generated_tokens, 3);
        assert_eq!(s.finish_cycle, Some(300));
        assert!(sched.all_finished());
        assert!(sched.next_micro_batch(400).is_none());
    }

    #[test]
    fn future_arrivals_wait_and_are_reported() {
        let mut sched = Scheduler::new(SchedulerConfig::default());
        sched.submit(request(ModelId::Llama2_7b, 16, 1).arriving_at(1000));
        assert!(sched.next_micro_batch(0).is_none());
        assert_eq!(sched.next_arrival_after(0), Some(1000));
        assert!(sched.next_micro_batch(1000).is_some());
    }

    #[test]
    fn slices_bucket_decode_contexts_and_keep_prefill_chunks() {
        let batch = MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![
                BatchItem { id: RequestId(0), phase: Phase::Decode, tokens: 1, context_len: 70 },
                BatchItem { id: RequestId(1), phase: Phase::Decode, tokens: 1, context_len: 100 },
                BatchItem { id: RequestId(2), phase: Phase::Decode, tokens: 1, context_len: 300 },
                BatchItem { id: RequestId(3), phase: Phase::Prefill, tokens: 96, context_len: 224 },
            ],
            evicted_pages: 0,
        };
        let slices = batch.slices(128);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0], BatchSlice::decode(2, 128));
        assert_eq!(slices[1], BatchSlice::decode(1, 384));
        assert_eq!(slices[2], BatchSlice::prefill(1, 96).with_kv_len(256));
    }

    #[test]
    fn zero_context_decode_buckets_to_exactly_one_page() {
        // Regression for the bucketing boundary: the page count must
        // saturate at one *before* scaling by the page size, so a
        // zero-context decode occupies exactly one `kv_bucket`-entry page —
        // the same bucket as contexts 1..=kv_bucket — and `kv_bucket + 1`
        // spills into the second page.
        let decode = |context_len| MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![BatchItem {
                id: RequestId(0),
                phase: Phase::Decode,
                tokens: 1,
                context_len,
            }],
            evicted_pages: 0,
        };
        let kv_bucket = 128;
        for (context_len, pages) in [(0, 1), (1, 1), (kv_bucket, 1), (kv_bucket + 1, 2)] {
            let slices = decode(context_len).slices(kv_bucket);
            assert_eq!(
                slices,
                vec![BatchSlice::decode(1, pages * kv_bucket)],
                "context {context_len} must map to {pages} page(s)"
            );
            assert_eq!(crate::kv::pages_for(context_len, kv_bucket), pages);
        }
        // The boundary also holds for prefill KV bucketing.
        let prefill = MicroBatch {
            model: ModelId::Llama2_7b,
            items: vec![BatchItem {
                id: RequestId(0),
                phase: Phase::Prefill,
                tokens: 1,
                context_len: 0,
            }],
            evicted_pages: 0,
        };
        assert_eq!(
            prefill.slices(kv_bucket),
            vec![BatchSlice::prefill(1, 1).with_kv_len(kv_bucket)]
        );
    }

    #[test]
    #[should_panic(expected = "token_budget must be non-zero")]
    fn zero_budget_rejected() {
        Scheduler::new(SchedulerConfig {
            max_batch: 1,
            token_budget: 0,
            prefill_chunk: 1,
            policy: SchedulingPolicy::Fcfs,
        });
    }

    use crate::kv::{AdmissionError, KvConfig};

    /// Drives the scheduler to completion on one pool, checking page
    /// conservation after every step, and returns the number of steps.
    fn drain(sched: &mut Scheduler) -> usize {
        let capacity = sched.kv_capacity_pages();
        let mut now = 0u64;
        let mut steps = 0usize;
        while !sched.all_finished() {
            steps += 1;
            assert!(steps < 10_000, "scheduler failed to drain (livelock)");
            if let Some(batch) = sched.next_micro_batch(now) {
                now += 1;
                sched.complete(&batch, now);
            } else {
                now = sched.next_arrival_after(now).expect("blocked with nothing runnable");
            }
            if let Some(capacity) = capacity {
                let mapped: u64 =
                    sched.sessions().iter().map(|s| s.page_table.mapped_pages() as u64).sum();
                assert_eq!(
                    sched.kv_free_pages(0).unwrap() as u64 + mapped,
                    capacity,
                    "free + mapped must equal capacity after every step"
                );
            }
        }
        steps
    }

    #[test]
    fn decode_growth_preempts_the_most_recently_admitted_holder() {
        // Pool of 4 four-token pages. Two equal requests (prompt 4, output
        // 8) prefill together (2 pages each: context 5 after the emitted
        // first token). Both decode in lockstep until their KV crosses 8
        // entries: the older session (r0) then needs a third page, the pool
        // is dry, and the younger holder (r1) must be evicted, re-prefill
        // its whole 8-entry KV and still finish.
        let mut sched = Scheduler::with_kv(
            SchedulerConfig {
                max_batch: 2,
                token_budget: 8,
                prefill_chunk: 4,
                policy: SchedulingPolicy::Fcfs,
            },
            KvConfig::bounded(4, 4),
        );
        let a = sched.submit(request(ModelId::Llama2_7b, 4, 8));
        let b = sched.submit(request(ModelId::Llama2_7b, 4, 8));
        drain(&mut sched);
        assert!(sched.all_finished());
        assert_eq!(sched.session(a).preemptions, 0, "the oldest session is unpreemptable");
        assert_eq!(sched.session(b).preemptions, 1);
        assert_eq!(sched.preemption_count(), 1);
        assert_eq!(sched.evicted_page_count(), 2, "the victim held two pages");
        assert_eq!(
            sched.reprefill_token_count(),
            8,
            "prompt 4 + 4 generated KV entries recomputed"
        );
        // Token accounting stays exact through the eviction.
        for s in sched.sessions() {
            assert_eq!(s.generated_tokens, s.request.output_tokens);
            assert_eq!(s.page_table.mapped_pages(), 0, "finished sessions hold no pages");
        }
        assert_eq!(sched.kv_free_pages(0), Some(4), "all pages return to the pool");
    }

    #[test]
    fn fresh_prefills_defer_until_pages_free_up() {
        // One page-hungry session (needs 3 of 4 pages at its peak) runs
        // while a second one waits: the second's first chunk must be
        // deferred while free pages fall short of its projected need, and
        // admitted later without any preemption.
        let mut sched = Scheduler::with_kv(
            SchedulerConfig {
                max_batch: 4,
                token_budget: 16,
                prefill_chunk: 8,
                policy: SchedulingPolicy::Fcfs,
            },
            KvConfig::bounded(4, 4),
        );
        sched.submit(request(ModelId::Llama2_7b, 8, 5)); // peak: pages_for(13) = 4 pages
        let late = sched.submit(request(ModelId::Llama2_7b, 8, 2));
        let first = sched.next_micro_batch(0).unwrap();
        // Only the first prompt fits: 8 + 1 emitted token = 3 pages, leaving
        // one free page — short of the second prompt's 3-page need.
        assert_eq!(first.items.len(), 1, "the second prefill must be deferred");
        assert_eq!(first.evicted_pages, 0, "fresh admissions never preempt");
        sched.complete(&first, 1);
        assert_eq!(sched.session(late).prefilled_tokens, 0);
        drain(&mut sched);
        assert!(sched.all_finished());
        assert_eq!(sched.preemption_count(), 0, "deferral suffices for this workload");
    }

    #[test]
    fn try_submit_rejects_on_queue_depth_and_impossible_fits() {
        let mut sched = Scheduler::with_kv(
            SchedulerConfig::default(),
            KvConfig::bounded(4, 8).with_max_live_sessions(2),
        );
        assert!(sched.try_submit(request(ModelId::Llama2_7b, 4, 4)).is_ok());
        assert!(sched.try_submit(request(ModelId::Llama2_7b, 4, 4)).is_ok());
        // Third live session exceeds the depth bound.
        assert_eq!(
            sched.try_submit(request(ModelId::Llama2_7b, 4, 4)),
            Err(AdmissionError::QueueFull { live: 2, bound: 2 })
        );
        // A request that could never fit the pool is rejected outright:
        // pages_for(60 + 8) = 17 > 8.
        let mut roomy = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 8));
        assert_eq!(
            roomy.try_submit(request(ModelId::Llama2_7b, 60, 8)),
            Err(AdmissionError::NeverFits { needed_pages: 17, capacity_pages: 8 })
        );
        assert_eq!(sched.rejected_count(), 1);
        assert_eq!(roomy.rejected_count(), 1);
        // Unbounded schedulers never reject.
        let mut unbounded = Scheduler::new(SchedulerConfig::default());
        assert!(unbounded.try_submit(request(ModelId::Llama2_7b, 100_000, 1000)).is_ok());
    }

    #[test]
    fn never_fits_is_judged_per_node_regardless_of_pool_partition() {
        // Admission must not depend on whether a request is submitted
        // before or after an executor repartitions the pools: the fit check
        // always uses the per-node capacity, so a sharded 4-node aggregate
        // (32 pages) still rejects what one node (8 pages) cannot hold.
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 8));
        sched.configure_kv_pools(1, 4);
        assert_eq!(sched.kv_capacity_pages(), Some(32));
        assert_eq!(
            sched.try_submit(request(ModelId::Llama2_7b, 60, 8)),
            Err(AdmissionError::NeverFits { needed_pages: 17, capacity_pages: 8 })
        );
    }

    #[test]
    #[should_panic(expected = "request rejected")]
    fn infallible_submit_panics_on_rejection() {
        let mut sched = Scheduler::with_kv(
            SchedulerConfig::default(),
            KvConfig::bounded(4, 8).with_max_live_sessions(1),
        );
        sched.submit(request(ModelId::Llama2_7b, 4, 4));
        sched.submit(request(ModelId::Llama2_7b, 4, 4));
    }

    #[test]
    fn pool_repartitioning_scales_capacity_and_guards_mapped_pages() {
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(16, 8));
        assert_eq!(sched.kv_pool_count(), 1);
        sched.configure_kv_pools(4, 1); // data-parallel over 4 nodes
        assert_eq!(sched.kv_pool_count(), 4);
        assert_eq!(sched.kv_capacity_pages(), Some(32));
        sched.configure_kv_pools(1, 4); // sharded across 4 nodes
        assert_eq!(sched.kv_pool_count(), 1);
        assert_eq!(sched.kv_capacity_pages(), Some(32));
        // Unbounded schedulers ignore repartitioning entirely.
        let mut unbounded = Scheduler::new(SchedulerConfig::default());
        unbounded.configure_kv_pools(4, 1);
        assert_eq!(unbounded.kv_pool_count(), 0);
        assert_eq!(unbounded.kv_capacity_pages(), None);
    }

    #[test]
    fn sessions_stay_on_their_home_pool() {
        // Two pools of 4 pages. A session prefilled out of pool 0 must not
        // be schedulable on pool 1, and a fresh session is admissible on
        // either.
        let mut sched = Scheduler::with_kv(SchedulerConfig::default(), KvConfig::bounded(4, 4));
        sched.configure_kv_pools(2, 1);
        let a = sched.submit(request(ModelId::Llama2_7b, 4, 4));
        let b = sched.submit(request(ModelId::Llama2_7b, 4, 4));
        let on_zero = sched.next_micro_batch_on(0, 0).unwrap();
        assert_eq!(on_zero.items.len(), 2, "both prompts fit pool 0");
        sched.complete(&on_zero, 1);
        assert_eq!(sched.session(a).page_table.home(), Some(0));
        assert_eq!(sched.session(b).page_table.home(), Some(0));
        assert!(
            sched.next_micro_batch_on(1, 1).is_none(),
            "homed sessions are not eligible on another node's pool"
        );
        let again = sched.next_micro_batch_on(1, 0).unwrap();
        assert_eq!(again.decode_slots(), 2);
    }
}
