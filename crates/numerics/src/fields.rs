//! Sign / mantissa / exponent field split used by VLP approximation.
//!
//! Section 3.1 of the paper splits a floating-point input `i` into `S-M-E`
//! (sign, mantissa, exponent). The mantissa (rounded to a small number of
//! bits) selects the LUT *row* via a temporal spike, and the exponent selects
//! the element *within* the row via a second temporal spike. This module
//! provides that split plus the clamping behaviour of the `E-proc` block
//! (Section 4, phase 1): exponents below the sliding window underflow to the
//! lowest stored entry, exponents above it saturate in an op-dependent way.

use crate::bf16::Bf16;
use serde::{Deserialize, Serialize};

/// The decomposed representation of a BF16 value used by the VLP datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FloatFields {
    /// Sign bit (`true` = negative).
    pub sign: bool,
    /// Rounded mantissa magnitude (the `M` field), in `[0, 2^mantissa_bits)`.
    pub mantissa: u8,
    /// Number of mantissa bits retained after input approximation.
    pub mantissa_bits: u8,
    /// Unbiased exponent (the `E` field).
    pub exponent: i32,
    /// Whether the source value was exactly zero.
    pub is_zero: bool,
    /// Whether the source value was an IEEE special (NaN / infinity).
    pub special: Option<Special>,
}

/// IEEE special values that the post-processing (PP) block must emit directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// Not-a-number.
    Nan,
    /// Positive or negative infinity (sign carried in [`FloatFields::sign`]).
    Infinity,
}

impl FloatFields {
    /// Splits a BF16 value into S-M-E fields, rounding the mantissa to
    /// `mantissa_bits` bits (Section 3.2 input approximation).
    ///
    /// # Panics
    /// Panics if `mantissa_bits` is zero or greater than 7.
    pub fn split(value: Bf16, mantissa_bits: u8) -> Self {
        assert!(
            (1..=7).contains(&mantissa_bits),
            "mantissa_bits must be in 1..=7, got {mantissa_bits}"
        );
        if value.is_nan() {
            return FloatFields {
                sign: value.sign(),
                mantissa: 0,
                mantissa_bits,
                exponent: 0,
                is_zero: false,
                special: Some(Special::Nan),
            };
        }
        if value.is_infinite() {
            return FloatFields {
                sign: value.sign(),
                mantissa: 0,
                mantissa_bits,
                exponent: 0,
                is_zero: false,
                special: Some(Special::Infinity),
            };
        }
        if value.is_zero() {
            return FloatFields {
                sign: value.sign(),
                mantissa: 0,
                mantissa_bits,
                exponent: 0,
                is_zero: true,
                special: None,
            };
        }
        let rounded = value.round_mantissa(mantissa_bits as u32);
        FloatFields {
            sign: rounded.sign(),
            mantissa: rounded.mantissa() >> (7 - mantissa_bits),
            mantissa_bits,
            exponent: rounded.unbiased_exponent(),
            is_zero: false,
            special: None,
        }
    }

    /// Splits an `f32` by first quantizing it to BF16.
    pub fn split_f32(value: f32, mantissa_bits: u8) -> Self {
        Self::split(Bf16::from_f32(value), mantissa_bits)
    }

    /// Reconstructs the (approximated) value represented by these fields.
    ///
    /// This is the value the VLP LUT is actually indexed with, i.e. the
    /// *input approximation* of the paper: `(-1)^S * (1 + M/2^bits) * 2^E`.
    pub fn reconstruct(&self) -> f32 {
        if let Some(special) = self.special {
            return match special {
                Special::Nan => f32::NAN,
                Special::Infinity => {
                    if self.sign {
                        f32::NEG_INFINITY
                    } else {
                        f32::INFINITY
                    }
                }
            };
        }
        if self.is_zero {
            return if self.sign { -0.0 } else { 0.0 };
        }
        let frac = 1.0 + self.mantissa as f32 / (1u32 << self.mantissa_bits) as f32;
        let mag = frac * 2f32.powi(self.exponent);
        if self.sign {
            -mag
        } else {
            mag
        }
    }

    /// Number of cycles the mantissa temporal spike takes (the spike fires at
    /// cycle `M`, so the row subscription finishes after `M + 1` cycles; the
    /// paper counts the full sweep as `2^bits` cycles).
    pub fn mantissa_spike_cycle(&self) -> u32 {
        self.mantissa as u32
    }

    /// Clamps the exponent into a LUT window `[lo, hi]` following the
    /// `E-proc` rules of Section 4 phase 1: values below the window underflow
    /// to `lo`; values above saturate to `hi` when `saturate_high` is set
    /// (softmax) or pass through unchanged otherwise (SiLU / GELU, where the
    /// post-processing block reproduces the identity-like tail).
    pub fn clamp_exponent(&self, lo: i32, hi: i32, saturate_high: bool) -> ClampedExponent {
        assert!(lo <= hi, "invalid window [{lo}, {hi}]");
        if self.exponent < lo {
            ClampedExponent { exponent: lo, underflowed: true, overflowed: false }
        } else if self.exponent > hi {
            if saturate_high {
                ClampedExponent { exponent: hi, underflowed: false, overflowed: true }
            } else {
                ClampedExponent { exponent: self.exponent, underflowed: false, overflowed: true }
            }
        } else {
            ClampedExponent { exponent: self.exponent, underflowed: false, overflowed: false }
        }
    }
}

/// Result of clamping an exponent into the LUT sliding window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClampedExponent {
    /// The exponent after clamping.
    pub exponent: i32,
    /// Whether the original exponent fell below the window.
    pub underflowed: bool,
    /// Whether the original exponent fell above the window.
    pub overflowed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_positive_value() {
        // 6.5 = 1.625 * 2^2 -> with 3 mantissa bits: 1.101b, M = 5, E = 2.
        let f = FloatFields::split_f32(6.5, 3);
        assert!(!f.sign);
        assert_eq!(f.mantissa, 5);
        assert_eq!(f.exponent, 2);
        assert_eq!(f.reconstruct(), 6.5);
    }

    #[test]
    fn split_negative_value() {
        let f = FloatFields::split_f32(-0.375, 3); // -1.5 * 2^-2
        assert!(f.sign);
        assert_eq!(f.mantissa, 4);
        assert_eq!(f.exponent, -2);
        assert_eq!(f.reconstruct(), -0.375);
    }

    #[test]
    fn reconstruction_error_is_bounded_by_rounding() {
        for &v in &[0.1f32, 0.77, 1.3, 2.9, 5.11, 100.3, -0.02, -9.9] {
            let f = FloatFields::split_f32(v, 3);
            let r = f.reconstruct();
            // 3-bit mantissa: relative error at most 2^-4 plus BF16 error.
            assert!(((r - v) / v).abs() <= 0.07, "value {v} reconstructed as {r}");
        }
    }

    #[test]
    fn zero_and_specials() {
        assert!(FloatFields::split_f32(0.0, 3).is_zero);
        assert_eq!(FloatFields::split_f32(f32::INFINITY, 3).special, Some(Special::Infinity));
        assert_eq!(FloatFields::split_f32(f32::NAN, 3).special, Some(Special::Nan));
        assert!(FloatFields::split_f32(f32::NAN, 3).reconstruct().is_nan());
        assert_eq!(FloatFields::split_f32(f32::NEG_INFINITY, 3).reconstruct(), f32::NEG_INFINITY);
    }

    #[test]
    fn clamping_rules() {
        let f = FloatFields::split_f32(2f32.powi(10), 3); // exponent 10
        let c = f.clamp_exponent(-3, 4, true);
        assert_eq!(c.exponent, 4);
        assert!(c.overflowed);
        let c = f.clamp_exponent(-3, 4, false);
        assert_eq!(c.exponent, 10);
        assert!(c.overflowed);
        let g = FloatFields::split_f32(2f32.powi(-9), 3);
        let c = g.clamp_exponent(-3, 4, true);
        assert_eq!(c.exponent, -3);
        assert!(c.underflowed);
        let inside = FloatFields::split_f32(2.0, 3).clamp_exponent(-3, 4, true);
        assert!(!inside.underflowed && !inside.overflowed);
    }

    #[test]
    fn mantissa_spike_cycle_equals_mantissa() {
        let f = FloatFields::split_f32(1.75, 3); // 1.110b -> M = 6
        assert_eq!(f.mantissa_spike_cycle(), 6);
    }

    #[test]
    #[should_panic(expected = "mantissa_bits must be in 1..=7")]
    fn rejects_invalid_mantissa_bits() {
        FloatFields::split_f32(1.0, 0);
    }
}
