//! Software FP8 (E4M3 and E5M2) formats.
//!
//! The original Carat design (the prior VLP architecture Mugi extends) only
//! supports FP8 activations and weights. We implement both common FP8 variants
//! so that the Carat baseline in `mugi-arch` can be modelled faithfully and so
//! the format-customization argument of Section 4.2 (BF16 inputs would need a
//! 128-cycle temporal signal on Carat's 7-bit mantissa path) can be
//! demonstrated numerically.

use std::fmt;

/// Which FP8 encoding to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fp8Format {
    /// 1 sign bit, 4 exponent bits, 3 mantissa bits (bias 7). Higher precision,
    /// smaller range; the usual choice for activations/weights.
    E4M3,
    /// 1 sign bit, 5 exponent bits, 2 mantissa bits (bias 15). Wider range,
    /// usually used for gradients.
    E5M2,
}

impl Fp8Format {
    /// Number of mantissa bits.
    pub const fn mantissa_bits(self) -> u32 {
        match self {
            Fp8Format::E4M3 => 3,
            Fp8Format::E5M2 => 2,
        }
    }

    /// Number of exponent bits.
    pub const fn exponent_bits(self) -> u32 {
        match self {
            Fp8Format::E4M3 => 4,
            Fp8Format::E5M2 => 5,
        }
    }

    /// Exponent bias.
    pub const fn bias(self) -> i32 {
        match self {
            Fp8Format::E4M3 => 7,
            Fp8Format::E5M2 => 15,
        }
    }

    /// Largest finite magnitude representable in this format.
    pub fn max_value(self) -> f32 {
        match self {
            // E4M3 (OCP variant) tops out at 448.
            Fp8Format::E4M3 => 448.0,
            Fp8Format::E5M2 => 57344.0,
        }
    }
}

/// An 8-bit floating point value.
///
/// ```
/// use mugi_numerics::fp8::{Fp8, Fp8Format};
/// let x = Fp8::from_f32(1.7, Fp8Format::E4M3);
/// assert!((x.to_f32() - 1.75).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp8 {
    bits: u8,
    format: Fp8Format,
}

impl Fp8 {
    /// Creates an FP8 value from raw bits.
    pub const fn from_bits(bits: u8, format: Fp8Format) -> Self {
        Fp8 { bits, format }
    }

    /// Raw bit pattern.
    pub const fn to_bits(self) -> u8 {
        self.bits
    }

    /// The encoding of this value.
    pub const fn format(self) -> Fp8Format {
        self.format
    }

    /// Sign bit.
    pub const fn sign(self) -> bool {
        self.bits >> 7 == 1
    }

    /// Raw mantissa field.
    pub fn mantissa(self) -> u8 {
        self.bits & ((1 << self.format.mantissa_bits()) - 1) as u8
    }

    /// Raw biased exponent field.
    pub fn biased_exponent(self) -> u8 {
        (self.bits >> self.format.mantissa_bits()) & ((1 << self.format.exponent_bits()) - 1) as u8
    }

    /// Converts from `f32`, saturating to the maximum finite magnitude
    /// (matching common accelerator behaviour) and flushing subnormal results
    /// to the nearest representable subnormal.
    pub fn from_f32(value: f32, format: Fp8Format) -> Self {
        let m_bits = format.mantissa_bits();
        let bias = format.bias();
        if value.is_nan() {
            // Canonical NaN: all exponent bits and all mantissa bits set
            // (E4M3 reserves only the all-ones mantissa for NaN).
            let exp_mask = ((1u8 << format.exponent_bits()) - 1) << m_bits;
            let mant_mask = (1u8 << m_bits) - 1;
            return Fp8 { bits: exp_mask | mant_mask, format };
        }
        let sign = if value.is_sign_negative() { 1u8 << 7 } else { 0 };
        let mag = value.abs();
        if mag == 0.0 {
            return Fp8 { bits: sign, format };
        }
        let max = format.max_value();
        if mag >= max {
            // Saturate to the largest finite encoding.
            let bits = match format {
                // E4M3: exponent 0b1111 with mantissa 0b110 (0b111 is NaN).
                Fp8Format::E4M3 => 0b0111_1110,
                // E5M2: exponent 0b11110 with mantissa 0b11 (0b11111 is inf/NaN).
                Fp8Format::E5M2 => 0b0111_1011,
            };
            return Fp8 { bits: sign | bits, format };
        }
        // Decompose into exponent and mantissa. The largest normal biased
        // exponent is all-ones for E4M3 (which shares the top exponent with
        // NaN) and all-ones-minus-one for E5M2 (whose top exponent encodes
        // inf/NaN exclusively).
        let max_normal_exp = match format {
            Fp8Format::E4M3 => (1 << format.exponent_bits()) - 1 - bias,
            Fp8Format::E5M2 => (1 << format.exponent_bits()) - 2 - bias,
        };
        let exp = (mag.log2().floor() as i32).clamp(1 - bias, max_normal_exp);
        let biased = exp + bias;
        let (biased, frac) = if mag < 2f32.powi(1 - bias) {
            // Subnormal: exponent field zero, value = frac * 2^(1-bias).
            (0, mag / 2f32.powi(1 - bias))
        } else {
            (biased, mag / 2f32.powi(exp) - 1.0)
        };
        let scale = (1u32 << m_bits) as f32;
        let mut mant = (frac * scale).round() as u32;
        let mut biased = biased as u32;
        if mant >= scale as u32 {
            // Mantissa rounding overflowed into the next binade.
            mant = 0;
            biased += 1;
        }
        // If rounding pushed us into the inf/NaN encodings, saturate back to
        // the largest finite value (we already checked mag < max_value()).
        let finite_limit = match format {
            Fp8Format::E4M3 => (0b1111u32, 0b110u32),
            Fp8Format::E5M2 => (0b11110u32, 0b11u32),
        };
        if biased > finite_limit.0 || (biased == finite_limit.0 && mant > finite_limit.1) {
            biased = finite_limit.0;
            mant = finite_limit.1;
        }
        Fp8 { bits: sign | ((biased as u8) << m_bits) | mant as u8, format }
    }

    /// Converts to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let m_bits = self.format.mantissa_bits();
        let bias = self.format.bias();
        let sign = if self.sign() { -1.0 } else { 1.0 };
        let e = self.biased_exponent() as i32;
        let m = self.mantissa() as f32 / (1u32 << m_bits) as f32;
        let exp_max = (1 << self.format.exponent_bits()) - 1;
        if self.format == Fp8Format::E5M2 && e == exp_max {
            return if self.mantissa() == 0 { sign * f32::INFINITY } else { f32::NAN };
        }
        if self.format == Fp8Format::E4M3 && e == exp_max && self.mantissa() == 0b111 {
            return f32::NAN;
        }
        if e == 0 {
            sign * m * 2f32.powi(1 - bias)
        } else {
            sign * (1.0 + m) * 2f32.powi(e - bias)
        }
    }

    /// Whether this is a NaN encoding.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }
}

impl fmt::Debug for Fp8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp8({:?}, {})", self.format, self.to_f32())
    }
}

impl fmt::Display for Fp8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Quantization error (absolute) introduced by representing `value` in FP8.
pub fn quantization_error(value: f32, format: Fp8Format) -> f32 {
    (Fp8::from_f32(value, format).to_f32() - value).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representable_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 1.5, 2.0, -3.5, 0.0625, 448.0] {
            let x = Fp8::from_f32(v, Fp8Format::E4M3);
            assert_eq!(x.to_f32(), v, "value {v}");
        }
        for v in [0.0f32, 1.0, -1.0, 0.5, 1.5, 2.0, -3.0, 57344.0] {
            let x = Fp8::from_f32(v, Fp8Format::E5M2);
            assert_eq!(x.to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn saturates_at_max() {
        let x = Fp8::from_f32(1e6, Fp8Format::E4M3);
        assert_eq!(x.to_f32(), 448.0);
        let y = Fp8::from_f32(-1e6, Fp8Format::E4M3);
        assert_eq!(y.to_f32(), -448.0);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(Fp8::from_f32(f32::NAN, Fp8Format::E4M3).is_nan());
        assert!(Fp8::from_f32(f32::NAN, Fp8Format::E5M2).is_nan());
    }

    #[test]
    fn rounding_is_close() {
        for &v in &[0.1f32, 0.3, 0.7, 1.1, 2.3, 5.7, 13.3, 100.0] {
            let x = Fp8::from_f32(v, Fp8Format::E4M3).to_f32();
            // E4M3 has 3 mantissa bits -> relative error bounded by 2^-4 = 6.25%.
            assert!((x - v).abs() / v <= 0.0625 + 1e-6, "value {v} quantized to {x}");
        }
    }

    #[test]
    fn subnormals_round_trip_small_values() {
        let tiny = 2f32.powi(-8); // below the E4M3 normal range start (2^-6)
        let x = Fp8::from_f32(tiny, Fp8Format::E4M3);
        assert!(x.to_f32() > 0.0);
        assert!((x.to_f32() - tiny).abs() <= 2f32.powi(-9));
    }

    #[test]
    fn field_extraction() {
        let x = Fp8::from_f32(1.5, Fp8Format::E4M3);
        assert!(!x.sign());
        assert_eq!(x.biased_exponent() as i32 - Fp8Format::E4M3.bias(), 0);
        assert_eq!(x.mantissa(), 0b100);
    }
}
