//! Weight-only quantization (WOQ) and KV-cache quantization (KVQ).
//!
//! Section 2.3.2/2.3.3 of the paper: LLM weights and KV-cache entries are
//! quantized to INT4 with per-group scales while activations / query tokens
//! stay in BF16, producing the asymmetric BF16–INT4 GEMM that Mugi's array is
//! customised for. This module implements both quantizers plus dequantization
//! (the paper performs dequantization in the vector array after the GEMM).

use crate::bf16::Bf16;
use crate::int4::Int4;
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// How the zero point is chosen when quantizing a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantScheme {
    /// Symmetric quantization: zero maps to zero, scale = max|x| / 7.
    Symmetric,
    /// Asymmetric quantization: full `[min, max]` range mapped onto `[-8, 7]`.
    Asymmetric,
}

/// A group of INT4 values with its dequantization parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantGroup {
    /// Quantized values.
    pub values: Vec<Int4>,
    /// Scale factor (BF16-representable, as stored by real WOQ kernels).
    pub scale: f32,
    /// Zero point in the *real* domain: `x ≈ scale * q + zero_point`.
    pub zero_point: f32,
}

impl QuantGroup {
    /// Dequantizes the group back to `f32`.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|q| self.scale * q.to_f32() + self.zero_point).collect()
    }
}

/// A matrix quantized group-wise along its rows (each group covers
/// `group_size` consecutive elements within a row).
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    group_size: usize,
    scheme: QuantScheme,
    groups: Vec<QuantGroup>,
}

impl QuantizedMatrix {
    /// Quantizes `matrix` with per-row groups of `group_size` elements.
    ///
    /// # Panics
    /// Panics if `group_size` is zero.
    pub fn quantize(matrix: &Matrix, group_size: usize, scheme: QuantScheme) -> Self {
        assert!(group_size > 0, "group_size must be non-zero");
        let mut groups = Vec::new();
        for r in 0..matrix.rows() {
            let row = matrix.row(r);
            for chunk in row.chunks(group_size) {
                groups.push(quantize_group(chunk, scheme));
            }
        }
        QuantizedMatrix { rows: matrix.rows(), cols: matrix.cols(), group_size, scheme, groups }
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Group size used at quantization time.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Quantization scheme used.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// All quantization groups in row-major order.
    pub fn groups(&self) -> &[QuantGroup] {
        &self.groups
    }

    /// Reconstructs the dequantized matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for group in &self.groups {
            data.extend(group.dequantize());
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Memory footprint in bits, counting 4 bits per value plus one BF16 scale
    /// and (for asymmetric) one BF16 zero point per group. Used by the
    /// memory-traffic model in `mugi-arch`.
    pub fn footprint_bits(&self) -> usize {
        let value_bits = self.rows * self.cols * 4;
        let per_group_meta = match self.scheme {
            QuantScheme::Symmetric => 16,
            QuantScheme::Asymmetric => 32,
        };
        value_bits + self.groups.len() * per_group_meta
    }
}

fn quantize_group(values: &[f32], scheme: QuantScheme) -> QuantGroup {
    match scheme {
        QuantScheme::Symmetric => {
            let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 7.0 };
            let scale = Bf16::from_f32(scale).to_f32();
            let q = values.iter().map(|&v| Int4::from_f32_saturating(v / scale)).collect();
            QuantGroup { values: q, scale, zero_point: 0.0 }
        }
        QuantScheme::Asymmetric => {
            let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let (min, max) =
                if min.is_finite() && max.is_finite() { (min, max) } else { (0.0, 0.0) };
            let range = (max - min).max(f32::MIN_POSITIVE);
            let scale = Bf16::from_f32(range / 15.0).to_f32();
            // q in [-8, 7]; x = scale*q + zero_point with zero_point chosen so
            // q=-8 maps to min.
            let zero_point = Bf16::from_f32(min + 8.0 * scale).to_f32();
            let q = values
                .iter()
                .map(|&v| Int4::from_f32_saturating((v - zero_point) / scale))
                .collect();
            QuantGroup { values: q, scale, zero_point }
        }
    }
}

/// Weight-only quantization with the group size commonly used by GPTQ/AWQ-style
/// kernels (128) unless overridden. Weights are quantized symmetrically.
pub fn weight_only_quantize(weights: &Matrix, group_size: usize) -> QuantizedMatrix {
    QuantizedMatrix::quantize(weights, group_size, QuantScheme::Symmetric)
}

/// KV-cache quantization: each token's key/value vector is a group, quantized
/// asymmetrically (KV caches have strong per-channel offsets).
pub fn kv_cache_quantize(kv: &Matrix, group_size: usize) -> QuantizedMatrix {
    QuantizedMatrix::quantize(kv, group_size, QuantScheme::Asymmetric)
}

/// Root-mean-square quantization error of a quantized matrix against its
/// source, used by the accuracy experiments and tests.
pub fn quantization_rmse(original: &Matrix, quantized: &QuantizedMatrix) -> f32 {
    let deq = quantized.dequantize();
    let mut acc = 0.0f64;
    for (a, b) in original.data().iter().zip(deq.data()) {
        acc += ((a - b) as f64).powi(2);
    }
    (acc / original.data().len() as f64).sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::pseudo_random_matrix;

    #[test]
    fn symmetric_round_trip_of_exact_grid() {
        // Values already on the INT4 grid with scale 1 round-trip exactly.
        let m = Matrix::from_rows(&[&[-8.0, -3.0, 0.0, 7.0]]);
        let q = QuantizedMatrix::quantize(&m, 4, QuantScheme::Symmetric);
        // scale = 8/7 here so not exact; use a grid scaled by 7 instead.
        let m = Matrix::from_rows(&[&[-7.0, -3.0, 0.0, 7.0]]);
        let q2 = QuantizedMatrix::quantize(&m, 4, QuantScheme::Symmetric);
        assert_eq!(q2.dequantize(), m);
        assert_eq!(q.rows(), 1);
    }

    #[test]
    fn symmetric_error_bounded_by_half_scale() {
        let m = pseudo_random_matrix(8, 64, 1, 2.5);
        let q = weight_only_quantize(&m, 32);
        let deq = q.dequantize();
        for (group_idx, group) in q.groups().iter().enumerate() {
            for (i, _) in group.values.iter().enumerate() {
                let flat = group_idx * 32 + i;
                let (r, c) = (flat / 64, flat % 64);
                let err = (m[(r, c)] - deq[(r, c)]).abs();
                assert!(
                    err <= group.scale * 0.51 + 1e-4,
                    "error {err} exceeds half scale {}",
                    group.scale
                );
            }
        }
    }

    #[test]
    fn asymmetric_handles_offset_distributions() {
        // A distribution centred far from zero (like a KV cache channel).
        let m = Matrix::from_fn(4, 32, |_, c| 10.0 + 0.05 * c as f32);
        let sym = QuantizedMatrix::quantize(&m, 32, QuantScheme::Symmetric);
        let asym = kv_cache_quantize(&m, 32);
        assert!(
            quantization_rmse(&m, &asym) < quantization_rmse(&m, &sym),
            "asymmetric must beat symmetric on offset data"
        );
    }

    #[test]
    fn footprint_accounts_for_groups() {
        let m = pseudo_random_matrix(4, 128, 3, 1.0);
        let q = weight_only_quantize(&m, 128);
        // 4*128 values * 4 bits + 4 groups * 16 bits.
        assert_eq!(q.footprint_bits(), 4 * 128 * 4 + 4 * 16);
        let q = kv_cache_quantize(&m, 128);
        assert_eq!(q.footprint_bits(), 4 * 128 * 4 + 4 * 32);
    }

    #[test]
    fn kvq_compression_ratio_vs_bf16_is_near_4x() {
        let m = pseudo_random_matrix(16, 1024, 5, 1.0);
        let q = kv_cache_quantize(&m, 128);
        let bf16_bits = 16 * 1024 * 16;
        let ratio = bf16_bits as f32 / q.footprint_bits() as f32;
        assert!(ratio > 3.5 && ratio < 4.1, "ratio {ratio}");
    }

    #[test]
    fn constant_group_quantizes_losslessly_symmetric_zero() {
        let m = Matrix::from_rows(&[&[0.0, 0.0, 0.0, 0.0]]);
        let q = weight_only_quantize(&m, 4);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn dequantized_shape_matches() {
        let m = pseudo_random_matrix(5, 37, 9, 1.0);
        let q = weight_only_quantize(&m, 8);
        let d = q.dequantize();
        assert_eq!(d.rows(), 5);
        assert_eq!(d.cols(), 37);
        assert_eq!(q.group_size(), 8);
        assert_eq!(q.scheme(), QuantScheme::Symmetric);
    }

    #[test]
    #[should_panic(expected = "group_size must be non-zero")]
    fn zero_group_size_rejected() {
        let m = Matrix::zeros(1, 4);
        let _ = QuantizedMatrix::quantize(&m, 0, QuantScheme::Symmetric);
    }
}
