//! Error metrics used throughout the accuracy experiments (Figures 6–8).

/// Maximum absolute error between two slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn max_abs_error(reference: &[f32], approx: &[f32]) -> f32 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    reference.iter().zip(approx).map(|(r, a)| (r - a).abs()).fold(0.0, f32::max)
}

/// Mean absolute error between two slices.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_abs_error(reference: &[f32], approx: &[f32]) -> f32 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty input");
    let sum: f64 = reference.iter().zip(approx).map(|(r, a)| (r - a).abs() as f64).sum();
    (sum / reference.len() as f64) as f32
}

/// Root-mean-square error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rmse(reference: &[f32], approx: &[f32]) -> f32 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty input");
    let sum: f64 = reference.iter().zip(approx).map(|(r, a)| ((r - a) as f64).powi(2)).sum();
    ((sum / reference.len() as f64).sqrt()) as f32
}

/// Relative error of a single approximation, with the paper's convention that
/// a flushed-to-zero output counts as 100% (−1.0) error and a zero reference
/// with a non-zero output counts as +100%.
pub fn relative_error(reference: f32, approx: f32) -> f32 {
    if reference == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (approx - reference) / reference.abs()
    }
}

/// Mean relative error magnitude across a slice (ignoring zero references).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mean_relative_error(reference: &[f32], approx: &[f32]) -> f32 {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (&r, &a) in reference.iter().zip(approx) {
        if r != 0.0 {
            sum += ((a - r) / r).abs() as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

/// Kullback–Leibler divergence `KL(p || q)` between two discrete
/// distributions. Entries of `q` are floored at `1e-12` to avoid infinities;
/// `p` entries of zero contribute nothing.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let mut acc = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            acc += pi as f64 * ((pi as f64) / (qi.max(1e-12) as f64)).ln();
        }
    }
    acc as f32
}

/// Cross-entropy `H(p, q) = -Σ p log q` in nats, with the same flooring as
/// [`kl_divergence`]. Used by the proxy-perplexity evaluation.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn cross_entropy(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let mut acc = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            acc -= pi as f64 * (qi.max(1e-12) as f64).ln();
        }
    }
    acc as f32
}

/// Perplexity from an average cross-entropy (nats per token).
pub fn perplexity_from_nats(mean_cross_entropy_nats: f32) -> f32 {
    mean_cross_entropy_nats.exp()
}

/// Aggregate error statistics for a reference/approximation pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorSummary {
    /// Maximum absolute error.
    pub max_abs: f32,
    /// Mean absolute error.
    pub mean_abs: f32,
    /// Root-mean-square error.
    pub rmse: f32,
    /// Mean relative error magnitude (zero references skipped).
    pub mean_rel: f32,
}

impl ErrorSummary {
    /// Computes all summary statistics at once.
    ///
    /// # Panics
    /// Panics if the slices have different lengths or are empty.
    pub fn compare(reference: &[f32], approx: &[f32]) -> Self {
        ErrorSummary {
            max_abs: max_abs_error(reference, approx),
            mean_abs: mean_abs_error(reference, approx),
            rmse: rmse(reference, approx),
            mean_rel: mean_relative_error(reference, approx),
        }
    }
}

impl std::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max_abs={:.4e} mean_abs={:.4e} rmse={:.4e} mean_rel={:.3}%",
            self.max_abs,
            self.mean_abs,
            self.rmse,
            self.mean_rel * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical_slices() {
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(max_abs_error(&x, &x), 0.0);
        assert_eq!(mean_abs_error(&x, &x), 0.0);
        assert_eq!(rmse(&x, &x), 0.0);
        assert_eq!(mean_relative_error(&x, &x), 0.0);
    }

    #[test]
    fn known_errors() {
        let r = vec![1.0, 2.0, 4.0];
        let a = vec![1.5, 2.0, 3.0];
        assert!((max_abs_error(&r, &a) - 1.0).abs() < 1e-6);
        assert!((mean_abs_error(&r, &a) - 0.5).abs() < 1e-6);
        let expected_rmse = ((0.25 + 0.0 + 1.0f32) / 3.0).sqrt();
        assert!((rmse(&r, &a) - expected_rmse).abs() < 1e-6);
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(2.0, 1.0), -0.5);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 0.5), 1.0);
        assert_eq!(relative_error(2.0, 0.0), -1.0);
        assert_eq!(relative_error(-2.0, -3.0), -0.5);
    }

    #[test]
    fn kl_and_cross_entropy() {
        let p = vec![0.5, 0.5];
        let q = vec![0.5, 0.5];
        assert!(kl_divergence(&p, &q).abs() < 1e-6);
        // H(p, p) equals the entropy of p.
        assert!((cross_entropy(&p, &p) - std::f32::consts::LN_2).abs() < 1e-6);
        // KL is non-negative and grows as q diverges.
        let q2 = vec![0.9, 0.1];
        assert!(kl_divergence(&p, &q2) > 0.0);
        assert!(kl_divergence(&p, &q2) > kl_divergence(&p, &q));
    }

    #[test]
    fn perplexity_identity() {
        assert!((perplexity_from_nats(0.0) - 1.0).abs() < 1e-6);
        assert!((perplexity_from_nats(std::f32::consts::LN_2) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn summary_display_and_fields() {
        let r = vec![1.0, 2.0];
        let a = vec![1.1, 1.9];
        let s = ErrorSummary::compare(&r, &a);
        assert!(s.max_abs > 0.0 && s.rmse > 0.0 && s.mean_rel > 0.0);
        let text = s.to_string();
        assert!(text.contains("rmse"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        max_abs_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_rejected() {
        mean_abs_error(&[], &[]);
    }
}
