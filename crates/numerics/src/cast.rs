//! Checked numeric conversions for cycle/byte counter arithmetic.
//!
//! The serving simulator accumulates cycle counts, KV byte volumes and page
//! counters across million-request runs; a silently wrapping `as` cast on
//! any of these would corrupt the accounting long before a test noticed. The
//! helpers here are the sanctioned replacements the workspace linter
//! (`mugi-lint`, rule `lossy-cast`) steers bare `as` casts toward: each one
//! is a plain conversion on the happy path — bit-identical to the `as` cast
//! it replaces for every in-range value — and panics loudly on the
//! out-of-range values `as` would truncate, saturate or wrap.
//!
//! All helpers are `#[inline]` and compile to no-ops (or a compare-and-trap)
//! on 64-bit targets, so they are safe to use in the hot path.

/// Largest `u64` a `f64` can represent exactly (2^53): beyond it, integer
/// counters lose precision when routed through a float.
pub const MAX_EXACT_F64_INT: u64 = 1 << 53;

/// `u64` → `usize` without silent truncation (a no-op on 64-bit targets).
///
/// # Panics
/// Panics if `x` does not fit a `usize` (only possible on 32-bit targets).
#[inline]
pub fn usize_from_u64(x: u64) -> usize {
    usize::try_from(x).expect("u64 counter exceeds usize on this target")
}

/// `usize` → `u64` (infallible on every supported target, but proven by
/// `try_from` rather than assumed by `as`).
///
/// # Panics
/// Panics if `usize` is wider than 64 bits (no supported target).
#[inline]
pub fn u64_from_usize(x: usize) -> u64 {
    u64::try_from(x).expect("usize wider than 64 bits")
}

/// `usize` → `u32` without silent truncation.
///
/// # Panics
/// Panics if `x` does not fit a `u32`.
#[inline]
pub fn u32_from_usize(x: usize) -> u32 {
    u32::try_from(x).expect("counter exceeds u32")
}

/// `u32` → `usize` (infallible on every supported target, but proven by
/// `try_from` rather than assumed by `as`).
///
/// # Panics
/// Panics if `usize` is narrower than 32 bits (no supported target).
#[inline]
pub fn usize_from_u32(x: u32) -> usize {
    usize::try_from(x).expect("usize narrower than 32 bits")
}

/// `f64` → `u64` for a value that must already be an exact non-negative
/// integer in the `f64`-exact range (e.g. the output of `round`/`ceil` on a
/// bounded quantity). Unlike `as`, which saturates and maps NaN to zero,
/// this panics on anything out of range.
///
/// # Panics
/// Panics if `x` is NaN, negative, or above 2^53.
#[inline]
pub fn u64_from_f64(x: f64) -> u64 {
    assert!(
        x >= 0.0 && x <= MAX_EXACT_F64_INT as f64,
        "float {x} out of exact u64 range (NaN, negative, or above 2^53)"
    );
    x as u64
}

/// `f64` → `usize` with the same contract as [`u64_from_f64`].
///
/// # Panics
/// Panics if `x` is NaN, negative, above 2^53, or above `usize::MAX`.
#[inline]
pub fn usize_from_f64(x: f64) -> usize {
    usize_from_u64(u64_from_f64(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_match_the_as_cast_they_replace() {
        for v in [0u64, 1, 4096, u32::MAX as u64, MAX_EXACT_F64_INT] {
            assert_eq!(usize_from_u64(v), v as usize);
            assert_eq!(u64_from_usize(v as usize), v);
        }
        for f in [0.0f64, 1.0, 2.5f64.round(), 1e15f64.ceil()] {
            assert_eq!(u64_from_f64(f), f as u64);
            assert_eq!(usize_from_f64(f), f as usize);
        }
        assert_eq!(u32_from_usize(123), 123);
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "out of exact u64 range")]
    fn negative_float_panics_instead_of_saturating() {
        u64_from_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "out of exact u64 range")]
    fn nan_panics_instead_of_becoming_zero() {
        u64_from_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of exact u64 range")]
    fn beyond_exact_range_panics() {
        u64_from_f64(2.0 * MAX_EXACT_F64_INT as f64);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn u32_narrowing_panics() {
        u32_from_usize(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
