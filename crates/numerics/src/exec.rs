//! Execution context for the software kernels: how many worker threads a
//! kernel may spawn and which cache-tile size it blocks loops with.
//!
//! The context is *threaded through* the execution path rather than read from
//! a global: the serving runtime builds one per deployment, hands it to
//! [`MugiAccelerator`](../../mugi/struct.MugiAccelerator.html), which passes it
//! down to the VLP GEMM engines and finally to
//! [`Matrix::matmul_with`](crate::tensor::Matrix::matmul_with). Every kernel
//! driven by a context produces output that is bit-identical to the
//! single-threaded reference, so the context only changes *how fast* an
//! answer is computed, never *which* answer.

use serde::{Deserialize, Serialize};

/// Thread count and cache-tile size used by the blocked GEMM kernel.
///
/// ```
/// use mugi_numerics::exec::ExecutionContext;
/// let ctx = ExecutionContext::with_threads(4);
/// assert_eq!(ctx.threads(), 4);
/// assert_eq!(ctx.tile(), ExecutionContext::DEFAULT_TILE);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutionContext {
    threads: usize,
    tile: usize,
}

impl ExecutionContext {
    /// Default cache-tile edge (elements per blocked dimension). 64×64 f32
    /// tiles (16 KiB for one operand tile) fit comfortably in an L1 data
    /// cache alongside the accumulator rows.
    pub const DEFAULT_TILE: usize = 64;

    /// Creates a context with an explicit thread count and tile size.
    ///
    /// # Panics
    /// Panics if `threads` or `tile` is zero.
    pub fn new(threads: usize, tile: usize) -> Self {
        assert!(threads > 0, "threads must be non-zero");
        assert!(tile > 0, "tile must be non-zero");
        ExecutionContext { threads, tile }
    }

    /// A single-threaded context with the default tile size. This is what
    /// [`Matrix::matmul`](crate::tensor::Matrix::matmul) uses implicitly.
    pub fn single_threaded() -> Self {
        ExecutionContext::new(1, Self::DEFAULT_TILE)
    }

    /// A context with `threads` workers and the default tile size.
    pub fn with_threads(threads: usize) -> Self {
        ExecutionContext::new(threads, Self::DEFAULT_TILE)
    }

    /// A context sized to the host: one worker per available hardware thread
    /// (falling back to one when the parallelism cannot be queried).
    pub fn host_parallel() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ExecutionContext::with_threads(threads)
    }

    /// Number of worker threads a kernel may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache-tile edge length used by blocked loops.
    pub fn tile(&self) -> usize {
        self.tile
    }
}

impl Default for ExecutionContext {
    fn default() -> Self {
        ExecutionContext::single_threaded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let ctx = ExecutionContext::new(3, 32);
        assert_eq!(ctx.threads(), 3);
        assert_eq!(ctx.tile(), 32);
        assert_eq!(ExecutionContext::default(), ExecutionContext::single_threaded());
        assert_eq!(ExecutionContext::with_threads(2).tile(), ExecutionContext::DEFAULT_TILE);
        assert!(ExecutionContext::host_parallel().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "threads must be non-zero")]
    fn zero_threads_rejected() {
        ExecutionContext::new(0, 64);
    }

    #[test]
    #[should_panic(expected = "tile must be non-zero")]
    fn zero_tile_rejected() {
        ExecutionContext::new(1, 0);
    }
}
