//! Software implementation of the bfloat16 (BF16) format.
//!
//! BF16 is the activation / query format the paper assumes for LLM inference
//! (Section 2.3.2): 1 sign bit, 8 exponent bits, 7 mantissa bits — i.e. the top
//! 16 bits of an IEEE-754 `f32`. The Mugi architecture splits a BF16 input into
//! its sign/mantissa/exponent fields (see [`crate::fields`]) and rounds the
//! mantissa down to 3 bits before temporal coding.

use std::cmp::Ordering;
use std::fmt;

/// Number of mantissa bits kept by BF16.
pub const MANTISSA_BITS: u32 = 7;
/// Number of exponent bits kept by BF16.
pub const EXPONENT_BITS: u32 = 8;
/// Exponent bias of BF16 (same as `f32`).
pub const EXPONENT_BIAS: i32 = 127;

/// A bfloat16 value stored as its 16 raw bits.
///
/// The representation is exactly the upper half of the corresponding `f32`
/// bit pattern, so conversion to `f32` is lossless while conversion from `f32`
/// rounds to nearest-even.
///
/// ```
/// use mugi_numerics::bf16::Bf16;
/// let x = Bf16::from_f32(3.1415926);
/// assert!((x.to_f32() - 3.140625).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A canonical quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Largest finite BF16 value.
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Smallest finite BF16 value (most negative).
    pub const MIN: Bf16 = Bf16(0xFF7F);

    /// Creates a BF16 from its raw 16-bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw 16-bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to BF16 with round-to-nearest-even.
    ///
    /// NaNs are canonicalised to a quiet NaN so that the payload never leaks
    /// into hashing or equality.
    pub fn from_f32(value: f32) -> Self {
        if value.is_nan() {
            return Self::NAN;
        }
        let bits = value.to_bits();
        // Round to nearest even: add half of the truncated LSB weight plus the
        // parity of the bit that will become the new LSB.
        let round_bit = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7FFF + round_bit);
        Bf16((rounded >> 16) as u16)
    }

    /// Converts a BF16 to `f32` exactly.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Converts an `f32` to BF16 by truncation (round toward zero).
    ///
    /// This matches the cheapest hardware conversion and is used by the
    /// architecture model when modelling conversion-free datapaths.
    #[inline]
    pub fn from_f32_truncate(value: f32) -> Self {
        if value.is_nan() {
            return Self::NAN;
        }
        Bf16((value.to_bits() >> 16) as u16)
    }

    /// Sign bit: `true` if negative.
    #[inline]
    pub const fn sign(self) -> bool {
        self.0 >> 15 == 1
    }

    /// Raw biased exponent field (0..=255).
    #[inline]
    pub const fn biased_exponent(self) -> u8 {
        ((self.0 >> MANTISSA_BITS) & 0xFF) as u8
    }

    /// Unbiased exponent. Subnormals report the minimum exponent `-126`.
    #[inline]
    pub fn unbiased_exponent(self) -> i32 {
        let e = self.biased_exponent() as i32;
        if e == 0 {
            1 - EXPONENT_BIAS
        } else {
            e - EXPONENT_BIAS
        }
    }

    /// Raw 7-bit mantissa field (without the implicit leading one).
    #[inline]
    pub const fn mantissa(self) -> u8 {
        (self.0 & 0x7F) as u8
    }

    /// Whether the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.biased_exponent() == 0xFF && self.mantissa() != 0
    }

    /// Whether the value is +/- infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.biased_exponent() == 0xFF && self.mantissa() == 0
    }

    /// Whether the value is finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.biased_exponent() != 0xFF
    }

    /// Whether the value is +0 or -0.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// Whether the value is subnormal.
    #[inline]
    pub fn is_subnormal(self) -> bool {
        self.biased_exponent() == 0 && self.mantissa() != 0
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }

    /// Negation.
    #[inline]
    pub const fn neg(self) -> Self {
        Bf16(self.0 ^ 0x8000)
    }

    /// Rounds the mantissa to `bits` magnitude bits (round to nearest, ties away
    /// from zero), keeping the exponent and sign.
    ///
    /// This is the *input approximation* of Section 3.2: the paper rounds the
    /// 7-bit BF16 mantissa to 3 bits so that the temporal signal lasts at most
    /// `2^3 = 8` cycles. If rounding overflows the mantissa field the exponent
    /// is incremented (the value rounds up to the next binade).
    ///
    /// # Panics
    /// Panics if `bits > 7`.
    pub fn round_mantissa(self, bits: u32) -> Self {
        assert!(bits <= MANTISSA_BITS, "cannot keep more than 7 mantissa bits");
        if !self.is_finite() || self.is_zero() || bits == MANTISSA_BITS {
            return self;
        }
        let drop = MANTISSA_BITS - bits;
        let mantissa = self.mantissa() as u16;
        let exponent = self.biased_exponent() as u16;
        let sign = (self.0 >> 15) & 1;
        let half = 1u16 << (drop - 1).min(15);
        let rounded = if drop == 0 { mantissa } else { mantissa + half };
        let (mantissa, exponent) = if rounded >> MANTISSA_BITS != 0 {
            // Mantissa overflowed into the implicit bit: bump the exponent.
            (0, (exponent + 1).min(0xFE))
        } else {
            ((rounded >> drop) << drop, exponent)
        };
        Bf16((sign << 15) | (exponent << MANTISSA_BITS) | (mantissa & 0x7F))
    }

    /// Total ordering usable for max-reduction (NaN sorts lowest).
    pub fn total_cmp(self, other: Self) -> Ordering {
        self.to_f32().partial_cmp(&other.to_f32()).unwrap_or_else(|| {
            if self.is_nan() && other.is_nan() {
                Ordering::Equal
            } else if self.is_nan() {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        })
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Self {
        Bf16::from_f32(value)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> Self {
        value.to_f32()
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

/// Quantizes a slice of `f32` to BF16 and back, returning the representable
/// values. Convenience used throughout the workload models.
pub fn quantize_slice(values: &[f32]) -> Vec<f32> {
    values.iter().map(|&v| Bf16::from_f32(v).to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_for_representable() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -3.25, 1024.0, -0.0078125] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next BF16; ties to
        // even keeps 1.0.
        let halfway = 1.0 + 2f32.powi(-8);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above the halfway point rounds up.
        let above = 1.0 + 2f32.powi(-8) + 2f32.powi(-12);
        assert_eq!(Bf16::from_f32(above).to_f32(), 1.0 + 2f32.powi(-7));
    }

    #[test]
    fn special_values() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::from_f32(f32::INFINITY).is_infinite());
        assert!(Bf16::from_f32(f32::NEG_INFINITY).is_infinite());
        assert!(Bf16::from_f32(f32::NEG_INFINITY).sign());
        assert!(Bf16::ZERO.is_zero());
        assert!(Bf16::from_f32(-0.0).is_zero());
        assert!(Bf16::MAX.is_finite());
    }

    #[test]
    fn field_extraction() {
        let x = Bf16::from_f32(-6.5); // -1.625 * 2^2
        assert!(x.sign());
        assert_eq!(x.unbiased_exponent(), 2);
        assert_eq!(x.mantissa(), 0b101_0000);
    }

    #[test]
    fn mantissa_rounding_to_three_bits() {
        // 1.0101101b * 2^0 = 1.3515625 rounds to 1.011b * 2^0 = 1.375 with 3 bits.
        let x = Bf16::from_f32(1.3515625);
        let r = x.round_mantissa(3);
        assert_eq!(r.to_f32(), 1.375);
        // Rounding is monotone and keeps the exponent unless it overflows.
        let y = Bf16::from_f32(1.9921875); // close to 2.0
        assert_eq!(y.round_mantissa(3).to_f32(), 2.0);
    }

    #[test]
    fn mantissa_rounding_identity_when_keeping_all_bits() {
        for v in [-2.71828f32, 0.1, 7.5, 1e-3] {
            let x = Bf16::from_f32(v);
            assert_eq!(x.round_mantissa(7), x);
        }
    }

    #[test]
    fn truncation_never_increases_magnitude() {
        for v in [1.999f32, -1.999, 0.12345, -7.77] {
            let t = Bf16::from_f32_truncate(v).to_f32();
            assert!(t.abs() <= v.abs());
        }
    }

    #[test]
    fn abs_and_neg() {
        let x = Bf16::from_f32(-2.5);
        assert_eq!(x.abs().to_f32(), 2.5);
        assert_eq!(x.neg().to_f32(), 2.5);
        assert_eq!(x.neg().neg(), x);
    }

    #[test]
    #[should_panic(expected = "cannot keep more than 7 mantissa bits")]
    fn round_mantissa_rejects_too_many_bits() {
        Bf16::ONE.round_mantissa(8);
    }
}
