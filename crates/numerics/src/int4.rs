//! Signed 4-bit integers and packing helpers.
//!
//! Mugi maps INT4 weights / KV-cache entries to the array rows (Section 4.2).
//! The format here is a plain two's-complement signed 4-bit integer in
//! `[-8, 7]`, plus helpers to pack/unpack two values per byte as a real
//! weight-only-quantized checkpoint would store them.

use std::fmt;

/// A signed 4-bit integer value in `[-8, 7]`.
///
/// ```
/// use mugi_numerics::int4::Int4;
/// let x = Int4::new(-5).unwrap();
/// assert_eq!(x.value(), -5);
/// assert_eq!(Int4::saturating_from_i32(99).value(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Int4(i8);

impl Int4 {
    /// Minimum representable value.
    pub const MIN: Int4 = Int4(-8);
    /// Maximum representable value.
    pub const MAX: Int4 = Int4(7);
    /// Zero.
    pub const ZERO: Int4 = Int4(0);

    /// Creates an `Int4`, returning `None` if the value is out of range.
    pub const fn new(value: i8) -> Option<Self> {
        if value >= -8 && value <= 7 {
            Some(Int4(value))
        } else {
            None
        }
    }

    /// Creates an `Int4`, clamping out-of-range values to the representable
    /// extremes.
    pub fn saturating_from_i32(value: i32) -> Self {
        Int4(value.clamp(-8, 7) as i8)
    }

    /// Creates an `Int4` by rounding an `f32` to the nearest integer and
    /// clamping (this is the quantization kernel used by WOQ/KVQ).
    pub fn from_f32_saturating(value: f32) -> Self {
        if value.is_nan() {
            return Int4::ZERO;
        }
        Self::saturating_from_i32(value.round() as i32)
    }

    /// The contained value.
    pub const fn value(self) -> i8 {
        self.0
    }

    /// The value as `f32`.
    pub const fn to_f32(self) -> f32 {
        self.0 as f32
    }

    /// The magnitude (0..=8).
    pub const fn magnitude(self) -> u8 {
        self.0.unsigned_abs()
    }

    /// Sign: `true` if negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Two's-complement 4-bit encoding (0..=15).
    pub const fn to_nibble(self) -> u8 {
        (self.0 as u8) & 0x0F
    }

    /// Decodes a two's-complement nibble.
    pub const fn from_nibble(nibble: u8) -> Self {
        let n = nibble & 0x0F;
        if n >= 8 {
            Int4(n as i8 - 16)
        } else {
            Int4(n as i8)
        }
    }
}

impl fmt::Debug for Int4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int4({})", self.0)
    }
}

impl fmt::Display for Int4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Int4> for i8 {
    fn from(value: Int4) -> Self {
        value.value()
    }
}

impl From<Int4> for f32 {
    fn from(value: Int4) -> Self {
        value.to_f32()
    }
}

/// Packs a slice of `Int4` two-per-byte (low nibble first).
///
/// The final byte's upper nibble is zero when the input length is odd.
pub fn pack(values: &[Int4]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len().div_ceil(2));
    for chunk in values.chunks(2) {
        let lo = chunk[0].to_nibble();
        let hi = chunk.get(1).map_or(0, |v| v.to_nibble());
        out.push(lo | (hi << 4));
    }
    out
}

/// Unpacks bytes produced by [`pack`]; `len` is the number of values to
/// recover (to distinguish an odd tail from a packed zero).
pub fn unpack(bytes: &[u8], len: usize) -> Vec<Int4> {
    assert!(len <= bytes.len() * 2, "requested {len} values from {} bytes", bytes.len());
    let mut out = Vec::with_capacity(len);
    for (i, &b) in bytes.iter().enumerate() {
        if out.len() < len {
            out.push(Int4::from_nibble(b & 0x0F));
        }
        if out.len() < len {
            out.push(Int4::from_nibble(b >> 4));
        }
        if out.len() >= len {
            break;
        }
        let _ = i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bounds() {
        assert_eq!(Int4::new(7).unwrap().value(), 7);
        assert_eq!(Int4::new(-8).unwrap().value(), -8);
        assert!(Int4::new(8).is_none());
        assert!(Int4::new(-9).is_none());
    }

    #[test]
    fn saturation() {
        assert_eq!(Int4::saturating_from_i32(100).value(), 7);
        assert_eq!(Int4::saturating_from_i32(-100).value(), -8);
        assert_eq!(Int4::from_f32_saturating(3.6).value(), 4);
        assert_eq!(Int4::from_f32_saturating(-3.6).value(), -4);
        assert_eq!(Int4::from_f32_saturating(f32::NAN).value(), 0);
    }

    #[test]
    fn nibble_round_trip() {
        for v in -8..=7i8 {
            let x = Int4::new(v).unwrap();
            assert_eq!(Int4::from_nibble(x.to_nibble()), x);
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let values: Vec<Int4> = (-8..=7).map(|v| Int4::new(v).unwrap()).collect();
        let bytes = pack(&values);
        assert_eq!(bytes.len(), 8);
        assert_eq!(unpack(&bytes, values.len()), values);
        // Odd length.
        let odd = &values[..5];
        let bytes = pack(odd);
        assert_eq!(bytes.len(), 3);
        assert_eq!(unpack(&bytes, 5), odd);
    }

    #[test]
    fn magnitude_and_sign() {
        assert_eq!(Int4::new(-8).unwrap().magnitude(), 8);
        assert!(Int4::new(-1).unwrap().is_negative());
        assert!(!Int4::new(3).unwrap().is_negative());
    }
}
