//! Exact reference implementations of the nonlinear operations the paper
//! approximates (Section 2.2.1, Equations 1–5).
//!
//! These are the "software implementation" ground truth against which every
//! hardware approximation (VLP, PWL, Taylor, partial approximation, direct
//! LUT) is compared in Figures 6 and 8.

/// Error function `erf(x)`, computed with the Abramowitz–Stegun 7.1.26
/// rational polynomial (max absolute error ≈ 1.5e-7, well below BF16
/// resolution, so it is an adequate reference for the GELU erf form).
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs() as f64;
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y as f32
}

/// Logistic sigmoid `1 / (1 + e^-x)`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// SiLU (sigmoid-weighted linear unit), Equation 2: `x / (1 + e^-x)`.
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// GELU using the exact error-function form, Equation 3.
pub fn gelu_erf(x: f32) -> f32 {
    0.5 * x * (1.0 + erf(x / std::f32::consts::SQRT_2))
}

/// GELU using the tanh approximation with the cubic inner term (Equation 4).
pub fn gelu_tanh(x: f32) -> f32 {
    let c = (2.0 / std::f32::consts::PI).sqrt();
    0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
}

/// GELU using the flattened tanh approximation (Equation 5), as written in the
/// paper with the pre-multiplied constant.
pub fn gelu_tanh_flat(x: f32) -> f32 {
    0.5 * x * (1.0 + (0.797_884_6 * x * (1.0 + 0.004715 * x * x)).tanh())
}

/// Natural exponential. Thin wrapper so call sites document intent.
#[inline]
pub fn exp(x: f32) -> f32 {
    x.exp()
}

/// Numerically stable softmax (Equation 1): inputs are shifted by their
/// maximum before exponentiation.
///
/// Returns a vector of the same length. An empty input returns an empty
/// vector. If all inputs are `-inf` the result is a uniform distribution,
/// matching common framework behaviour.
pub fn softmax(inputs: &[f32]) -> Vec<f32> {
    if inputs.is_empty() {
        return Vec::new();
    }
    let max = inputs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return vec![1.0 / inputs.len() as f32; inputs.len()];
    }
    let exps: Vec<f32> = inputs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Softmax applied independently to each row of a row-major matrix.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `cols`.
pub fn softmax_rows(data: &[f32], cols: usize) -> Vec<f32> {
    assert!(cols > 0, "cols must be non-zero");
    assert_eq!(data.len() % cols, 0, "data length must be a multiple of cols");
    let mut out = Vec::with_capacity(data.len());
    for row in data.chunks(cols) {
        out.extend(softmax(row));
    }
    out
}

/// Hyperbolic tangent. Thin wrapper for symmetry with [`exp`].
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// The nonlinear operations studied in the paper (Figures 4, 6, 8, 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NonlinearOp {
    /// `exp(x)` as used inside softmax (inputs are ≤ 0 after max-subtraction).
    Exp,
    /// Row-wise softmax.
    Softmax,
    /// SiLU / swish activation (Llama FFN).
    Silu,
    /// GELU activation (Whisper / SwinV2 / ViViT FFN).
    Gelu,
}

impl NonlinearOp {
    /// Evaluates the exact element-wise function (softmax is handled at the
    /// vector level by [`softmax`]; element-wise it reduces to `exp`).
    pub fn eval(self, x: f32) -> f32 {
        match self {
            NonlinearOp::Exp | NonlinearOp::Softmax => exp(x),
            NonlinearOp::Silu => silu(x),
            NonlinearOp::Gelu => gelu_erf(x),
        }
    }

    /// Whether inputs to this op are non-positive by construction
    /// (softmax/exp after max subtraction).
    pub fn inputs_non_positive(self) -> bool {
        matches!(self, NonlinearOp::Exp | NonlinearOp::Softmax)
    }

    /// Short display label matching the paper's figure abbreviations.
    pub fn label(self) -> &'static str {
        match self {
            NonlinearOp::Exp => "EXP",
            NonlinearOp::Softmax => "SM",
            NonlinearOp::Silu => "S",
            NonlinearOp::Gelu => "G",
        }
    }
}

impl std::fmt::Display for NonlinearOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn erf_matches_known_values() {
        assert!(close(erf(0.0), 0.0, 1e-6));
        assert!(close(erf(1.0), 0.8427008, 2e-6));
        assert!(close(erf(-1.0), -0.8427008, 2e-6));
        assert!(close(erf(2.0), 0.9953223, 2e-6));
        assert!(close(erf(10.0), 1.0, 1e-6));
    }

    #[test]
    fn sigmoid_properties() {
        assert!(close(sigmoid(0.0), 0.5, 1e-7));
        assert!(close(sigmoid(100.0), 1.0, 1e-6));
        assert!(close(sigmoid(-100.0), 0.0, 1e-6));
        // Symmetry: sigmoid(-x) = 1 - sigmoid(x).
        for x in [-3.0f32, -1.0, 0.5, 2.0, 7.7] {
            assert!(close(sigmoid(-x), 1.0 - sigmoid(x), 1e-6));
        }
    }

    #[test]
    fn silu_known_values() {
        assert!(close(silu(0.0), 0.0, 1e-7));
        assert!(close(silu(1.0), 0.7310586, 1e-6));
        assert!(close(silu(-1.0), -0.26894143, 1e-6));
        // For large x SiLU approaches identity; for very negative x it approaches 0.
        assert!(close(silu(20.0), 20.0, 1e-3));
        assert!(close(silu(-20.0), 0.0, 1e-3));
    }

    #[test]
    fn gelu_forms_agree_near_zero() {
        for x in [-3.0f32, -1.5, -0.5, 0.0, 0.5, 1.5, 3.0] {
            let exact = gelu_erf(x);
            assert!(close(gelu_tanh(x), exact, 5e-3), "tanh form at {x}");
            assert!(close(gelu_tanh_flat(x), exact, 2e-1), "flat tanh form at {x}");
        }
        assert!(close(gelu_erf(0.0), 0.0, 1e-7));
        assert!(close(gelu_erf(1.0), 0.8413447, 1e-5));
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let probs = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = probs.iter().sum();
        assert!(close(sum, 1.0, 1e-6));
        assert!(probs[2] > probs[1] && probs[1] > probs[0]);
        // Large inputs must not overflow thanks to max subtraction.
        let probs = softmax(&[1000.0, 1000.0]);
        assert!(close(probs[0], 0.5, 1e-6));
        // Shift invariance (tolerance accounts for f32 rounding of the
        // shifted inputs themselves).
        let a = softmax(&[0.1, 0.2, 0.3]);
        let b = softmax(&[100.1, 100.2, 100.3]);
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y, 1e-4));
        }
    }

    #[test]
    fn softmax_edge_cases() {
        assert!(softmax(&[]).is_empty());
        let uniform = softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert!(close(uniform[0], 0.5, 1e-6));
        let single = softmax(&[42.0]);
        assert!(close(single[0], 1.0, 1e-6));
    }

    #[test]
    fn softmax_rows_is_per_row() {
        let out = softmax_rows(&[1.0, 1.0, 0.0, 10.0], 2);
        assert!(close(out[0], 0.5, 1e-6));
        assert!(close(out[1], 0.5, 1e-6));
        assert!(out[3] > 0.999);
    }

    #[test]
    #[should_panic(expected = "multiple of cols")]
    fn softmax_rows_rejects_ragged_input() {
        softmax_rows(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn nonlinear_op_dispatch() {
        assert!(close(NonlinearOp::Silu.eval(1.0), silu(1.0), 1e-7));
        assert!(close(NonlinearOp::Gelu.eval(1.0), gelu_erf(1.0), 1e-7));
        assert!(close(NonlinearOp::Exp.eval(1.0), 1f32.exp(), 1e-7));
        assert!(NonlinearOp::Softmax.inputs_non_positive());
        assert!(!NonlinearOp::Gelu.inputs_non_positive());
        assert_eq!(NonlinearOp::Softmax.label(), "SM");
    }
}
