//! # mugi-numerics
//!
//! Numeric substrate for the Mugi reproduction (ASPLOS 2026, *Mugi: Value Level
//! Parallelism For Efficient LLMs*).
//!
//! This crate provides everything that is "below" the value-level-parallelism
//! algorithms:
//!
//! * bit-exact software implementations of the data formats the paper uses:
//!   [`bf16::Bf16`], [`fp8::Fp8`] (E4M3/E5M2) and [`int4::Int4`];
//! * the sign/mantissa/exponent field split ([`fields::FloatFields`]) that the
//!   VLP nonlinear approximation is built on (Section 3.1 of the paper);
//! * exact reference implementations of the nonlinear operations the paper
//!   approximates — exp, sigmoid, tanh, erf, softmax, SiLU and GELU
//!   ([`nonlinear`]);
//! * weight-only quantization (WOQ) and KV-cache quantization (KVQ) with
//!   per-group scales ([`quant`]);
//! * a small dense [`tensor::Matrix`] type with reference GEMM/GEMV used as the
//!   correctness oracle for VLP GEMM;
//! * error metrics used by the accuracy experiments ([`error`]).
//!
//! # Example
//!
//! ```
//! use mugi_numerics::bf16::Bf16;
//! use mugi_numerics::nonlinear::silu;
//!
//! let x = Bf16::from_f32(1.5);
//! // BF16 keeps only 7 mantissa bits, so the round trip is close but not exact.
//! assert!((x.to_f32() - 1.5).abs() < 1e-2);
//! assert!((silu(1.5) - 1.5 / (1.0 + (-1.5f32).exp())).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bf16;
pub mod cast;
pub mod error;
pub mod exec;
pub mod fields;
pub mod fp8;
pub mod int4;
pub mod nonlinear;
pub mod quant;
pub mod tensor;

pub use bf16::Bf16;
pub use exec::ExecutionContext;
pub use fields::FloatFields;
pub use fp8::{Fp8, Fp8Format};
pub use int4::Int4;
pub use tensor::Matrix;
